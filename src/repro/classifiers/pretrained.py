"""The nine pre-trained classifier profiles of Table 2.

Accuracy and female-group precision exactly as the paper reports them, for
each of the three predictors (DeepFace with the opencv and retinaface
detectors, and the baseline CNN of [30]) on each of the three dataset
slices. :func:`table2_rows` yields ready-to-run (dataset builder, profile)
pairs for the Table 2 bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.classifiers.simulated import ProfileClassifier
from repro.data.corpora import feret_unique_slice, utkface_slice
from repro.data.dataset import LabeledDataset
from repro.data.groups import Group, group

__all__ = ["PaperProfile", "PAPER_PROFILES", "table2_rows", "FEMALE"]

FEMALE: Group = group(gender="female")


@dataclass(frozen=True)
class PaperProfile:
    """One Table 2 row: a classifier profile bound to a dataset slice."""

    dataset_key: str
    classifier_name: str
    accuracy: float
    precision_on_female: float
    #: The strategy Table 2 reports the heuristic chose (for validation).
    paper_strategy: str
    #: #HITs Table 2 reports for Classifier-Coverage / Group-Coverage.
    paper_classifier_hits: int
    paper_group_hits: int

    def classifier(self) -> ProfileClassifier:
        return ProfileClassifier(
            name=self.classifier_name,
            target_group=FEMALE,
            accuracy=self.accuracy,
            precision=self.precision_on_female,
        )


#: All nine rows of Table 2, verbatim from the paper.
PAPER_PROFILES: tuple[PaperProfile, ...] = (
    PaperProfile("feret_403_591", "DeepFace (opencv)", 0.7957, 0.995, "partition", 14, 80),
    PaperProfile("feret_403_591", "DeepFace (retinaface)", 0.841, 1.000, "partition", 17, 80),
    PaperProfile("feret_403_591", "BaseCNN", 0.6448, 0.5919, "label", 84, 80),
    PaperProfile("utkface_200_2800", "DeepFace (opencv)", 0.9356, 0.5202, "label", 97, 51),
    PaperProfile("utkface_200_2800", "DeepFace (retinaface)", 0.9416, 0.5615, "label", 89, 51),
    PaperProfile("utkface_200_2800", "BaseCNN", 0.976, 0.748, "label", 69, 51),
    PaperProfile("utkface_20_2980", "DeepFace (opencv)", 0.9653, 0.080, "label", 134, 221),
    PaperProfile("utkface_20_2980", "DeepFace (retinaface)", 0.9643, 0.1009, "label", 143, 221),
    PaperProfile("utkface_20_2980", "BaseCNN", 0.976, 0.2159, "label", 122, 221),
)

#: Builders for the three Table 2 dataset slices, keyed as above.
DATASET_BUILDERS: dict[str, Callable[[np.random.Generator], LabeledDataset]] = {
    "feret_403_591": lambda rng: feret_unique_slice(rng),
    "utkface_200_2800": lambda rng: utkface_slice(rng, n_female=200),
    "utkface_20_2980": lambda rng: utkface_slice(rng, n_female=20),
}


def table2_rows() -> Iterator[tuple[PaperProfile, Callable[[np.random.Generator], LabeledDataset]]]:
    """Yield every Table 2 row with its dataset builder."""
    for profile in PAPER_PROFILES:
        yield profile, DATASET_BUILDERS[profile.dataset_key]
