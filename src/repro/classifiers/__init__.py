"""Pre-trained predictor substrate: profile-matched simulations + numpy MLP."""

from repro.classifiers.metrics import (
    BinaryConfusion,
    binary_confusion,
    multiclass_accuracy,
)
from repro.classifiers.nn import MLPClassifier
from repro.classifiers.pretrained import (
    FEMALE,
    PAPER_PROFILES,
    PaperProfile,
    table2_rows,
)
from repro.classifiers.simulated import ProfileClassifier, solve_confusion

__all__ = [
    "BinaryConfusion",
    "binary_confusion",
    "multiclass_accuracy",
    "MLPClassifier",
    "ProfileClassifier",
    "solve_confusion",
    "PaperProfile",
    "PAPER_PROFILES",
    "table2_rows",
    "FEMALE",
]
