"""Classification metrics used throughout the evaluation.

Binary-confusion utilities for group predictors (Table 2 reports accuracy
and the *precision on the female group*, which is what drives Algorithm
4's strategy choice), plus small multiclass helpers for the numpy MLP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["BinaryConfusion", "binary_confusion", "multiclass_accuracy"]


@dataclass(frozen=True)
class BinaryConfusion:
    """Confusion counts for a binary "member of group g?" prediction."""

    tp: int
    fp: int
    fn: int
    tn: int

    def __post_init__(self) -> None:
        if min(self.tp, self.fp, self.fn, self.tn) < 0:
            raise InvalidParameterError("confusion counts must be non-negative")

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def n_positive(self) -> int:
        """Ground-truth members of the group."""
        return self.tp + self.fn

    @property
    def n_predicted_positive(self) -> int:
        """Size of the classifier's predicted set ``G``."""
        return self.tp + self.fp

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        """Precision on the positive group — Table 2's second metric.
        Defined as 0 when nothing is predicted positive."""
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def false_positive_rate_in_predicted(self) -> float:
        """Fraction of the predicted set that is wrong (= 1 - precision);
        Algorithm 4's 25 % decision statistic."""
        return 1.0 - self.precision if (self.tp + self.fp) else 0.0

    def describe(self) -> str:
        return (
            f"acc={self.accuracy:.2%} precision={self.precision:.2%} "
            f"recall={self.recall:.2%} "
            f"(TP={self.tp} FP={self.fp} FN={self.fn} TN={self.tn})"
        )


def binary_confusion(true_mask: np.ndarray, predicted_mask: np.ndarray) -> BinaryConfusion:
    """Confusion counts from boolean membership masks.

    >>> import numpy as np
    >>> c = binary_confusion(np.array([1, 1, 0, 0], bool),
    ...                      np.array([1, 0, 1, 0], bool))
    >>> (c.tp, c.fp, c.fn, c.tn)
    (1, 1, 1, 1)
    """
    true_mask = np.asarray(true_mask, dtype=bool)
    predicted_mask = np.asarray(predicted_mask, dtype=bool)
    if true_mask.shape != predicted_mask.shape:
        raise InvalidParameterError(
            f"mask shapes differ: {true_mask.shape} vs {predicted_mask.shape}"
        )
    return BinaryConfusion(
        tp=int(np.sum(true_mask & predicted_mask)),
        fp=int(np.sum(~true_mask & predicted_mask)),
        fn=int(np.sum(true_mask & ~predicted_mask)),
        tn=int(np.sum(~true_mask & ~predicted_mask)),
    )


def multiclass_accuracy(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """Plain accuracy over integer label vectors."""
    true_labels = np.asarray(true_labels)
    predicted_labels = np.asarray(predicted_labels)
    if true_labels.shape != predicted_labels.shape:
        raise InvalidParameterError("label vectors must have the same shape")
    if true_labels.size == 0:
        return 0.0
    return float(np.mean(true_labels == predicted_labels))
