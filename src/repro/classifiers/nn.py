"""A small feed-forward neural network, from scratch on numpy.

Stands in for the paper's CNNs — the "BaseCNN" gender predictor of §6.3.2
and the downstream models of §6.4 — which we cannot run without the
original images or a deep-learning stack. A one-hidden-layer MLP over the
synthetic images of :mod:`repro.data.images` exhibits the property the
experiments need: it learns group-conditional structure from data and
*fails to generalize to groups absent from training*.

Implementation: dense -> ReLU -> dense -> softmax, cross-entropy loss,
minibatch SGD with momentum, He initialization, all seeded through a
caller-supplied generator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["MLPClassifier"]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class MLPClassifier:
    """One-hidden-layer softmax classifier.

    Parameters
    ----------
    n_features / n_classes:
        Input and output dimensions.
    n_hidden:
        Hidden width (default 32 — plenty for 16×16 synthetic images).
    learning_rate, momentum, batch_size, n_epochs:
        SGD hyperparameters.
    rng:
        Generator for weight init and batch shuffling.
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        *,
        n_hidden: int = 32,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        batch_size: int = 64,
        n_epochs: int = 8,
        rng: np.random.Generator,
    ) -> None:
        if min(n_features, n_classes, n_hidden) < 1:
            raise InvalidParameterError("dimensions must be positive")
        if n_classes < 2:
            raise InvalidParameterError("need at least two classes")
        if batch_size < 1 or n_epochs < 1:
            raise InvalidParameterError("batch_size and n_epochs must be >= 1")
        self.n_features = n_features
        self.n_classes = n_classes
        self.n_hidden = n_hidden
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.batch_size = batch_size
        self.n_epochs = n_epochs
        self.rng = rng

        self.w1 = rng.normal(0.0, np.sqrt(2.0 / n_features), (n_features, n_hidden))
        self.b1 = np.zeros(n_hidden)
        self.w2 = rng.normal(0.0, np.sqrt(2.0 / n_hidden), (n_hidden, n_classes))
        self.b2 = np.zeros(n_classes)
        self._velocity = [np.zeros_like(p) for p in (self.w1, self.b1, self.w2, self.b2)]
        self.training_losses_: list[float] = []

    # ------------------------------------------------------------------
    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        hidden = np.maximum(X @ self.w1 + self.b1, 0.0)
        probabilities = _softmax(hidden @ self.w2 + self.b2)
        return hidden, probabilities

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        """Train on features ``X`` (n, n_features) and integer labels ``y``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise InvalidParameterError(
                f"X must be (n, {self.n_features}), got {X.shape}"
            )
        if len(X) != len(y):
            raise InvalidParameterError("X and y lengths differ")
        if len(X) == 0:
            raise InvalidParameterError("cannot fit on an empty training set")
        if y.min() < 0 or y.max() >= self.n_classes:
            raise InvalidParameterError("labels out of range")

        n = len(X)
        for _ in range(self.n_epochs):
            order = self.rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                xb, yb = X[batch], y[batch]
                hidden, probabilities = self._forward(xb)

                # Cross-entropy gradient through softmax.
                delta_out = probabilities.copy()
                delta_out[np.arange(len(yb)), yb] -= 1.0
                delta_out /= len(yb)
                grad_w2 = hidden.T @ delta_out
                grad_b2 = delta_out.sum(axis=0)
                delta_hidden = (delta_out @ self.w2.T) * (hidden > 0)
                grad_w1 = xb.T @ delta_hidden
                grad_b1 = delta_hidden.sum(axis=0)

                parameters = (self.w1, self.b1, self.w2, self.b2)
                gradients = (grad_w1, grad_b1, grad_w2, grad_b2)
                for i, (parameter, gradient) in enumerate(zip(parameters, gradients)):
                    self._velocity[i] = (
                        self.momentum * self._velocity[i] - self.learning_rate * gradient
                    )
                    parameter += self._velocity[i]

                batch_probabilities = probabilities[np.arange(len(yb)), yb]
                epoch_loss += -np.log(batch_probabilities + 1e-12).sum()
            self.training_losses_.append(epoch_loss / n)
        return self

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        _, probabilities = self._forward(X)
        return probabilities

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))

    def log_loss(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean cross-entropy on a labeled set (Fig 6's loss disparity)."""
        probabilities = self.predict_proba(X)
        y = np.asarray(y, dtype=np.int64)
        picked = np.clip(probabilities[np.arange(len(y)), y], 1e-12, 1.0)
        return float(max(-np.log(picked).mean(), 0.0))
