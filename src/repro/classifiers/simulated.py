"""Simulated pre-trained predictors with exact metric profiles.

Table 2 evaluates Classifier-Coverage under nine real classifier/dataset
combinations (DeepFace with two detectors, a baseline CNN — each on three
dataset slices), characterized by their measured *accuracy* and *precision
on the female group*. Classifier-Coverage consumes nothing but the
predicted-positive set, so any predictor with the same confusion matrix
induces identically distributed algorithm behavior — which lets us
substitute the GPU face stacks with :class:`ProfileClassifier`:

given a dataset's positive/negative composition and a target
(accuracy, precision), it solves for the unique non-negative integer
confusion matrix realizing the profile and emits a random prediction
vector with exactly those error counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.classifiers.metrics import BinaryConfusion
from repro.data.dataset import LabeledDataset
from repro.data.groups import Group
from repro.errors import InfeasibleProfileError, InvalidParameterError

__all__ = ["solve_confusion", "ProfileClassifier"]


def solve_confusion(
    n_positive: int,
    n_negative: int,
    accuracy: float,
    precision: float,
    *,
    tolerance: float = 0.005,
) -> BinaryConfusion:
    """Find the integer confusion matrix matching a metric profile.

    Scans every feasible true-positive count and keeps the confusion whose
    (accuracy, precision) is closest to the target; raises if even the
    best is off by more than ``tolerance`` on either metric. The paper
    reports metrics rounded to two decimals, so small slack is expected.

    >>> c = solve_confusion(403, 591, accuracy=0.7957, precision=0.995)
    >>> (c.tp, c.fp)
    (201, 1)
    """
    if n_positive < 0 or n_negative < 0:
        raise InvalidParameterError("group sizes must be non-negative")
    if not 0.0 <= accuracy <= 1.0 or not 0.0 <= precision <= 1.0:
        raise InvalidParameterError("accuracy and precision must be in [0, 1]")
    total = n_positive + n_negative
    if total == 0:
        raise InvalidParameterError("empty dataset")

    best: BinaryConfusion | None = None
    best_distance = float("inf")
    for tp in range(n_positive + 1):
        if precision > 0:
            fp = int(round(tp * (1.0 - precision) / precision))
        else:
            # precision == 0 means tp must be 0; fp is then free — pick it
            # to match accuracy.
            if tp != 0:
                continue
            fp = int(round(n_negative - (accuracy * total - tp)))
        if fp < 0 or fp > n_negative:
            continue
        confusion = BinaryConfusion(
            tp=tp, fp=fp, fn=n_positive - tp, tn=n_negative - fp
        )
        distance = abs(confusion.accuracy - accuracy) + abs(
            confusion.precision - precision
        )
        if distance < best_distance:
            best, best_distance = confusion, distance

    if best is None or (
        abs(best.accuracy - accuracy) > tolerance
        or abs(best.precision - precision) > tolerance
    ):
        achieved = (
            f" (closest: acc={best.accuracy:.4f}, prec={best.precision:.4f})"
            if best
            else ""
        )
        raise InfeasibleProfileError(
            f"no confusion matrix on ({n_positive} positive, {n_negative} "
            f"negative) achieves accuracy={accuracy}, precision={precision}"
            f"{achieved}"
        )
    return best


@dataclass(frozen=True)
class ProfileClassifier:
    """A predictor that reproduces a published (accuracy, precision) profile.

    Parameters
    ----------
    name:
        Display name, e.g. ``"DeepFace (opencv)"``.
    target_group:
        The positive class (e.g. ``group(gender="female")``).
    accuracy / precision:
        The profile to realize, as fractions in [0, 1].
    """

    name: str
    target_group: Group
    accuracy: float
    precision: float

    def confusion_for(self, dataset: LabeledDataset) -> BinaryConfusion:
        """The confusion matrix this classifier realizes on ``dataset``."""
        n_positive = dataset.count(self.target_group)
        return solve_confusion(
            n_positive, len(dataset) - n_positive, self.accuracy, self.precision
        )

    def predict(self, dataset: LabeledDataset, rng: np.random.Generator) -> np.ndarray:
        """A boolean predicted-membership vector with the profile's exact
        error counts; *which* objects are misclassified is uniform random.
        """
        confusion = self.confusion_for(dataset)
        true_mask = dataset.mask(self.target_group)
        positives = np.flatnonzero(true_mask)
        negatives = np.flatnonzero(~true_mask)
        predicted = np.zeros(len(dataset), dtype=bool)
        if confusion.tp:
            predicted[rng.choice(positives, size=confusion.tp, replace=False)] = True
        if confusion.fp:
            predicted[rng.choice(negatives, size=confusion.fp, replace=False)] = True
        return predicted

    def predicted_positive_indices(
        self, dataset: LabeledDataset, rng: np.random.Generator
    ) -> np.ndarray:
        """The predicted set ``G`` Algorithm 4 consumes."""
        return np.flatnonzero(self.predict(dataset, rng))
