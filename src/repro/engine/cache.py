"""Range-keyed answer cache shared across coverage runs.

Coverage algorithms re-ask overlapping questions constantly: repeated
audits over the same view, the covered-super-group penalty path of
Multiple-Coverage re-scanning the very ranges the super-group run just
pruned, sibling trees of two concurrent runs chunking the same view the
same way. The cache answers those for free.

Beyond literal replay, the cache knows one sound implication: a **"no"**
for a super-group over a range is a "no" for *every member* over that
same range (a super-group is a disjunction). Registering the implication
lets the penalty path of Multiple-Coverage skip whole chunks the
super-group run already ruled out.

Like the rest of the system, the cache treats crowd answers as truth
(the paper's model); under a noisy oracle it replays whatever answer the
crowd gave first.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.data.groups import GroupPredicate
from repro.engine.requests import QueryKey
from repro.errors import InvalidParameterError

__all__ = ["AnswerCache"]

#: Sentinel distinguishing "key absent" from any cached value in one
#: dict probe (values are plain bools, never identical to this object).
_MISS = object()


class AnswerCache:
    """Memoizes set-query answers by :data:`~repro.engine.requests.QueryKey`.

    Attributes
    ----------
    hits / misses:
        Lookup accounting. A hit is a lookup answered from the cache
        (including implied answers); a miss is a lookup that fell through
        to the oracle. Increments hold ``_stats_lock``: ``count += 1``
        is a read-modify-write, so two threads sharing a cache through
        a threaded backend would otherwise lose counts (RPL007).
    """

    def __init__(self) -> None:
        self._answers: dict[QueryKey, bool] = {}
        self._implications: dict[GroupPredicate, tuple[GroupPredicate, ...]] = {}
        self._source: object | None = None
        self._stats_lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def bind(self, source: object) -> None:
        """Pin the cache to one answer source (a dataset, or the oracle
        itself when it exposes none).

        Keys carry only (predicate, indices), so answers from different
        datasets would silently collide; the first engine to use the
        cache binds it, and binding it to a *different* source raises.
        Sharing stays legal across engines/oracles over the same dataset.
        """
        if self._source is None:
            self._source = source
        elif self._source is not source:
            raise InvalidParameterError(
                "answer cache is already bound to a different answer source; "
                "sharing a cache across datasets would replay wrong answers"
            )

    def register_implication(
        self, parent: GroupPredicate, members: Iterable[GroupPredicate]
    ) -> None:
        """Declare that ``parent`` is the disjunction of ``members``.

        From then on, storing a negative answer for ``parent`` over a
        range also stores a negative answer for every member over that
        range (no member in the range can match if their union does not).
        """
        self._implications[parent] = tuple(members)

    def lookup(self, key: QueryKey) -> bool | None:
        """The cached answer for ``key``, or ``None`` (counted as a miss).

        One dict probe per lookup: stored values are always ``bool``, so
        a private sentinel distinguishes "absent" without a second
        ``in`` check — this is the hottest lookup in engine mode.
        """
        answer = self._answers.get(key, _MISS)
        if answer is _MISS:
            with self._stats_lock:
                self.misses += 1
            return None
        with self._stats_lock:
            self.hits += 1
        return answer

    def store(self, key: QueryKey, answer: bool) -> None:
        """Record an oracle answer, propagating negative implications."""
        answer = bool(answer)
        self._answers[key] = answer
        if not answer:
            predicate, index_key = key
            for member in self._implications.get(predicate, ()):
                self._answers.setdefault((member, index_key), False)

    def entries(self) -> tuple[tuple[QueryKey, bool], ...]:
        """Every cached ``(key, answer)`` pair, insertion-ordered.

        This is the substrate of :meth:`repro.audit.AuditSession.checkpoint`:
        the cache holds every set-query answer the crowd was paid for
        (including implied negatives), which is exactly what a resumed
        session must not pay for again.
        """
        return tuple(self._answers.items())

    def clear(self) -> None:
        """Drop all cached answers (implications stay registered)."""
        self._answers.clear()

    @property
    def hit_rate(self) -> float:
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0

    def __len__(self) -> int:
        return len(self._answers)

    def __contains__(self, key: object) -> bool:
        return key in self._answers
