"""Batched query execution: scheduler, answer cache, request types.

See ``docs/architecture.md`` for the algorithm -> engine -> oracle
layering and :class:`QueryEngine` for the scheduling loop.
"""

from repro.engine.cache import AnswerCache
from repro.engine.requests import IndexKey, QueryKey, SetRequest, set_query_key
from repro.engine.scheduler import CoverageStepper, Flow, QueryEngine
from repro.engine.stats import EngineStats

__all__ = [
    "AnswerCache",
    "CoverageStepper",
    "EngineStats",
    "Flow",
    "IndexKey",
    "QueryEngine",
    "QueryKey",
    "SetRequest",
    "set_query_key",
]
