"""The query-execution engine: batched, deduplicated oracle dispatch.

Sits between the coverage algorithms (:mod:`repro.core`) and the
:class:`~repro.crowd.oracle.Oracle`. Algorithms are rewritten as
*steppers* — resumable state machines that emit the set queries they are
ready for and consume answers — and the engine drives any number of them
concurrently:

1. **collect** every ready request from every active stepper,
2. **dedup** them through the shared :class:`~repro.engine.cache.AnswerCache`
   and an in-flight table (two runs asking the same question pay once),
3. **dispatch** the remainder to the oracle in batches
   (``Oracle.ask_set_batch`` — one round-trip per batch, with vectorized
   answering on simulated/classifier-style oracles),
4. **feed** the answers back and let each stepper advance as far as its
   dependencies allow.

The per-query task cost is unchanged (the paper's dollar cost model);
what the engine minimises is *round-trips* — the latency bottleneck of
real crowd platforms, which publish HITs in batches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Protocol, Sequence

from repro.engine.cache import AnswerCache
from repro.engine.requests import QueryKey, SetRequest
from repro.engine.stats import EngineStats
from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro.crowd.oracle import Oracle

__all__ = ["CoverageStepper", "QueryEngine"]


def _answer_source(oracle: "Oracle") -> object:
    """The object an oracle's answers derive from, for cache binding:
    its dataset when it exposes one (directly or via a platform), else
    the oracle itself."""
    dataset = getattr(oracle, "dataset", None)
    if dataset is None:
        dataset = getattr(getattr(oracle, "platform", None), "dataset", None)
    return dataset if dataset is not None else oracle

#: ``on_complete`` callback: receives a finished stepper, may return new
#: steppers to schedule (e.g. Multiple-Coverage's per-member re-runs when
#: a super-group comes back covered).
CompletionHook = Callable[["CoverageStepper"], "Iterable[CoverageStepper] | None"]


class CoverageStepper(Protocol):
    """A resumable coverage run the engine can drive.

    The contract a stepper must honour:

    * ``pending()`` returns every query whose dispatch does **not** depend
      on an unanswered query, excluding queries already emitted and still
      awaiting their answer. It must be non-empty while ``done`` is false
      and no emitted request is outstanding — the engine answers every
      emitted request each round, so it treats an undone stepper with no
      pending work as stalled.
    * ``feed`` accepts answers for any subset of previously pending
      requests, keyed by :data:`~repro.engine.requests.QueryKey`, and
      advances the run as far as the new answers allow.
    """

    @property
    def done(self) -> bool: ...

    def pending(self) -> Sequence[SetRequest]: ...

    def feed(self, answers: Mapping[QueryKey, bool]) -> None: ...


class QueryEngine:
    """Schedules set queries from concurrent coverage runs onto one oracle.

    Parameters
    ----------
    oracle:
        The answer source; every dispatched query is charged to its
        ledger exactly as in sequential mode.
    batch_size:
        Maximum queries per oracle round-trip (HITs per published batch).
    speculation:
        Per-run look-ahead budget: how many queries beyond its
        certification deficit each coverage run may keep in flight.
        Defaults to ``batch_size``. Higher values buy fewer round-trips
        on sparse groups at the price of up to ``speculation`` wasted
        tasks per run that stops early (covered); ``0`` never wastes a
        task but serializes small-deficit runs.
    cache:
        A shared :class:`AnswerCache`; a fresh one is created when
        omitted. Passing the same cache to several engines (or reusing
        one engine across audits) carries answers across runs.

    Notes
    -----
    Batching is *speculative* around early stops: when a run reaches its
    threshold mid-round, in-flight queries past the stopping point are
    wasted (bounded by ``speculation`` per run). Verdicts and counts are
    unaffected — answers are applied in the exact order the sequential
    algorithm would have asked them.
    """

    def __init__(
        self,
        oracle: "Oracle",
        *,
        batch_size: int = 32,
        speculation: int | None = None,
        cache: AnswerCache | None = None,
    ) -> None:
        if batch_size < 1:
            raise InvalidParameterError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if speculation is not None and speculation < 0:
            raise InvalidParameterError(
                f"speculation must be >= 0, got {speculation}"
            )
        self.oracle = oracle
        self.batch_size = batch_size
        self.speculation = batch_size if speculation is None else speculation
        self.cache = cache if cache is not None else AnswerCache()
        self.cache.bind(_answer_source(oracle))
        self.scheduler_rounds = 0
        self.oracle_round_trips = 0
        self.dispatched_queries = 0
        self.deduped_queries = 0

    def ensure_executes_for(self, oracle: "Oracle") -> None:
        """Raise unless this engine dispatches to ``oracle`` — algorithms
        call this so a mismatched engine cannot silently charge one
        ledger while the algorithm snapshots another.

        An :class:`~repro.audit.AuditSession` hands algorithms a
        recording proxy around the oracle it was bound to; the proxy
        shares the raw oracle's ledger, so either side of the pair is
        accepted.
        """
        if self.oracle is oracle:
            return
        if getattr(oracle, "_session_inner", None) is self.oracle:
            return
        if getattr(self.oracle, "_session_inner", None) is oracle:
            return
        raise InvalidParameterError(
            "engine must be constructed over the same oracle it executes for"
        )

    # -- statistics ------------------------------------------------------
    def snapshot(self) -> EngineStats:
        """Counters now; pair with :meth:`stats_since` to attribute engine
        work to one algorithm run. All counters are the engine's own —
        round-trips other users of the same oracle pay (including an
        algorithm's direct point-query batches) are *not* included."""
        return EngineStats(
            scheduler_rounds=self.scheduler_rounds,
            oracle_round_trips=self.oracle_round_trips,
            dispatched_queries=self.dispatched_queries,
            deduped_queries=self.deduped_queries,
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
        )

    def stats_since(self, snapshot: EngineStats) -> EngineStats:
        return self.snapshot() - snapshot

    @property
    def stats(self) -> EngineStats:
        """Lifetime statistics of this engine."""
        return self.snapshot()

    # -- scheduling ------------------------------------------------------
    def run(
        self,
        steppers: Iterable[CoverageStepper],
        *,
        on_complete: CompletionHook | None = None,
        on_round: Callable[[], None] | None = None,
    ) -> dict[CoverageStepper, int]:
        """Drive ``steppers`` (plus any their completions spawn) to done.

        Each scheduler round collects ready queries across all active
        runs, answers them via cache/dedup/batched dispatch, and feeds
        the results back. Completion order is deterministic: steppers are
        polled in submission order. ``on_round`` (when given) fires after
        every scheduler round — the progress hook audit sessions use.

        Returns
        -------
        dict
            Per-stepper count of set queries dispatched to the oracle on
            its behalf. A query several steppers asked in the same round
            is attributed to the first requester (the one that caused the
            dispatch); cache hits are attributed to nobody. Summed over
            all steppers this equals the window's dispatched-query total,
            so it splits the dollar bill of a shared run across its runs.
        """
        active: list[CoverageStepper] = []
        dispatched_for: dict[CoverageStepper, int] = {}

        def admit(stepper: CoverageStepper) -> None:
            dispatched_for.setdefault(stepper, 0)
            # A stepper can be born done (tau=0, empty view): complete it
            # immediately so its spawn chain still runs.
            if stepper.done:
                self._complete(stepper, on_complete, admit)
            else:
                active.append(stepper)

        for stepper in steppers:
            admit(stepper)

        while active:
            self.scheduler_rounds += 1
            per_stepper: list[tuple[CoverageStepper, list[SetRequest]]] = []
            for stepper in active:
                requests = list(stepper.pending())
                if not requests:
                    raise RuntimeError(
                        "stepper is not done but has no pending queries — "
                        "its dependency tracking is broken"
                    )
                per_stepper.append((stepper, requests))

            answers, dispatched_keys = self._resolve(
                [request for _, requests in per_stepper for request in requests]
            )
            unclaimed = set(dispatched_keys)
            for stepper, requests in per_stepper:
                for request in requests:
                    if request.key in unclaimed:
                        unclaimed.discard(request.key)
                        dispatched_for[stepper] += 1

            still_active: list[CoverageStepper] = []
            for stepper, requests in per_stepper:
                stepper.feed(
                    {request.key: answers[request.key] for request in requests}
                )
                if stepper.done:
                    self._complete(stepper, on_complete, admit)
                else:
                    still_active.append(stepper)
            # Freshly spawned steppers were appended to `active` by admit;
            # keep them for the next round alongside the survivors.
            spawned = active[len(per_stepper):]
            active = still_active + spawned
            if on_round is not None:
                on_round()
        return dispatched_for

    def drive(
        self,
        stepper: CoverageStepper,
        *,
        on_round: Callable[[], None] | None = None,
    ) -> None:
        """Convenience wrapper: run a single stepper to completion."""
        self.run([stepper], on_round=on_round)

    # -- internals -------------------------------------------------------
    def _complete(
        self,
        stepper: CoverageStepper,
        on_complete: CompletionHook | None,
        admit: Callable[[CoverageStepper], None],
    ) -> None:
        if on_complete is None:
            return
        for spawned in on_complete(stepper) or ():
            admit(spawned)

    def _resolve(
        self, requests: Sequence[SetRequest]
    ) -> tuple[dict[QueryKey, bool], set[QueryKey]]:
        """Answer every request via cache, in-flight dedup, or dispatch.

        Returns the answers plus the keys that actually went to the
        oracle (for per-stepper cost attribution in :meth:`run`)."""
        answers: dict[QueryKey, bool] = {}
        to_dispatch: dict[QueryKey, SetRequest] = {}
        for request in requests:
            if request.key in answers or request.key in to_dispatch:
                self.deduped_queries += 1
                continue
            cached = self.cache.lookup(request.key)
            if cached is None:
                to_dispatch[request.key] = request
            else:
                answers[request.key] = cached

        fresh = list(to_dispatch.values())
        for start in range(0, len(fresh), self.batch_size):
            chunk = fresh[start : start + self.batch_size]
            batch_answers = self.oracle.ask_set_batch(
                [(request.indices, request.predicate) for request in chunk],
                keys=[request.key for request in chunk],
            )
            self.oracle_round_trips += 1
            for request, answer in zip(chunk, batch_answers):
                self.cache.store(request.key, answer)
                answers[request.key] = answer
        self.dispatched_queries += len(fresh)
        return answers, set(to_dispatch)
