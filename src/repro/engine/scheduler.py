"""The query-execution engine: batched, deduplicated, *asynchronous* dispatch.

Sits between the coverage algorithms (:mod:`repro.core`) and the crowd.
Algorithms are written as *steppers* — resumable state machines that
emit the set queries they are ready for and consume answers — and the
engine drives any number of them concurrently against one
:class:`~repro.crowd.backends.CrowdBackend`:

1. **collect** every ready request from every admitted stepper,
2. **dedup** them through the shared :class:`~repro.engine.cache.AnswerCache`
   and an in-flight table (two runs asking the same question pay once),
3. **submit** the remainder to the backend in batches — each batch is a
   :class:`~repro.crowd.backends.Ticket` whose answers arrive later,
4. **absorb** completed tickets, feeding each stepper as far as its
   dependencies allow.

The core is non-blocking: :meth:`QueryEngine.pump` performs steps 1–3
and returns immediately with the submitted tickets;
:meth:`QueryEngine.absorb` performs step 4 for one completed ticket.
A long-lived driver (the multi-tenant
:class:`~repro.service.AuditService`) interleaves pumps and absorbs
across many concurrent audits, overlapping their crowd latency.
:meth:`QueryEngine.run` remains as a thin drain loop — pump, wait,
absorb, repeat — and over the default
:class:`~repro.crowd.backends.InlineBackend` it performs exactly the
blocking call sequence of the pre-backend engine, so verdicts, task
counts, and statistics are bit-identical for every existing caller.

The per-query task cost is unchanged (the paper's dollar cost model);
what the engine minimises is *round-trips* — the latency bottleneck of
real crowd platforms, which publish HITs in batches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Protocol, Sequence

from repro.crowd.backends.base import CrowdBackend, Ticket
from repro.crowd.backends.inline import InlineBackend
from repro.engine.cache import AnswerCache
from repro.engine.requests import QueryKey, SetRequest
from repro.engine.stats import EngineStats
from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro.crowd.oracle import Oracle

__all__ = ["CoverageStepper", "Flow", "QueryEngine"]


def _answer_source(oracle: "Oracle") -> object:
    """The object an oracle's answers derive from, for cache binding:
    its dataset when it exposes one (directly or via a platform), else
    the oracle itself."""
    dataset = getattr(oracle, "dataset", None)
    if dataset is None:
        dataset = getattr(getattr(oracle, "platform", None), "dataset", None)
    return dataset if dataset is not None else oracle

#: ``on_complete`` callback: receives a finished stepper, may return new
#: steppers to schedule (e.g. Multiple-Coverage's per-member re-runs when
#: a super-group comes back covered).
CompletionHook = Callable[["CoverageStepper"], "Iterable[CoverageStepper] | None"]


class CoverageStepper(Protocol):
    """A resumable coverage run the engine can drive.

    The contract a stepper must honour:

    * ``pending()`` returns every query whose dispatch does **not** depend
      on an unanswered query, excluding queries already emitted and still
      awaiting their answer. It must be non-empty while ``done`` is false
      and no emitted request is outstanding — the engine treats an undone
      stepper with no pending work and nothing in flight as stalled.
    * ``feed`` accepts answers for any subset of previously pending
      requests, keyed by :data:`~repro.engine.requests.QueryKey`, and
      advances the run as far as the new answers allow.
    """

    @property
    def done(self) -> bool: ...

    def pending(self) -> Sequence[SetRequest]: ...

    def feed(self, answers: Mapping[QueryKey, bool]) -> None: ...


class Flow:
    """One admitted stepper's execution state inside the engine.

    :meth:`QueryEngine.admit` returns the flow as a handle: drivers use
    it to read progress (:attr:`dispatched` set queries billed to this
    run, :attr:`finished`), and to :meth:`~QueryEngine.retire` the run.
    ``spawned`` holds the flows the completion hook chained off this one
    (Multiple-Coverage's penalty re-runs), so a driver can account a
    whole completion tree to the audit that rooted it.
    """

    __slots__ = (
        "stepper", "on_complete", "outstanding", "dispatched",
        "spawned", "finished", "retired",
    )

    def __init__(self, stepper: CoverageStepper, on_complete: CompletionHook | None):
        self.stepper = stepper
        self.on_complete = on_complete
        #: answers this flow is waiting on (in flight or queued on a ticket)
        self.outstanding = 0
        #: set queries dispatched to the crowd on this flow's behalf
        self.dispatched = 0
        #: flows chained off this one's completion hook
        self.spawned: list[Flow] = []
        self.finished = False
        self.retired = False


class QueryEngine:
    """Schedules set queries from concurrent coverage runs onto one crowd
    backend.

    Parameters
    ----------
    oracle:
        The answer source; every dispatched query is charged to its
        ledger exactly as in sequential mode. May be omitted when
        ``backend`` is given.
    backend:
        A :class:`~repro.crowd.backends.CrowdBackend` to dispatch
        through. Defaults to an
        :class:`~repro.crowd.backends.InlineBackend` over ``oracle`` —
        the zero-latency compatibility path. A backend must belong to
        exactly one engine (the engine's ticket table is the single
        source of truth for what is in flight).
    batch_size:
        Maximum queries per backend submission (HITs per published batch).
    speculation:
        Per-run look-ahead budget: how many queries beyond its
        certification deficit each coverage run may keep in flight.
        Defaults to ``batch_size``. Higher values buy fewer round-trips
        on sparse groups at the price of up to ``speculation`` wasted
        tasks per run that stops early (covered); ``0`` never wastes a
        task but serializes small-deficit runs.
    cache:
        A shared :class:`AnswerCache`; a fresh one is created when
        omitted. Passing the same cache to several engines (or reusing
        one engine across audits) carries answers across runs.

    Notes
    -----
    Batching is *speculative* around early stops: when a run reaches its
    threshold mid-round, in-flight queries past the stopping point are
    wasted (bounded by ``speculation`` per run). Verdicts and counts are
    unaffected — answers are applied in the exact order the sequential
    algorithm would have asked them.
    """

    def __init__(
        self,
        oracle: "Oracle | None" = None,
        *,
        backend: CrowdBackend | None = None,
        batch_size: int = 32,
        speculation: int | None = None,
        cache: AnswerCache | None = None,
    ) -> None:
        if batch_size < 1:
            raise InvalidParameterError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if speculation is not None and speculation < 0:
            raise InvalidParameterError(
                f"speculation must be >= 0, got {speculation}"
            )
        if oracle is None and backend is None:
            raise InvalidParameterError(
                "QueryEngine needs an oracle or a backend"
            )
        if backend is not None and oracle is not None and backend.oracle is not oracle:
            raise InvalidParameterError(
                "backend was constructed over a different oracle"
            )
        self.backend = backend if backend is not None else InlineBackend(oracle)
        self.oracle = self.backend.oracle
        self.batch_size = batch_size
        self.speculation = batch_size if speculation is None else speculation
        self.cache = cache if cache is not None else AnswerCache()
        self.cache.bind(_answer_source(self.oracle))
        self.scheduler_rounds = 0
        self.oracle_round_trips = 0
        self.dispatched_queries = 0
        self.deduped_queries = 0
        #: admitted, unfinished flows in admission order
        self._flows: list[Flow] = []
        #: key -> flows awaiting that key's answer (first = the dispatcher)
        self._waiters: dict[QueryKey, list[Flow]] = {}
        #: ticket id -> the keys it carries, in submission order
        self._tickets: dict[int, list[QueryKey]] = {}

    def ensure_executes_for(self, oracle: "Oracle") -> None:
        """Raise unless this engine dispatches to ``oracle`` — algorithms
        call this so a mismatched engine cannot silently charge one
        ledger while the algorithm snapshots another.

        An :class:`~repro.audit.AuditSession` hands algorithms a
        recording proxy around the oracle it was bound to; the proxy
        shares the raw oracle's ledger, so either side of the pair is
        accepted.
        """
        if self.oracle is oracle:
            return
        if getattr(oracle, "_session_inner", None) is self.oracle:
            return
        if getattr(self.oracle, "_session_inner", None) is oracle:
            return
        raise InvalidParameterError(
            "engine must be constructed over the same oracle it executes for"
        )

    # -- statistics ------------------------------------------------------
    def snapshot(self) -> EngineStats:
        """Counters now; pair with :meth:`stats_since` to attribute engine
        work to one algorithm run. All counters are the engine's own —
        round-trips other users of the same oracle pay (including an
        algorithm's direct point-query batches) are *not* included."""
        return EngineStats(
            scheduler_rounds=self.scheduler_rounds,
            oracle_round_trips=self.oracle_round_trips,
            dispatched_queries=self.dispatched_queries,
            deduped_queries=self.deduped_queries,
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
        )

    def stats_since(self, snapshot: EngineStats) -> EngineStats:
        return self.snapshot() - snapshot

    @property
    def stats(self) -> EngineStats:
        """Lifetime statistics of this engine."""
        return self.snapshot()

    # -- the non-blocking core -------------------------------------------
    def admit(
        self,
        stepper: CoverageStepper,
        *,
        on_complete: CompletionHook | None = None,
    ) -> Flow:
        """Register a stepper for scheduling; returns its :class:`Flow`.

        A stepper that is already done (tau=0, empty view) completes
        immediately — its ``on_complete`` fires before ``admit`` returns
        and any steppers it spawns are admitted in turn.
        """
        flow = Flow(stepper, on_complete)
        if stepper.done:
            self._finish(flow)
        else:
            self._flows.append(flow)
        return flow

    def retire(self, flow: Flow) -> None:
        """Withdraw an unfinished flow (a cancelled job): it is no longer
        pumped and answers arriving for it are cached but not fed. Paid
        queries stay paid — retirement abandons the audit, not the bill."""
        flow.retired = True
        if flow in self._flows:
            self._flows.remove(flow)

    def pump(self) -> list[Ticket]:
        """Issue every ready frontier: settle completions, collect each
        admitted flow's pending queries, answer what the cache and the
        in-flight table already know, and submit the rest to the backend
        in batches. Returns the tickets submitted by this call (answers
        may not be ready yet); hand each to :meth:`absorb` once gathered.
        """
        collected, tickets = self._pump()
        return tickets

    def absorb(self, ticket: Ticket, answers: Sequence[bool]) -> None:
        """Feed one completed ticket's answers back into the system:
        store them in the cache and advance every flow that was waiting
        on them. ``answers`` is what ``backend.gather(ticket)`` returned
        — parallel to the ticket's queries. Completion hooks do not fire
        here; they fire at the next :meth:`pump` (or :meth:`settle`), in
        admission order.
        """
        keys = self._tickets.pop(ticket.ticket_id, None)
        if keys is None:
            raise InvalidParameterError(
                f"ticket {ticket.ticket_id} is not outstanding on this engine"
            )
        if len(answers) != len(keys):
            raise InvalidParameterError(
                f"ticket {ticket.ticket_id} carried {len(keys)} queries "
                f"but {len(answers)} answers were absorbed"
            )
        feeds: dict[Flow, dict[QueryKey, bool]] = {}
        for key, answer in zip(keys, answers):
            answer = bool(answer)
            self.cache.store(key, answer)
            for flow in self._waiters.pop(key, ()):
                feeds.setdefault(flow, {})[key] = answer
        for flow, answered in feeds.items():
            flow.outstanding -= len(answered)
            if not flow.retired:
                flow.stepper.feed(answered)

    def discard(self, ticket: Ticket) -> None:
        """Drop an outstanding ticket whose answers will never arrive
        (its gather failed). Waiting flows stop counting it as in
        flight; the queries themselves are abandoned — drivers retire or
        re-run the affected audits. A no-op for unknown tickets."""
        keys = self._tickets.pop(ticket.ticket_id, None)
        if keys is None:
            return
        for key in keys:
            for flow in self._waiters.pop(key, ()):
                flow.outstanding -= 1

    def settle(self) -> None:
        """Fire completion hooks for every flow whose stepper finished,
        in admission order; spawned steppers are admitted (and, if born
        done, completed) depth-first. :meth:`pump` calls this first, so
        explicit calls are only needed to observe completions without
        pumping."""
        for flow in list(self._flows):
            if flow.stepper.done and not flow.finished:
                self._finish(flow)

    @property
    def outstanding_tickets(self) -> int:
        """Tickets submitted by this engine and not yet absorbed."""
        return len(self._tickets)

    @property
    def active_flows(self) -> int:
        """Admitted flows that have not finished (or been retired)."""
        return len(self._flows)

    @property
    def has_work(self) -> bool:
        """True while any flow is unfinished or any ticket unabsorbed."""
        return bool(self._flows or self._tickets)

    # -- scheduling ------------------------------------------------------
    def run(
        self,
        steppers: Iterable[CoverageStepper],
        *,
        on_complete: CompletionHook | None = None,
        on_round: Callable[[], None] | None = None,
    ) -> dict[CoverageStepper, int]:
        """Drive ``steppers`` (plus any their completions spawn) to done.

        A thin drain loop over the non-blocking core: pump the ready
        frontier, wait for the backend, absorb completions, repeat until
        every stepper this call admitted (and every stepper spawned from
        them) has finished. Completion order is deterministic: flows
        settle in admission order. ``on_round`` (when given) fires after
        every scheduler round — the progress hook audit sessions use.

        Flows admitted by *other* drivers keep advancing while this call
        runs (their frontiers share the same pumps); the call returns as
        soon as its own steppers are done, leaving the rest in flight.

        Returns
        -------
        dict
            Per-stepper count of set queries dispatched to the crowd on
            its behalf. A query several steppers asked in the same round
            is attributed to the first requester (the one that caused the
            dispatch); cache hits are attributed to nobody. Summed over
            all steppers this equals the window's dispatched-query total,
            so it splits the dollar bill of a shared run across its runs.
        """
        tracked = [self.admit(stepper, on_complete=on_complete) for stepper in steppers]

        def all_finished() -> bool:
            stack = list(tracked)
            while stack:
                flow = stack.pop()
                if not (flow.finished or flow.retired):
                    return False
                stack.extend(flow.spawned)
            return True

        try:
            while True:
                self.settle()
                if all_finished():
                    break
                collected, _ = self._pump()
                while self._tickets:
                    ticket = self.backend.next_done()
                    try:
                        answers = self.backend.gather(ticket)
                    except BaseException:
                        # The gather consumed the ticket backend-side;
                        # drop it here too or the drain spins forever on
                        # a ticket the backend no longer knows.
                        self.discard(ticket)
                        raise
                    self.absorb(ticket, answers)
                if collected:
                    if on_round is not None:
                        on_round()
                elif not self._flows:
                    # Tracked flows unfinished, yet nothing to collect and
                    # nothing in flight: the bookkeeping is broken.
                    raise RuntimeError(
                        "engine has unfinished flows but no pending work"
                    )
        except BaseException:
            # An aborted drive (budget exhaustion, oracle failure) must
            # not leave its steppers admitted: a later drive on this
            # engine would keep pumping them — and keep paying for them.
            stack = list(tracked)
            while stack:
                flow = stack.pop()
                if not flow.finished:
                    self.retire(flow)
                stack.extend(flow.spawned)
            raise

        dispatched_for: dict[CoverageStepper, int] = {}
        stack = list(tracked)
        while stack:
            flow = stack.pop(0)
            dispatched_for[flow.stepper] = flow.dispatched
            stack.extend(flow.spawned)
        return dispatched_for

    def drive(
        self,
        stepper: CoverageStepper,
        *,
        on_round: Callable[[], None] | None = None,
    ) -> None:
        """Convenience wrapper: run a single stepper to completion."""
        self.run([stepper], on_round=on_round)

    # -- internals -------------------------------------------------------
    def _finish(self, flow: Flow) -> None:
        flow.finished = True
        if flow in self._flows:
            self._flows.remove(flow)
        if flow.on_complete is None:
            return
        for spawned in flow.on_complete(flow.stepper) or ():
            flow.spawned.append(self.admit(spawned, on_complete=flow.on_complete))

    def _pump(self) -> tuple[bool, list[Ticket]]:
        """One scheduler round: settle, collect, resolve, submit.

        Returns ``(collected, tickets)`` — ``collected`` is False when no
        flow had a ready query (every flow is waiting on in-flight
        answers), in which case no round is counted.
        """
        self.settle()
        if not self._flows:
            return False, []
        round_answers: dict[QueryKey, bool] = {}
        to_dispatch: list[SetRequest] = []
        feeds: list[tuple[Flow, dict[QueryKey, bool]]] = []
        collected = False
        for flow in list(self._flows):
            if flow.outstanding:
                # Answers are in flight for this flow: its frontier
                # widens when they land, not before. Collecting only
                # quiescent flows makes each flow's emission trace — and
                # therefore its task bill — independent of how finely
                # the driver interleaves pumps and absorbs (a drain loop
                # and a one-ticket-at-a-time service dispatch the exact
                # same queries per flow).
                continue
            requests = list(flow.stepper.pending())
            if not requests:
                raise RuntimeError(
                    "stepper is not done but has no pending queries — "
                    "its dependency tracking is broken"
                )
            collected = True
            feed: dict[QueryKey, bool] = {}
            for request in requests:
                key = request.key
                if key in round_answers:
                    # Another flow asked the same question this round and
                    # the cache already answered it.
                    self.deduped_queries += 1
                    feed[key] = round_answers[key]
                    continue
                waiters = self._waiters.get(key)
                if waiters is not None:
                    # In flight (this round or an earlier pump): join the
                    # waiters instead of paying twice.
                    self.deduped_queries += 1
                    waiters.append(flow)
                    flow.outstanding += 1
                    continue
                cached = self.cache.lookup(key)
                if cached is not None:
                    round_answers[key] = cached
                    feed[key] = cached
                else:
                    self._waiters[key] = [flow]
                    to_dispatch.append(request)
                    flow.outstanding += 1
                    flow.dispatched += 1
            if feed:
                feeds.append((flow, feed))
        if collected:
            self.scheduler_rounds += 1
        for flow, feed in feeds:
            flow.stepper.feed(feed)
        tickets: list[Ticket] = []
        submitted = 0
        try:
            for start in range(0, len(to_dispatch), self.batch_size):
                chunk = to_dispatch[start : start + self.batch_size]
                ticket = self.backend.submit(chunk)
                self.oracle_round_trips += 1
                self._tickets[ticket.ticket_id] = [request.key for request in chunk]
                tickets.append(ticket)
                submitted += len(chunk)
        except BaseException:
            # A refused batch (budget exhaustion) publishes nothing: the
            # unsubmitted requests must leave the in-flight table, or
            # every later audit asking the same question would wait
            # forever on a ticket that does not exist.
            for request in to_dispatch[submitted:]:
                waiters = self._waiters.pop(request.key, ())
                for position, waiter in enumerate(waiters):
                    waiter.outstanding -= 1
                    if position == 0:  # the dispatcher carried the attribution
                        waiter.dispatched -= 1
            self.dispatched_queries += submitted
            raise
        self.dispatched_queries += len(to_dispatch)
        return collected, tickets
