"""Execution statistics for the batched query engine.

Separated from the scheduler so that :mod:`repro.core.results` can type
against :class:`EngineStats` without importing the engine machinery (and
without creating a core <-> engine import cycle).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EngineStats"]


@dataclass(frozen=True)
class EngineStats:
    """What the engine did on behalf of one (or several) coverage runs.

    Attributes
    ----------
    scheduler_rounds:
        Iterations of the collect -> dedup -> dispatch -> feed loop.
    oracle_round_trips:
        Batches this engine dispatched to the oracle — one round-trip
        each. This is the latency measure the engine minimises. (The
        algorithm-wide round-trip total, including any point-query
        batches issued outside the engine, is ``TaskUsage.n_rounds``.)
    dispatched_queries:
        Set queries sent to the oracle (after cache and in-flight dedup).
    deduped_queries:
        Requests answered by an identical query already in flight in the
        same scheduler round (cross-run sharing).
    cache_hits / cache_misses:
        Answer-cache accounting over the same window.
    """

    scheduler_rounds: int = 0
    oracle_round_trips: int = 0
    dispatched_queries: int = 0
    deduped_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def __add__(self, other: "EngineStats") -> "EngineStats":
        return EngineStats(
            self.scheduler_rounds + other.scheduler_rounds,
            self.oracle_round_trips + other.oracle_round_trips,
            self.dispatched_queries + other.dispatched_queries,
            self.deduped_queries + other.deduped_queries,
            self.cache_hits + other.cache_hits,
            self.cache_misses + other.cache_misses,
        )

    def __sub__(self, other: "EngineStats") -> "EngineStats":
        """Counter delta — used to attribute a window of engine work
        (``engine.snapshot()`` before, subtract after) to one run."""
        return EngineStats(
            self.scheduler_rounds - other.scheduler_rounds,
            self.oracle_round_trips - other.oracle_round_trips,
            self.dispatched_queries - other.dispatched_queries,
            self.deduped_queries - other.deduped_queries,
            self.cache_hits - other.cache_hits,
            self.cache_misses - other.cache_misses,
        )

    def describe(self) -> str:
        return (
            f"engine: {self.dispatched_queries} queries in "
            f"{self.oracle_round_trips} round-trips "
            f"({self.scheduler_rounds} scheduler rounds, "
            f"{self.deduped_queries} deduped, "
            f"{self.cache_hits} cache hits / {self.cache_misses} misses)"
        )
