"""The unit of work the engine schedules: one pending set query.

A request is keyed by *(predicate, exact index content)* so that two runs
asking the same question about the same objects — whatever view slice the
indices came from — collide in the answer cache and in the in-flight
dedup table.

Index identity is carried by :class:`IndexKey`, which comes in two
shapes. A **contiguous ascending run** (``start, start+1, ..., stop-1``
— the only shape tree nodes over ``arange`` views ever produce) is keyed
by its endpoints: O(1) to build and to hash, no byte-string
materialized. Any other index array falls back to its raw little-endian
int64 bytes with the hash computed exactly once; keys are **interned**
per process, so every later lookup of the same content compares by
object identity instead of re-hashing megabyte byte-strings.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.groups import GroupPredicate
from repro.data.membership import as_run

__all__ = ["IndexKey", "QueryKey", "SetRequest", "set_query_key"]


class IndexKey:
    """Interned, hash-cached identity of a set query's index array.

    Use :meth:`IndexKey.of` — the constructor is an implementation
    detail. Equal index content always yields the *same object*, so dict
    probes against previously seen keys short-circuit on identity.
    """

    __slots__ = ("start", "stop", "payload", "_hash")

    #: Intern table: one canonical IndexKey per distinct index content.
    #: Run keys are tiny; payload keys hold the bytes they deduplicate.
    _interned: "dict[tuple[int, int] | bytes, IndexKey]" = {}

    #: Interning is a cache, not a registry: equality and hashing are
    #: content-based, so the table may be dropped at any time without
    #: affecting correctness. Clearing it when it grows past this many
    #: entries keeps a long-lived service from retaining every distinct
    #: scattered index array (megabytes each at million-object scale)
    #: for the life of the process.
    _MAX_INTERNED = 1 << 16

    def __init__(
        self, start: int, stop: int, payload: bytes | None, hash_value: int
    ) -> None:
        self.start = start
        self.stop = stop
        self.payload = payload
        self._hash = hash_value

    @classmethod
    def of(cls, indices: np.ndarray) -> "IndexKey":
        """The canonical key of ``indices`` (int64 content equality)."""
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        run = as_run(indices)
        probe: tuple[int, int] | bytes = (
            run if run is not None else indices.tobytes()
        )
        key = cls._interned.get(probe)
        if key is None:
            if run is not None:
                key = cls(run[0], run[1], None, hash(run))
            else:
                payload = probe  # the bytes, hashed exactly once
                key = cls(-1, -1, payload, hash(payload))
            cls._intern(probe, key)
        return key

    @classmethod
    def of_run(cls, start: int, stop: int) -> "IndexKey":
        """The canonical key of the contiguous run ``[start, stop)``
        without materializing the index array (checkpoint resume uses
        this for million-object runs)."""
        if stop <= start:
            return cls.of(np.empty(0, dtype=np.int64))
        probe = (int(start), int(stop))
        key = cls._interned.get(probe)
        if key is None:
            key = cls(probe[0], probe[1], None, hash(probe))
            cls._intern(probe, key)
        return key

    @classmethod
    def _intern(cls, probe, key: "IndexKey") -> None:
        if len(cls._interned) >= cls._MAX_INTERNED:
            cls._interned.clear()
        cls._interned[probe] = key

    @property
    def is_run(self) -> bool:
        """True when this key denotes a contiguous ascending run."""
        return self.payload is None

    @property
    def n_objects(self) -> int:
        """How many indices the key denotes."""
        if self.payload is None:
            return self.stop - self.start
        return len(self.payload) // 8

    def to_array(self) -> np.ndarray:
        """Rebuild the index array the key was derived from."""
        if self.payload is None:
            return np.arange(self.start, self.stop, dtype=np.int64)
        return np.frombuffer(self.payload, dtype=np.int64)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, IndexKey):
            return NotImplemented
        # Interning makes equal keys identical in-process, but keys can
        # also be rebuilt (checkpoint resume), so fall back to content.
        return (
            self.start == other.start
            and self.stop == other.stop
            and self.payload == other.payload
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        if self.payload is None:
            return f"IndexKey(run=[{self.start}, {self.stop}))"
        return f"IndexKey({self.n_objects} scattered indices)"


#: Cache/dedup key of a set query. Predicates are immutable, hashable
#: value objects (see :mod:`repro.data.groups`); the second component is
#: the interned :class:`IndexKey` of the index array.
QueryKey = Tuple[GroupPredicate, IndexKey]


def set_query_key(indices: np.ndarray, predicate: GroupPredicate) -> QueryKey:
    """The :data:`QueryKey` of a set query over ``indices``."""
    return (predicate, IndexKey.of(indices))


class SetRequest:
    """A ready set query emitted by a stepper, awaiting an answer.

    ``index_key`` lets emitters that already know their indices' shape
    (a stepper slicing a contiguous view knows each node is the run
    ``[view0+b, view0+e+1)``) skip the O(n) run detection; when omitted
    the key is derived from the array.
    """

    __slots__ = ("indices", "predicate", "key")

    def __init__(
        self,
        indices: np.ndarray,
        predicate: GroupPredicate,
        *,
        index_key: IndexKey | None = None,
    ) -> None:
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.predicate = predicate
        self.key: QueryKey = (
            predicate,
            index_key if index_key is not None else IndexKey.of(self.indices),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return (
            f"SetRequest({len(self.indices)} objects, "
            f"{self.predicate.describe()!r})"
        )
