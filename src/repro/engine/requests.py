"""The unit of work the engine schedules: one pending set query.

A request is keyed by *(predicate, exact index content)* so that two runs
asking the same question about the same objects — whatever view slice the
indices came from — collide in the answer cache and in the in-flight
dedup table.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.groups import GroupPredicate

__all__ = ["QueryKey", "SetRequest", "set_query_key"]

#: Cache/dedup key of a set query. Predicates are immutable, hashable
#: value objects (see :mod:`repro.data.groups`); the second component is
#: the raw little-endian int64 bytes of the index array.
QueryKey = Tuple[GroupPredicate, bytes]


def set_query_key(indices: np.ndarray, predicate: GroupPredicate) -> QueryKey:
    """The :data:`QueryKey` of a set query over ``indices``."""
    return (predicate, np.ascontiguousarray(indices, dtype=np.int64).tobytes())


class SetRequest:
    """A ready set query emitted by a stepper, awaiting an answer."""

    __slots__ = ("indices", "predicate", "key")

    def __init__(self, indices: np.ndarray, predicate: GroupPredicate) -> None:
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.predicate = predicate
        self.key: QueryKey = set_query_key(self.indices, predicate)

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return (
            f"SetRequest({len(self.indices)} objects, "
            f"{self.predicate.describe()!r})"
        )
