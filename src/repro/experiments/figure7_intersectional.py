"""Figure 7f/7h: Intersectional-Coverage vs brute force.

* 7f — the four Table 3 settings on three binary attributes (2×2×2).
* 7h — the "effective 1" setting on both paper schemas, (2,2,2) and
  (2,4): with equal numbers of fully-specified subgroups the costs are
  expected to be similar — "the only important feature is the cardinality
  of the attributes rather than the number of attributes".

The brute-force comparator runs Group-Coverage once per fully-specified
leaf subgroup (coverage of the upper patterns then follows from the
leaf counts for free, for both plans).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.group_coverage import group_coverage
from repro.core.intersectional_coverage import intersectional_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.synthetic import intersectional_dataset
from repro.experiments.harness import trial_rngs
from repro.experiments.reporting import render_table
from repro.experiments.settings import (
    IntersectionalSetting,
    intersectional_schema,
    intersectional_settings,
)
from repro.patterns.graph import PatternGraph

__all__ = [
    "IntersectionalComparison",
    "compare_on_intersectional_setting",
    "run_figure7f",
    "run_figure7h",
    "render_intersectional_comparisons",
]


@dataclass(frozen=True)
class IntersectionalComparison:
    label: str
    intersectional_tasks: float
    brute_force_tasks: float
    verdicts_agree: bool
    mean_n_mups: float

    @property
    def speedup(self) -> float:
        if self.intersectional_tasks == 0:
            return float("inf")
        return self.brute_force_tasks / self.intersectional_tasks


def compare_on_intersectional_setting(
    setting: IntersectionalSetting,
    *,
    seed: int,
    n_trials: int = 5,
    tau: int = 50,
    n: int = 50,
) -> IntersectionalComparison:
    """Compare Intersectional-Coverage vs per-leaf brute force."""
    schema = intersectional_schema(setting.cardinalities)
    graph = PatternGraph(schema)
    leaf_groups = [leaf.to_group() for leaf in graph.leaves()]

    intersectional_tasks: list[int] = []
    brute_tasks: list[int] = []
    mup_counts: list[int] = []
    agree = True
    for rng in trial_rngs(seed, n_trials):
        dataset = intersectional_dataset(
            schema, dict(setting.joint_counts), rng=rng
        )
        report = intersectional_coverage(
            GroundTruthOracle(dataset),
            schema,
            tau,
            n=n,
            rng=rng,
            dataset_size=len(dataset),
        )
        intersectional_tasks.append(report.tasks.total)
        mup_counts.append(len(report.mups))

        oracle = GroundTruthOracle(dataset)
        brute_verdicts = {}
        for g in leaf_groups:
            brute_verdicts[g] = group_coverage(
                oracle, g, tau, n=n, dataset_size=len(dataset)
            ).covered
        brute_tasks.append(oracle.ledger.total)
        for entry in report.leaf_report.entries:
            agree &= entry.covered == brute_verdicts[entry.group]
    return IntersectionalComparison(
        label=setting.name,
        intersectional_tasks=float(np.mean(intersectional_tasks)),
        brute_force_tasks=float(np.mean(brute_tasks)),
        verdicts_agree=agree,
        mean_n_mups=float(np.mean(mup_counts)),
    )


def run_figure7f(
    *, seed: int = 41, n_trials: int = 5, tau: int = 50, n: int = 50
) -> list[IntersectionalComparison]:
    """7f: the four Table 3 settings on three binary attributes."""
    return [
        compare_on_intersectional_setting(
            setting, seed=seed + i, n_trials=n_trials, tau=tau, n=n
        )
        for i, setting in enumerate(intersectional_settings((2, 2, 2)))
    ]


def run_figure7h(
    *, seed: int = 43, n_trials: int = 5, tau: int = 50, n: int = 50
) -> list[IntersectionalComparison]:
    """7h: the "effective 1" setting on (2,2,2) vs (2,4) — equal numbers
    of leaf subgroups, expected similar cost."""
    comparisons: list[IntersectionalComparison] = []
    for i, cards in enumerate(((2, 2, 2), (2, 4))):
        setting = intersectional_settings(cards)[0]
        labeled = IntersectionalSetting(
            name=f"sigma={'x'.join(str(c) for c in cards)}",
            cardinalities=setting.cardinalities,
            joint_counts=setting.joint_counts,
            description=setting.description,
        )
        comparisons.append(
            compare_on_intersectional_setting(
                labeled, seed=seed + i, n_trials=n_trials, tau=tau, n=n
            )
        )
    return comparisons


def render_intersectional_comparisons(
    comparisons: Sequence[IntersectionalComparison], *, title: str
) -> str:
    rows = [
        [
            c.label,
            f"{c.intersectional_tasks:.0f}",
            f"{c.brute_force_tasks:.0f}",
            f"{c.speedup:.2f}x",
            f"{c.mean_n_mups:.1f}",
            "yes" if c.verdicts_agree else "NO",
        ]
        for c in comparisons
    ]
    return render_table(
        [
            "setting",
            "Intersectional-Coverage",
            "Group-Coverage (brute)",
            "speedup",
            "mean #MUPs",
            "verdicts agree",
        ],
        rows,
        title=title,
    )
