"""Figure 7a–7d: Group-Coverage performance sweeps on synthetic data.

Each runner reproduces one panel of the paper's Figure 7 for the single
binary attribute (female/male) scenario: average number of tasks for
Group-Coverage, the Base-Coverage baseline, and the theoretical
``N/n + tau*log10(n)`` upper bound, while sweeping

* 7a — the number of females ``f`` in ``[0, 2*tau]``,
* 7b — the coverage threshold ``tau`` with ``f = tau`` (the worst case),
* 7c — the set-query size bound ``n``,
* 7d — the dataset size ``N`` from 1 K to 1 M.

Answers come from the noise-free :class:`GroundTruthOracle`, matching the
paper's simulated-crowd setup (§6.5.1); every point is averaged over
independent trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.audit import AuditSession, BaseAuditSpec, GroupAuditSpec
from repro.core.bounds import upper_bound_tasks
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.experiments.harness import trial_rngs
from repro.experiments.reporting import render_series

__all__ = [
    "SweepResult",
    "run_figure7a",
    "run_figure7b",
    "run_figure7c",
    "run_figure7d",
    "render_sweep",
]

FEMALE = group(gender="female")


@dataclass(frozen=True)
class SweepResult:
    """One figure panel: x values and the three task-count series."""

    title: str
    x_label: str
    x_values: tuple[float, ...]
    group_coverage_tasks: tuple[float, ...]
    base_coverage_tasks: tuple[float, ...]
    upper_bound: tuple[float, ...]

    def series(self) -> dict[str, Sequence[float]]:
        return {
            "Group-Coverage": self.group_coverage_tasks,
            "Base-Coverage": self.base_coverage_tasks,
            "UpperBound": self.upper_bound,
        }


def _measure_point(
    rng: np.random.Generator,
    *,
    n_total: int,
    n_females: int,
    tau: int,
    n: int,
    include_base: bool = True,
) -> tuple[int, int]:
    """Task counts of one Group-Coverage and one Base-Coverage run."""
    dataset = binary_dataset(n_total, n_females, rng=rng)
    with AuditSession(GroundTruthOracle(dataset)) as session:
        result = session.run(GroupAuditSpec(predicate=FEMALE, tau=tau, n=n))
    base_tasks = 0
    if include_base:
        with AuditSession(GroundTruthOracle(dataset)) as session:
            base = session.run(BaseAuditSpec(predicate=FEMALE, tau=tau))
        base_tasks = base.tasks.total
    return result.tasks.total, base_tasks


def _sweep(
    title: str,
    x_label: str,
    points: Sequence[tuple[float, dict]],
    *,
    seed: int,
    n_trials: int,
) -> SweepResult:
    group_means: list[float] = []
    base_means: list[float] = []
    bounds: list[float] = []
    for _, params in points:
        group_tasks: list[int] = []
        base_tasks: list[int] = []
        for rng in trial_rngs(seed, n_trials):
            g, b = _measure_point(rng, **params)
            group_tasks.append(g)
            base_tasks.append(b)
        group_means.append(float(np.mean(group_tasks)))
        base_means.append(float(np.mean(base_tasks)))
        bounds.append(
            upper_bound_tasks(params["n_total"], params["n"], params["tau"])
        )
    return SweepResult(
        title=title,
        x_label=x_label,
        x_values=tuple(x for x, _ in points),
        group_coverage_tasks=tuple(group_means),
        base_coverage_tasks=tuple(base_means),
        upper_bound=tuple(bounds),
    )


def run_figure7a(
    *,
    seed: int = 17,
    n_trials: int = 5,
    n_total: int = 100_000,
    tau: int = 50,
    n: int = 50,
    f_values: Sequence[int] | None = None,
) -> SweepResult:
    """7a: tasks vs number of females ``f`` in ``[0, 2*tau]``."""
    f_values = list(f_values) if f_values is not None else list(range(0, 2 * tau + 1, 10))
    points = [
        (float(f), dict(n_total=n_total, n_females=f, tau=tau, n=n))
        for f in f_values
    ]
    return _sweep(
        "Figure 7a — varying #females (N=100K, tau=50, n=50)",
        "f",
        points,
        seed=seed,
        n_trials=n_trials,
    )


def run_figure7b(
    *,
    seed: int = 19,
    n_trials: int = 5,
    n_total: int = 100_000,
    n: int = 50,
    tau_values: Sequence[int] | None = None,
) -> SweepResult:
    """7b: tasks vs threshold ``tau`` with ``f = tau`` (the worst case)."""
    tau_values = list(tau_values) if tau_values is not None else [1, *range(10, 101, 10)]
    points = [
        (float(tau), dict(n_total=n_total, n_females=tau, tau=tau, n=n))
        for tau in tau_values
    ]
    return _sweep(
        "Figure 7b — varying coverage threshold (N=100K, f=tau, n=50)",
        "tau",
        points,
        seed=seed,
        n_trials=n_trials,
    )


def run_figure7c(
    *,
    seed: int = 23,
    n_trials: int = 5,
    n_total: int = 100_000,
    tau: int = 50,
    n_values: Sequence[int] | None = None,
) -> SweepResult:
    """7c: tasks vs set-query size bound ``n`` (f = tau = 50)."""
    n_values = (
        list(n_values)
        if n_values is not None
        else [1, 2, 5, 10, 20, 50, 100, 200, 300, 400]
    )
    points = [
        (float(n), dict(n_total=n_total, n_females=tau, tau=tau, n=n))
        for n in n_values
    ]
    return _sweep(
        "Figure 7c — varying subset size bound (N=100K, f=tau=50)",
        "n",
        points,
        seed=seed,
        n_trials=n_trials,
    )


def run_figure7d(
    *,
    seed: int = 29,
    n_trials: int = 3,
    tau: int = 50,
    n: int = 50,
    n_values: Sequence[int] | None = None,
) -> SweepResult:
    """7d: tasks vs dataset size ``N`` from 1 K to 1 M (f = tau = 50)."""
    n_values = (
        list(n_values)
        if n_values is not None
        else [1_000, 10_000, 100_000, 200_000, 500_000, 1_000_000]
    )
    points = [
        (float(N), dict(n_total=N, n_females=tau, tau=tau, n=n))
        for N in n_values
    ]
    return _sweep(
        "Figure 7d — varying dataset size (f=tau=50, n=50)",
        "N",
        points,
        seed=seed,
        n_trials=n_trials,
    )


def render_sweep(result: SweepResult) -> str:
    return render_series(
        result.x_label,
        result.x_values,
        {label: [f"{v:.0f}" for v in values] for label, values in result.series().items()},
        title=result.title,
    )
