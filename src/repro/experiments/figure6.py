"""Figure 6: downstream-task consequences of coverage gaps.

Runs the drowsiness-detection (6a) and gender-detection (6b) protocols of
§6.4 and renders the two disparity-vs-added-samples series. ``scale``
selects between the paper's full protocol (10 repeats, full training
sets) and a fast configuration for CI-style runs; the qualitative claim —
accuracy/loss disparity shrinks monotonically as uncovered samples are
re-added — holds at both scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.downstream.experiments import (
    DisparityCurve,
    drowsiness_experiment,
    gender_experiment,
)
from repro.errors import InvalidParameterError
from repro.experiments.reporting import render_series

__all__ = ["Figure6Result", "run_figure6", "render_figure6"]


@dataclass(frozen=True)
class Figure6Result:
    drowsiness: DisparityCurve
    gender: DisparityCurve


_SCALES = {
    # (n_repeats, max_train_size)
    "paper": (10, None),
    "fast": (3, 4000),
    "smoke": (1, 1500),
}


def run_figure6(*, seed: int = 3, scale: str = "fast") -> Figure6Result:
    """Run both §6.4 experiments at the requested scale."""
    if scale not in _SCALES:
        raise InvalidParameterError(
            f"scale must be one of {sorted(_SCALES)}, got {scale!r}"
        )
    n_repeats, max_train = _SCALES[scale]
    drowsiness = drowsiness_experiment(
        np.random.default_rng(seed), n_repeats=n_repeats, max_train_size=max_train
    )
    gender = gender_experiment(
        np.random.default_rng(seed + 1), n_repeats=n_repeats, max_train_size=max_train
    )
    return Figure6Result(drowsiness=drowsiness, gender=gender)


def render_figure6(result: Figure6Result) -> str:
    sections = []
    for label, curve in (
        ("Figure 6a — drowsiness detection", result.drowsiness),
        ("Figure 6b — gender detection", result.gender),
    ):
        sections.append(
            render_series(
                "added",
                curve.n_added_values,
                {
                    "accuracy disparity": [
                        f"{v:.4f}" for v in curve.accuracy_disparities
                    ],
                    "loss disparity": [f"{v:.4f}" for v in curve.loss_disparities],
                    "random-test acc": [
                        f"{p.random_test_accuracy:.4f}" for p in curve.points
                    ],
                    "uncovered-test acc": [
                        f"{p.uncovered_test_accuracy:.4f}" for p in curve.points
                    ],
                },
                title=label,
            )
        )
    return "\n\n".join(sections)
