"""Trial-running utilities shared by the experiment runners.

The paper averages every synthetic experiment over multiple runs "to
better capture the effect of the dataset's underlying distribution";
:func:`average_over_trials` is that loop, with one child generator per
trial spawned deterministically from a root seed.
"""

from __future__ import annotations

from typing import Callable, TypeVar

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["trial_rngs", "average_over_trials"]

T = TypeVar("T")


def trial_rngs(seed: int, n_trials: int) -> list[np.random.Generator]:
    """``n_trials`` independent generators spawned from one root seed."""
    if n_trials < 1:
        raise InvalidParameterError("n_trials must be >= 1")
    return [
        np.random.default_rng(ss) for ss in np.random.SeedSequence(seed).spawn(n_trials)
    ]


def average_over_trials(
    fn: Callable[[np.random.Generator], float],
    *,
    seed: int,
    n_trials: int,
) -> float:
    """Mean of ``fn(rng)`` over independent trials."""
    rngs = trial_rngs(seed, n_trials)
    return float(np.mean([fn(rng) for rng in rngs]))
