"""Figure 7e/7g: Multiple-Coverage vs brute force, single attribute.

* 7e — the four Table 3 settings at sigma = 4: compare Algorithm 2
  (sampling + super-group aggregation) against the brute-force plan that
  runs Group-Coverage once per group.
* 7g — the "effective" composition at sigma = 3..6: the gap between the
  two plans widens with cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.group_coverage import group_coverage
from repro.core.multiple_coverage import multiple_coverage
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import Group
from repro.data.synthetic import single_attribute_dataset
from repro.experiments.harness import trial_rngs
from repro.experiments.reporting import render_table
from repro.experiments.settings import (
    MultiGroupSetting,
    multi_group_setting_for_sigma,
    multi_group_settings,
)

__all__ = [
    "MultiComparison",
    "compare_on_setting",
    "run_figure7e",
    "run_figure7g",
    "render_multi_comparisons",
]


@dataclass(frozen=True)
class MultiComparison:
    """Task counts of the two plans on one setting (means over trials)."""

    label: str
    multiple_coverage_tasks: float
    brute_force_tasks: float
    verdicts_agree: bool

    @property
    def speedup(self) -> float:
        if self.multiple_coverage_tasks == 0:
            return float("inf")
        return self.brute_force_tasks / self.multiple_coverage_tasks


def _brute_force_tasks(dataset, groups: Sequence[Group], tau: int, n: int) -> tuple[int, dict[Group, bool]]:
    """Independent Group-Coverage per group — the paper's comparator."""
    oracle = GroundTruthOracle(dataset)
    verdicts: dict[Group, bool] = {}
    for g in groups:
        verdicts[g] = group_coverage(
            oracle, g, tau, n=n, dataset_size=len(dataset)
        ).covered
    return oracle.ledger.total, verdicts


def compare_on_setting(
    setting: MultiGroupSetting,
    *,
    seed: int,
    n_trials: int = 5,
    tau: int = 50,
    n: int = 50,
    attribute: str = "group",
) -> MultiComparison:
    """Compare Multiple-Coverage vs brute force on one composition."""
    multi_tasks: list[int] = []
    brute_tasks: list[int] = []
    agree = True
    for rng in trial_rngs(seed, n_trials):
        dataset = single_attribute_dataset(
            dict(setting.counts), attribute=attribute, rng=rng
        )
        groups = [Group({attribute: value}) for value in setting.counts]
        report = multiple_coverage(
            GroundTruthOracle(dataset),
            groups,
            tau,
            n=n,
            rng=rng,
            dataset_size=len(dataset),
        )
        multi_tasks.append(report.tasks.total)
        tasks, brute_verdicts = _brute_force_tasks(dataset, groups, tau, n)
        brute_tasks.append(tasks)
        for entry in report.entries:
            agree &= entry.covered == brute_verdicts[entry.group]
    return MultiComparison(
        label=setting.name,
        multiple_coverage_tasks=float(np.mean(multi_tasks)),
        brute_force_tasks=float(np.mean(brute_tasks)),
        verdicts_agree=agree,
    )


def run_figure7e(
    *, seed: int = 31, n_trials: int = 5, tau: int = 50, n: int = 50
) -> list[MultiComparison]:
    """7e: the four Table 3 settings at sigma = 4."""
    return [
        compare_on_setting(setting, seed=seed + i, n_trials=n_trials, tau=tau, n=n)
        for i, setting in enumerate(multi_group_settings())
    ]


def run_figure7g(
    *,
    seed: int = 37,
    n_trials: int = 5,
    tau: int = 50,
    n: int = 50,
    sigmas: Sequence[int] = (3, 4, 5, 6),
) -> list[MultiComparison]:
    """7g: "effective" compositions across attribute cardinalities."""
    return [
        compare_on_setting(
            multi_group_setting_for_sigma(sigma, tau=tau),
            seed=seed + sigma,
            n_trials=n_trials,
            tau=tau,
            n=n,
        )
        for sigma in sigmas
    ]


def render_multi_comparisons(
    comparisons: Sequence[MultiComparison], *, title: str
) -> str:
    rows = [
        [
            c.label,
            f"{c.multiple_coverage_tasks:.0f}",
            f"{c.brute_force_tasks:.0f}",
            f"{c.speedup:.2f}x",
            "yes" if c.verdicts_agree else "NO",
        ]
        for c in comparisons
    ]
    return render_table(
        ["setting", "Multi-Coverage", "Group-Coverage (brute)", "speedup", "verdicts agree"],
        rows,
        title=title,
    )
