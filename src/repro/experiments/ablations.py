"""Ablation studies beyond the paper's figures (DESIGN.md A1–A3).

The paper flags several design choices without quantifying them; these
ablations fill the gaps:

* **A1 — set-query size vs crowd reliability.** §6.5.1 warns that large
  set queries yield "less reliable answers". We model per-answer error
  growing with set size and measure both cost and verdict accuracy across
  ``n``, exposing the cost/reliability trade-off.
* **A2 — majority vote vs Dawid–Skene.** With a spammy worker pool,
  compare aggregation error of the paper's majority vote against EM truth
  inference over the same recorded HITs.
* **A3 — sampling budget ``c``.** Algorithm 2 labels ``c·tau`` samples up
  front; the paper picks ``c = 2``. Sweep ``c`` on the effective-1 setting
  to show the sweet spot.
* **A4/A5** live in :mod:`benchmarks.test_extensions` (cost-aware set
  sizing; pruned MUP search).
* **A6 — systematic worker bias.** §1 worries that crowdsourcing "can
  potentially add human bias into the process". We plant workers who
  systematically label female faces as male and show that redundancy does
  *not* save point-query pipelines (majority of biased answers is still
  biased), while set queries — which only ask about presence — remain
  robust at the same bias levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.group_coverage import group_coverage
from repro.core.multiple_coverage import multiple_coverage
from repro.crowd.oracle import CrowdOracle, GroundTruthOracle
from repro.crowd.platform import CrowdPlatform
from repro.crowd.workers import Worker
from repro.data.groups import Group, group
from repro.data.synthetic import binary_dataset, single_attribute_dataset
from repro.experiments.harness import trial_rngs
from repro.experiments.reporting import render_table
from repro.experiments.settings import multi_group_settings

__all__ = [
    "SetSizeReliabilityPoint",
    "run_ablation_set_size",
    "AggregationComparison",
    "run_ablation_aggregation",
    "SamplingBudgetPoint",
    "run_ablation_sampling_budget",
    "WorkerBiasPoint",
    "run_ablation_worker_bias",
    "render_ablation_set_size",
    "render_ablation_aggregation",
    "render_ablation_sampling_budget",
    "render_ablation_worker_bias",
]

FEMALE = group(gender="female")


# ----------------------------------------------------------------------
# A1 — set-query size vs reliability
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SetSizeReliabilityPoint:
    n: int
    worker_error_rate: float
    mean_tasks: float
    verdict_accuracy: float


def run_ablation_set_size(
    *,
    seed: int = 53,
    n_trials: int = 10,
    n_total: int = 5_000,
    n_females: int = 50,
    tau: int = 50,
    n_values: Sequence[int] = (5, 10, 25, 50, 100, 200),
    base_error: float = 0.002,
    error_per_item: float = 0.0006,
) -> list[SetSizeReliabilityPoint]:
    """Sweep ``n`` with per-answer error ``base + error_per_item * n``:
    bigger sets are cheaper but the crowd misjudges them more often."""
    points: list[SetSizeReliabilityPoint] = []
    for n in n_values:
        error_rate = min(base_error + error_per_item * n, 0.49)
        tasks: list[int] = []
        correct = 0
        for rng in trial_rngs(seed + n, n_trials):
            dataset = binary_dataset(n_total, n_females, rng=rng)
            truth = dataset.count(FEMALE) >= tau
            workers = [
                Worker(worker_id=i, set_error_rate=error_rate, point_error_rate=0.01)
                for i in range(9)
            ]
            platform = CrowdPlatform(dataset, workers, rng, record_hits=False)
            result = group_coverage(
                CrowdOracle(platform), FEMALE, tau, n=n, dataset_size=n_total
            )
            tasks.append(result.tasks.total)
            correct += int(result.covered == truth)
        points.append(
            SetSizeReliabilityPoint(
                n=n,
                worker_error_rate=error_rate,
                mean_tasks=float(np.mean(tasks)),
                verdict_accuracy=correct / n_trials,
            )
        )
    return points


def render_ablation_set_size(points: list[SetSizeReliabilityPoint]) -> str:
    rows = [
        [p.n, f"{p.worker_error_rate:.2%}", f"{p.mean_tasks:.0f}", f"{p.verdict_accuracy:.0%}"]
        for p in points
    ]
    return render_table(
        ["n", "per-answer error", "mean tasks", "verdict accuracy"],
        rows,
        title="Ablation A1 — set-query size vs noisy-crowd reliability "
        "(N=5000, f=tau=50, 3-vote majority)",
    )


# ----------------------------------------------------------------------
# A2 — majority vote vs Dawid–Skene
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AggregationComparison:
    spammer_fraction: float
    n_hits: int
    majority_errors: int
    dawid_skene_errors: int


def run_ablation_aggregation(
    *,
    seed: int = 59,
    n_total: int = 3_000,
    n_females: int = 50,
    tau: int = 50,
    n: int = 25,
    spammer_fractions: Sequence[float] = (0.0, 0.2, 0.4),
    assignments_per_hit: int = 5,
) -> list[AggregationComparison]:
    """Run Group-Coverage through increasingly spammy pools and re-infer
    the recorded HITs with Dawid–Skene."""
    from repro.crowd.workers import make_worker_pool

    comparisons: list[AggregationComparison] = []
    for i, fraction in enumerate(spammer_fractions):
        rng = np.random.default_rng(seed + i)
        dataset = binary_dataset(n_total, n_females, rng=rng)
        workers = make_worker_pool(
            40, rng, error_rate=0.01, spammer_fraction=fraction,
            spammer_error_rate=0.45,
        )
        platform = CrowdPlatform(
            dataset, workers, rng, assignments_per_hit=assignments_per_hit,
            record_hits=True,
        )
        group_coverage(CrowdOracle(platform), FEMALE, tau, n=n, dataset_size=n_total)
        majority_errors, ds_errors = platform.reaggregate_set_hits_with_dawid_skene()
        comparisons.append(
            AggregationComparison(
                spammer_fraction=fraction,
                n_hits=platform.ledger.n_hits,
                majority_errors=majority_errors,
                dawid_skene_errors=ds_errors,
            )
        )
    return comparisons


def render_ablation_aggregation(comparisons: list[AggregationComparison]) -> str:
    rows = [
        [f"{c.spammer_fraction:.0%}", c.n_hits, c.majority_errors, c.dawid_skene_errors]
        for c in comparisons
    ]
    return render_table(
        ["spammer fraction", "#HITs", "majority-vote errors", "Dawid-Skene errors"],
        rows,
        title="Ablation A2 — aggregation scheme under spammy pools "
        "(5 assignments/HIT)",
    )


# ----------------------------------------------------------------------
# A3 — sampling budget c
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SamplingBudgetPoint:
    c: float
    mean_tasks: float
    verdicts_correct: bool


def run_ablation_sampling_budget(
    *,
    seed: int = 61,
    n_trials: int = 5,
    tau: int = 50,
    n: int = 50,
    c_values: Sequence[float] = (0.0, 1.0, 2.0, 4.0, 8.0),
) -> list[SamplingBudgetPoint]:
    """Sweep Algorithm 2's sampling budget on the effective-1 setting."""
    setting = multi_group_settings()[0]
    groups = [Group({"group": value}) for value in setting.counts]
    points: list[SamplingBudgetPoint] = []
    for c in c_values:
        tasks: list[int] = []
        correct = True
        for rng in trial_rngs(seed, n_trials):
            dataset = single_attribute_dataset(
                dict(setting.counts), attribute="group", rng=rng
            )
            report = multiple_coverage(
                GroundTruthOracle(dataset), groups, tau, n=n, c=c, rng=rng,
                dataset_size=len(dataset),
            )
            tasks.append(report.tasks.total)
            for entry in report.entries:
                correct &= entry.covered == (
                    setting.counts[entry.group.value_of("group")] >= tau
                )
        points.append(
            SamplingBudgetPoint(
                c=c, mean_tasks=float(np.mean(tasks)), verdicts_correct=correct
            )
        )
    return points


def render_ablation_sampling_budget(points: list[SamplingBudgetPoint]) -> str:
    rows = [
        [p.c, f"{p.mean_tasks:.0f}", "yes" if p.verdicts_correct else "NO"]
        for p in points
    ]
    return render_table(
        ["c", "mean tasks", "verdicts correct"],
        rows,
        title="Ablation A3 — Multiple-Coverage sampling budget "
        "(effective-1 setting, sigma=4)",
    )


# ----------------------------------------------------------------------
# A6 — systematic worker bias against the minority group
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerBiasPoint:
    biased_fraction: float
    base_coverage_accuracy: float
    group_coverage_accuracy: float


def run_ablation_worker_bias(
    *,
    seed: int = 67,
    n_trials: int = 10,
    n_total: int = 2_000,
    n_females: int = 60,
    tau: int = 50,
    n: int = 25,
    biased_fractions: Sequence[float] = (0.0, 0.3, 0.6),
) -> list[WorkerBiasPoint]:
    """Plant workers who always label female images as male and measure
    verdict accuracy of the point-query baseline vs Group-Coverage.

    The group is marginally covered (60 members, tau=50): a pipeline that
    loses ~20 % of female labels to bias flips to "uncovered". Set
    queries only ask about presence and are answered with the workers'
    ordinary (unbiased) set-error rate, so Group-Coverage is unaffected.
    """
    from repro.core.base_coverage import base_coverage

    points: list[WorkerBiasPoint] = []
    for fraction in biased_fractions:
        base_correct = 0
        group_correct = 0
        for trial, rng in enumerate(trial_rngs(seed + int(fraction * 100), n_trials)):
            dataset = binary_dataset(n_total, n_females, rng=rng)
            truth = dataset.count(FEMALE) >= tau
            n_biased = int(round(9 * fraction))
            workers = [
                Worker(
                    worker_id=i,
                    set_error_rate=0.005,
                    point_error_rate=0.005,
                    value_error_rates=(
                        {("gender", "female"): 1.0} if i < n_biased else {}
                    ),
                )
                for i in range(9)
            ]
            base_platform = CrowdPlatform(dataset, workers, rng, record_hits=False)
            base_result = base_coverage(
                CrowdOracle(base_platform), FEMALE, tau, dataset_size=n_total
            )
            base_correct += int(base_result.covered == truth)

            group_platform = CrowdPlatform(dataset, workers, rng, record_hits=False)
            group_result = group_coverage(
                CrowdOracle(group_platform), FEMALE, tau, n=n, dataset_size=n_total
            )
            group_correct += int(group_result.covered == truth)
        points.append(
            WorkerBiasPoint(
                biased_fraction=fraction,
                base_coverage_accuracy=base_correct / n_trials,
                group_coverage_accuracy=group_correct / n_trials,
            )
        )
    return points


def render_ablation_worker_bias(points: list[WorkerBiasPoint]) -> str:
    rows = [
        [
            f"{p.biased_fraction:.0%}",
            f"{p.base_coverage_accuracy:.0%}",
            f"{p.group_coverage_accuracy:.0%}",
        ]
        for p in points
    ]
    return render_table(
        ["biased workers", "Base-Coverage verdict accuracy", "Group-Coverage verdict accuracy"],
        rows,
        title="Ablation A6 — systematic anti-minority labeling bias "
        "(f=60, tau=50, 3-vote majority)",
    )
