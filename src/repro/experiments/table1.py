"""Table 1: female-coverage identification on (simulated) Mechanical Turk.

The paper's live experiment publishes Group-Coverage's set queries as
real HITs over a FERET slice (215 female / 1307 male), three workers per
HIT with majority vote, under three quality-control settings, and reports
the number of HITs against the Base-Coverage baseline and the theoretical
``N/n + tau*log(n)`` bound.

We reproduce the protocol on the platform simulator with a worker pool
matched to the paper's observed raw error rate (1.36 %), mixed with a
fraction of low-quality "spammers" that the Qualification and Rating
screens are there to remove.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.audit import AuditSession, BaseAuditSpec, GroupAuditSpec
from repro.core.bounds import upper_bound_tasks
from repro.crowd.oracle import CrowdOracle
from repro.crowd.platform import CrowdPlatform
from repro.crowd.quality import (
    QC_MAJORITY_ONLY,
    qc_with_qualification,
    qc_with_rating,
)
from repro.crowd.workers import make_worker_pool
from repro.data.corpora import feret_mturk_slice
from repro.data.groups import group
from repro.experiments.reporting import render_table

__all__ = ["Table1Row", "run_table1", "render_table1"]

FEMALE = group(gender="female")

#: Paper-reported values for side-by-side comparison.
PAPER_TABLE1 = {
    "QC: Majority Vote": (74, 342, 115),
    "QC: Qualification Test, Majority Vote": (75, 386, 115),
    "QC: Rating, Majority Vote": (71, 284, 115),
}


@dataclass(frozen=True)
class Table1Row:
    """One quality-control setting's measured HIT counts."""

    qc_label: str
    group_coverage_hits: int
    base_coverage_hits: int
    upper_bound_hits: int
    verdict_correct: bool
    raw_error_rate: float
    aggregated_error_rate: float


def run_table1(
    *,
    seed: int = 11,
    tau: int = 50,
    n: int = 50,
    n_workers: int = 60,
    worker_error_rate: float = 0.0136,
    spammer_fraction: float = 0.15,
) -> list[Table1Row]:
    """Run all three quality-control settings and return the table rows."""
    settings = [
        ("QC: Majority Vote", QC_MAJORITY_ONLY),
        ("QC: Qualification Test, Majority Vote", qc_with_qualification()),
        ("QC: Rating, Majority Vote", qc_with_rating()),
    ]
    rows: list[Table1Row] = []
    for offset, (label, screening) in enumerate(settings):
        rng = np.random.default_rng(seed + offset)
        dataset = feret_mturk_slice(rng)
        workers = make_worker_pool(
            n_workers,
            rng,
            error_rate=worker_error_rate,
            error_rate_spread=0.005,
            spammer_fraction=spammer_fraction,
        )
        true_covered = dataset.count(FEMALE) >= tau

        group_platform = CrowdPlatform(
            dataset, workers, rng, screening=screening, record_hits=False
        )
        with AuditSession(CrowdOracle(group_platform)) as session:
            group_result = session.run(
                GroupAuditSpec(predicate=FEMALE, tau=tau, n=n)
            ).result
        base_platform = CrowdPlatform(
            dataset, workers, rng, screening=screening, record_hits=False
        )
        with AuditSession(CrowdOracle(base_platform)) as session:
            base_result = session.run(
                BaseAuditSpec(predicate=FEMALE, tau=tau)
            ).result

        total_raw_answers = group_platform.n_raw_answers + base_platform.n_raw_answers
        total_raw_incorrect = (
            group_platform.n_raw_incorrect + base_platform.n_raw_incorrect
        )
        total_hits = group_platform.ledger.n_hits + base_platform.ledger.n_hits
        total_aggregated_incorrect = (
            group_platform.n_aggregated_incorrect + base_platform.n_aggregated_incorrect
        )
        rows.append(
            Table1Row(
                qc_label=label,
                group_coverage_hits=group_result.tasks.total,
                base_coverage_hits=base_result.tasks.total,
                upper_bound_hits=round(upper_bound_tasks(len(dataset), n, tau)),
                verdict_correct=(
                    group_result.covered == true_covered
                    and base_result.covered == true_covered
                ),
                raw_error_rate=(
                    total_raw_incorrect / total_raw_answers if total_raw_answers else 0.0
                ),
                aggregated_error_rate=(
                    total_aggregated_incorrect / total_hits if total_hits else 0.0
                ),
            )
        )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Side-by-side rendering of measured vs paper-reported HIT counts."""
    table_rows = []
    for row in rows:
        paper = PAPER_TABLE1.get(row.qc_label, ("?", "?", "?"))
        table_rows.append(
            [
                row.qc_label,
                row.group_coverage_hits,
                paper[0],
                row.base_coverage_hits,
                paper[1],
                row.upper_bound_hits,
                paper[2],
                "yes" if row.verdict_correct else "NO",
                f"{row.raw_error_rate:.2%}",
            ]
        )
    return render_table(
        [
            "quality control",
            "Group-Cvg #HITs",
            "(paper)",
            "Base-Cvg #HITs",
            "(paper)",
            "bound",
            "(paper)",
            "verdict ok",
            "raw err",
        ],
        table_rows,
        title="Table 1 — female coverage identification on simulated MTurk "
        "(FERET: 215 F / 1307 M, tau=n=50)",
    )
