"""Experiment runners: one per paper table/figure, plus ablations and a CLI."""

from repro.experiments.harness import average_over_trials, trial_rngs
from repro.experiments.reporting import render_series, render_table
from repro.experiments.settings import (
    IntersectionalSetting,
    MultiGroupSetting,
    intersectional_schema,
    intersectional_settings,
    multi_group_setting_for_sigma,
    multi_group_settings,
)

__all__ = [
    "average_over_trials",
    "trial_rngs",
    "render_series",
    "render_table",
    "MultiGroupSetting",
    "IntersectionalSetting",
    "multi_group_settings",
    "multi_group_setting_for_sigma",
    "intersectional_settings",
    "intersectional_schema",
]
