"""Command-line entry point: regenerate any paper table or figure.

Usage::

    repro-experiments table1
    repro-experiments table2 --trials 3
    repro-experiments fig6 --scale fast
    repro-experiments fig7a fig7e
    repro-experiments ablations
    repro-experiments all --trials 3 --scale fast

(Also runnable as ``python -m repro.experiments.cli``.)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Sequence

__all__ = ["main"]


def _run_table1(args: argparse.Namespace) -> str:
    from repro.experiments.table1 import render_table1, run_table1

    return render_table1(run_table1(seed=args.seed))


def _run_table2(args: argparse.Namespace) -> str:
    from repro.experiments.table2 import render_table2, run_table2

    return render_table2(run_table2(seed=args.seed, n_trials=args.trials))


def _run_fig6(args: argparse.Namespace) -> str:
    from repro.experiments.figure6 import render_figure6, run_figure6

    return render_figure6(run_figure6(seed=args.seed, scale=args.scale))


def _sweep_runner(name: str) -> Callable[[argparse.Namespace], str]:
    def run(args: argparse.Namespace) -> str:
        from repro.experiments import figure7
        from repro.experiments.figure7 import render_sweep

        runner = getattr(figure7, f"run_figure{name}")
        return render_sweep(runner(n_trials=args.trials))

    return run


def _run_fig7e(args: argparse.Namespace) -> str:
    from repro.experiments.figure7_multi import render_multi_comparisons, run_figure7e

    return render_multi_comparisons(
        run_figure7e(n_trials=args.trials),
        title="Figure 7e — multiple non-intersectional groups (sigma=4)",
    )


def _run_fig7g(args: argparse.Namespace) -> str:
    from repro.experiments.figure7_multi import render_multi_comparisons, run_figure7g

    return render_multi_comparisons(
        run_figure7g(n_trials=args.trials),
        title="Figure 7g — multiple groups across cardinalities",
    )


def _run_fig7f(args: argparse.Namespace) -> str:
    from repro.experiments.figure7_intersectional import (
        render_intersectional_comparisons,
        run_figure7f,
    )

    return render_intersectional_comparisons(
        run_figure7f(n_trials=args.trials),
        title="Figure 7f — intersectional groups (2x2x2)",
    )


def _run_fig7h(args: argparse.Namespace) -> str:
    from repro.experiments.figure7_intersectional import (
        render_intersectional_comparisons,
        run_figure7h,
    )

    return render_intersectional_comparisons(
        run_figure7h(n_trials=args.trials),
        title="Figure 7h — intersectional schemas (2x2x2) vs (2x4)",
    )


def _run_ablations(args: argparse.Namespace) -> str:
    from repro.experiments.ablations import (
        render_ablation_aggregation,
        render_ablation_sampling_budget,
        render_ablation_set_size,
        render_ablation_worker_bias,
        run_ablation_aggregation,
        run_ablation_sampling_budget,
        run_ablation_set_size,
        run_ablation_worker_bias,
    )

    return "\n\n".join(
        [
            render_ablation_set_size(run_ablation_set_size()),
            render_ablation_aggregation(run_ablation_aggregation()),
            render_ablation_sampling_budget(run_ablation_sampling_budget()),
            render_ablation_worker_bias(run_ablation_worker_bias()),
        ]
    )


RUNNERS: dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "fig6": _run_fig6,
    "fig7a": _sweep_runner("7a"),
    "fig7b": _sweep_runner("7b"),
    "fig7c": _sweep_runner("7c"),
    "fig7d": _sweep_runner("7d"),
    "fig7e": _run_fig7e,
    "fig7f": _run_fig7f,
    "fig7g": _run_fig7g,
    "fig7h": _run_fig7h,
    "ablations": _run_ablations,
}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*RUNNERS.keys(), "all"],
        help="which experiments to run",
    )
    parser.add_argument("--seed", type=int, default=7, help="root random seed")
    parser.add_argument(
        "--trials", type=int, default=3, help="trials per measured point"
    )
    parser.add_argument(
        "--scale",
        choices=["paper", "fast", "smoke"],
        default="fast",
        help="scale of the figure-6 training protocol",
    )
    args = parser.parse_args(argv)

    names = list(RUNNERS) if "all" in args.experiments else args.experiments
    for name in names:
        start = time.perf_counter()
        output = RUNNERS[name](args)
        elapsed = time.perf_counter() - start
        print(output)
        print(f"[{name} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
