"""The multi-group experiment settings of Table 3 (§6.5.2).

Four qualitative regimes, each a concrete group composition over a
10 000-object dataset with ``tau = 50``:

=============  ===========================================================
effective 1    3 uncovered minorities whose aggregated super-group is
               *also* uncovered — one Group-Coverage run rules them all
               uncovered (the aggregation heuristic's best case).
effective 2    3 covered minorities — the sampling phase pre-credits their
               thresholds and no risky aggregation happens.
ineffective    2 uncovered minorities and one *barely covered* minority;
               the sample underestimates the covered one, it gets merged,
               the super-group comes back covered, and every member must
               be re-run individually.
adversarial    3 uncovered minorities whose union exceeds ``tau``: the
               sample (expected < 1 hit per group) merges them, the
               super-group is covered, and the penalty re-runs make the
               heuristic lose to brute force.
=============  ===========================================================

Both the single-attribute (Fig 7e/7g) and the intersectional (Fig 7f/7h)
variants are provided. Intersectional minorities are placed on *sibling*
leaves where possible, since Algorithm 6's ``multi=True`` aggregation only
merges siblings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.data.schema import Schema
from repro.errors import InvalidParameterError

__all__ = [
    "MultiGroupSetting",
    "IntersectionalSetting",
    "multi_group_settings",
    "multi_group_setting_for_sigma",
    "intersectional_settings",
    "intersectional_schema",
]


@dataclass(frozen=True)
class MultiGroupSetting:
    """A single-attribute composition: ``{value: count}`` plus metadata."""

    name: str
    counts: Mapping[str, int]
    description: str

    @property
    def n_total(self) -> int:
        return sum(self.counts.values())


@dataclass(frozen=True)
class IntersectionalSetting:
    """A multi-attribute composition: joint counts over the leaf groups."""

    name: str
    cardinalities: tuple[int, ...]
    joint_counts: Mapping[tuple[str, ...], int]
    description: str

    @property
    def n_total(self) -> int:
        return sum(self.joint_counts.values())


def multi_group_settings(n_total: int = 10_000) -> tuple[MultiGroupSetting, ...]:
    """The four Table 3 settings for one attribute with sigma = 4."""
    def composition(minorities: dict[str, int]) -> dict[str, int]:
        return {"majority": n_total - sum(minorities.values()), **minorities}

    return (
        MultiGroupSetting(
            "effective 1",
            composition({"g1": 10, "g2": 15, "g3": 20}),
            "3 uncovered minorities; their aggregated super-group is uncovered",
        ),
        MultiGroupSetting(
            "effective 2",
            composition({"g1": 150, "g2": 200, "g3": 250}),
            "3 covered minorities",
        ),
        MultiGroupSetting(
            "ineffective",
            composition({"g1": 15, "g2": 20, "g3": 55}),
            "2 uncovered and one covered minority",
        ),
        MultiGroupSetting(
            "adversarial",
            composition({"g1": 25, "g2": 30, "g3": 35}),
            "3 uncovered minorities; their aggregated super-group is covered",
        ),
    )


def multi_group_setting_for_sigma(
    sigma: int, *, n_total: int = 10_000, tau: int = 50
) -> MultiGroupSetting:
    """An "effective" composition for an attribute of cardinality ``sigma``
    (Fig 7g): ``sigma - 1`` uncovered minorities whose union stays below
    ``tau``."""
    if sigma < 2:
        raise InvalidParameterError(f"sigma must be >= 2, got {sigma}")
    n_minorities = sigma - 1
    budget = tau - 1  # union must stay uncovered
    base = budget // n_minorities
    counts: dict[str, int] = {}
    remaining = budget
    for i in range(n_minorities):
        size = max(1, base - (n_minorities - 1 - i))  # slightly varied sizes
        size = min(size, remaining - (n_minorities - 1 - i))
        counts[f"g{i + 1}"] = size
        remaining -= size
    return MultiGroupSetting(
        f"effective (sigma={sigma})",
        {"majority": n_total - sum(counts.values()), **counts},
        f"{n_minorities} uncovered minorities, union uncovered",
    )


def intersectional_schema(cardinalities: tuple[int, ...]) -> Schema:
    """A generic schema ``x1, x2, ...`` with the given cardinalities."""
    return Schema.from_dict(
        {
            f"x{i + 1}": [f"v{i + 1}{j}" for j in range(card)]
            for i, card in enumerate(cardinalities)
        }
    )


def intersectional_settings(
    cardinalities: tuple[int, ...] = (2, 2, 2), *, n_total: int = 10_000
) -> tuple[IntersectionalSetting, ...]:
    """The four Table 3 settings over fully-specified leaf groups.

    Works for the paper's two schemas — three binary attributes and
    (2, 4) — by designating one majority leaf, a few comfortably covered
    leaves, and minority leaves per regime placed on sibling positions.
    """
    schema = intersectional_schema(cardinalities)
    leaves = [
        tuple(values)
        for values in _all_combinations(schema)
    ]
    if len(leaves) < 4:
        raise InvalidParameterError("need at least 4 leaf groups")

    def build(name: str, minority_sizes: list[int], description: str) -> IntersectionalSetting:
        # The last len(minority_sizes) leaves (in lexicographic order these
        # are sibling-heavy positions) become minorities; the first leaf is
        # the majority; everything else gets a comfortable covered count.
        counts: dict[tuple[str, ...], int] = {}
        minority_leaves = leaves[-len(minority_sizes):]
        for leaf, size in zip(minority_leaves, minority_sizes):
            counts[leaf] = size
        covered_leaves = [leaf for leaf in leaves[1:] if leaf not in counts]
        for leaf in covered_leaves:
            counts[leaf] = 300
        counts[leaves[0]] = n_total - sum(counts.values())
        return IntersectionalSetting(name, cardinalities, counts, description)

    return (
        build(
            "effective 1",
            [10, 15, 20],
            "3 uncovered minority leaves; aggregation stays uncovered",
        ),
        build("effective 2", [150, 200, 250], "3 covered minority leaves"),
        build(
            "ineffective",
            [15, 20, 55],
            "2 uncovered leaves and one barely covered leaf",
        ),
        build(
            "adversarial",
            [25, 30, 35],
            "3 uncovered leaves whose union is covered",
        ),
    )


def _all_combinations(schema: Schema) -> list[tuple[str, ...]]:
    combos: list[tuple[str, ...]] = [()]
    for attribute in schema:
        combos = [(*combo, value) for combo in combos for value in attribute.values]
    return combos
