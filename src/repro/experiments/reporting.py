"""Plain-text rendering of experiment tables and series.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import InvalidParameterError

__all__ = ["render_table", "render_series"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """A fixed-width ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2], [30, 4]]))
    a  | b
    ---+--
    1  | 2
    30 | 4
    """
    if not headers:
        raise InvalidParameterError("headers must be non-empty")
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise InvalidParameterError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered_rows), 1)
        if rendered_rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """A table with one x column and one column per named series — the
    textual form of a paper figure."""
    headers = [x_label, *series.keys()]
    for label, values in series.items():
        if len(values) != len(x_values):
            raise InvalidParameterError(
                f"series {label!r} has {len(values)} values for "
                f"{len(x_values)} x points"
            )
    rows = [
        [x, *(series[label][i] for label in series)]
        for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
