"""Table 2: classifier-assisted coverage detection on gender-labeled data.

For each of the paper's nine (dataset slice, pre-trained classifier)
combinations, run Classifier-Coverage on the simulated classifier's
predictions and compare its HIT count against standalone Group-Coverage.
The classifier profiles (accuracy, precision-on-female) are matched
exactly to the paper's measurements; the paper's own HIT counts are
printed alongside for comparison.

Expected qualitative structure (see EXPERIMENTS.md for the full analysis):
high-precision classifiers (FERET + DeepFace) trigger the Partition
strategy and beat Group-Coverage by a wide margin; low-precision ones
trigger Label and are competitive-to-worse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.audit import AuditSession, ClassifierAuditSpec, GroupAuditSpec
from repro.classifiers.pretrained import FEMALE, PaperProfile, table2_rows
from repro.crowd.oracle import GroundTruthOracle
from repro.experiments.harness import trial_rngs
from repro.experiments.reporting import render_table

__all__ = ["Table2Row", "run_table2", "render_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One Table 2 row: measured means alongside the paper's values."""

    dataset_key: str
    classifier_name: str
    accuracy: float
    precision_on_female: float
    strategy: str
    classifier_coverage_hits: float
    group_coverage_hits: float
    verdict_correct: bool
    profile: PaperProfile


def run_table2(
    *, seed: int = 7, n_trials: int = 5, tau: int = 50, n: int = 50
) -> list[Table2Row]:
    """Run every Table 2 row, averaging HIT counts over ``n_trials``."""
    rows: list[Table2Row] = []
    for profile, builder in table2_rows():
        classifier = profile.classifier()
        classifier_hits: list[int] = []
        group_hits: list[int] = []
        strategies: list[str] = []
        verdicts_ok = True
        for rng in trial_rngs(seed, n_trials):
            dataset = builder(rng)
            truth_covered = dataset.count(FEMALE) >= tau
            predicted = classifier.predicted_positive_indices(dataset, rng)

            with AuditSession(GroundTruthOracle(dataset), rng=rng) as session:
                result = session.run(
                    ClassifierAuditSpec(
                        group=FEMALE, tau=tau, predicted_positive=predicted, n=n
                    )
                ).result
            classifier_hits.append(result.tasks.total)
            strategies.append(result.strategy)
            verdicts_ok &= result.covered == truth_covered

            with AuditSession(GroundTruthOracle(dataset)) as session:
                baseline = session.run(
                    GroupAuditSpec(predicate=FEMALE, tau=tau, n=n)
                ).result
            group_hits.append(baseline.tasks.total)
            verdicts_ok &= baseline.covered == truth_covered

        # The strategy choice is data-driven; report the modal choice.
        strategy = max(set(strategies), key=strategies.count)
        rows.append(
            Table2Row(
                dataset_key=profile.dataset_key,
                classifier_name=profile.classifier_name,
                accuracy=profile.accuracy,
                precision_on_female=profile.precision_on_female,
                strategy=strategy,
                classifier_coverage_hits=float(np.mean(classifier_hits)),
                group_coverage_hits=float(np.mean(group_hits)),
                verdict_correct=verdicts_ok,
                profile=profile,
            )
        )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    table_rows = [
        [
            row.dataset_key,
            row.classifier_name,
            f"{row.accuracy:.2%}",
            f"{row.precision_on_female:.2%}",
            row.strategy,
            f"({row.profile.paper_strategy})",
            f"{row.classifier_coverage_hits:.0f}",
            f"({row.profile.paper_classifier_hits})",
            f"{row.group_coverage_hits:.0f}",
            f"({row.profile.paper_group_hits})",
            "yes" if row.verdict_correct else "NO",
        ]
        for row in rows
    ]
    return render_table(
        [
            "dataset",
            "classifier",
            "acc",
            "prec(F)",
            "strategy",
            "(paper)",
            "CC #HITs",
            "(paper)",
            "GC #HITs",
            "(paper)",
            "verdict ok",
        ],
        table_rows,
        title="Table 2 — female coverage detection on gender-classified "
        "datasets (tau=n=50)",
    )
