"""Synthetic image rendering with group-dependent signal.

The coverage algorithms never look at pixels, but two parts of the paper's
evaluation do:

* pre-trained classifiers (§6.3.2) predict a group from an image, and
* the downstream-task experiments (§6.4) train a CNN on images and measure
  per-group performance disparity.

We cannot redistribute FERET/UTKFace/MRL pixels, so we synthesize images
whose *signal structure* mirrors what those experiments rely on: each
attribute value contributes a smooth spatial "prototype" pattern, and —
crucially — each full value *combination* contributes an interaction
pattern, so the appearance of a target class differs across groups (the
way glasses change what "closed eyes" look like). An object's image blends
its value prototypes with its combination's interaction prototype plus
i.i.d. Gaussian pixel noise. A model trained without any examples of a
group therefore generalizes poorly to it — exactly the phenomenon §6.4
demonstrates — while models that have seen a group learn it fine.
"""

from __future__ import annotations

import hashlib
from itertools import product

import numpy as np

from repro.data.dataset import LabeledDataset
from repro.errors import InvalidParameterError

__all__ = ["ImageRenderer", "attach_images"]


class ImageRenderer:
    """Renders group-dependent synthetic images for a schema.

    Parameters
    ----------
    schema-bearing dataset values are looked up lazily; the renderer itself
    is keyed only by shapes and a seed so that two datasets with the same
    schema render from identical prototypes (needed when a train slice and
    a test pool must share the same "world").

    image_size:
        Images are ``image_size x image_size`` grayscale floats in [0, 1].
    noise:
        Standard deviation of per-pixel Gaussian noise. Higher noise makes
        the learning problem harder and increases disparity for uncovered
        groups.
    interaction:
        Blend weight of the per-combination interaction prototype in
        [0, 1]. ``0`` makes attributes purely additive (class signal
        transfers perfectly across groups — no disparity); higher values
        make a class's appearance group-specific.
    coarse:
        Prototypes are sampled on a ``coarse x coarse`` grid and upsampled,
        producing smooth blobs rather than white noise.
    """

    def __init__(
        self,
        *,
        image_size: int = 16,
        noise: float = 0.5,
        interaction: float = 0.6,
        coarse: int = 4,
        seed: int = 8,
    ) -> None:
        if image_size < coarse or image_size % coarse != 0:
            raise InvalidParameterError(
                f"image_size ({image_size}) must be a positive multiple of "
                f"coarse ({coarse})"
            )
        if noise < 0:
            raise InvalidParameterError(f"noise must be >= 0, got {noise}")
        if not 0.0 <= interaction <= 1.0:
            raise InvalidParameterError(
                f"interaction must be in [0, 1], got {interaction}"
            )
        self.image_size = image_size
        self.noise = noise
        self.interaction = interaction
        self.coarse = coarse
        self.seed = seed
        self._prototypes: dict[tuple, np.ndarray] = {}

    def _pattern_for_key(self, key: tuple) -> np.ndarray:
        cached = self._prototypes.get(key)
        if cached is not None:
            return cached
        # Stable across processes: seed from a cryptographic digest of the
        # key (Python's str hash is randomized per process).
        digest_bytes = hashlib.sha256(repr((self.seed, key)).encode()).digest()
        digest = np.random.SeedSequence(
            [int.from_bytes(digest_bytes[i : i + 4], "big") for i in range(0, 16, 4)]
        )
        rng = np.random.default_rng(digest)
        coarse = rng.uniform(0.0, 1.0, size=(self.coarse, self.coarse))
        scale = self.image_size // self.coarse
        pattern = np.kron(coarse, np.ones((scale, scale)))
        pattern.setflags(write=False)
        self._prototypes[key] = pattern
        return pattern

    def prototype(self, attribute: str, value: str) -> np.ndarray:
        """The deterministic spatial pattern contributed by one value."""
        return self._pattern_for_key((attribute, value))

    def interaction_prototype(self, combination: tuple[str, ...]) -> np.ndarray:
        """The pattern contributed by a full value combination (the
        group-specific appearance of a class)."""
        return self._pattern_for_key(("__interaction__", *combination))

    def render(
        self, dataset: LabeledDataset, rng: np.random.Generator
    ) -> np.ndarray:
        """Render an ``(N, H, W)`` image array for every object in ``dataset``.

        Each image is
        ``(1 - interaction) * mean(value prototypes)
        + interaction * interaction_prototype(full combination) + noise``;
        pixel noise is drawn from ``rng`` so renders are reproducible under
        a fixed seed but differ between objects of the same group.
        """
        n = len(dataset)
        size = self.image_size
        additive = np.zeros((n, size, size), dtype=np.float64)
        schema = dataset.schema
        for j, attribute in enumerate(schema):
            column = dataset.codes[:, j]
            # Stack per-value prototypes once, then gather per object.
            stack = np.stack(
                [self.prototype(attribute.name, v) for v in attribute.values]
            )
            additive += stack[column]
        additive /= schema.n_attributes

        images = (1.0 - self.interaction) * additive
        if self.interaction:
            cards = dataset.schema.cardinalities
            flat = np.zeros(n, dtype=np.int64)
            for j, card in enumerate(cards):
                flat = flat * card + dataset.codes[:, j]
            combos = list(product(*(attribute.values for attribute in schema)))
            stack = np.stack(
                [self.interaction_prototype(combo) for combo in combos]
            )
            images += self.interaction * stack[flat]
        if self.noise:
            images += rng.normal(0.0, self.noise, size=images.shape)
        np.clip(images, 0.0, 1.0, out=images)
        return images


def attach_images(
    dataset: LabeledDataset,
    rng: np.random.Generator,
    *,
    renderer: ImageRenderer | None = None,
) -> LabeledDataset:
    """Return a copy of ``dataset`` with synthetic images and flattened
    feature vectors attached.

    >>> import numpy as np
    >>> from repro.data.synthetic import binary_dataset
    >>> rng = np.random.default_rng(0)
    >>> ds = attach_images(binary_dataset(10, 3, rng=rng), rng)
    >>> ds.images.shape
    (10, 16, 16)
    """
    renderer = renderer or ImageRenderer()
    images = renderer.render(dataset, rng)
    return LabeledDataset(
        dataset.schema,
        dataset.codes.copy(),
        images=images,
        features=images.reshape(len(dataset), -1),
        name=dataset.name,
    )
