"""The dataset substrate: image collections with *hidden* ground-truth labels.

The paper's data model is a collection ``D`` of ``N`` unlabeled objects
(images). For simulation we must, of course, know the true attribute values
of every object — the crowd workers answer from them — but the coverage
algorithms never read them. The split is enforced structurally:

* :class:`LabeledDataset` stores the ground truth (integer-coded label
  matrix, optional synthetic pixel/feature arrays) and exposes exact
  counting utilities used by oracles, generators, and test assertions.
* Algorithms only see an :class:`repro.crowd.oracle.Oracle`, which answers
  point/set queries and charges tasks.

Label storage is a single ``(N, d)`` integer matrix (``int16`` — attribute
cardinalities are tiny by assumption), one column per schema attribute.
Boolean masks per predicate are memoized because oracles evaluate the same
predicate across thousands of set queries.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.data.groups import GroupPredicate
from repro.data.kernels import predicate_mask
from repro.data.schema import Schema
from repro.errors import InvalidParameterError, OracleError

__all__ = ["LabeledDataset", "predicate_mask"]


class LabeledDataset:
    """A collection of objects with hidden ground-truth attribute values.

    Parameters
    ----------
    schema:
        The attributes of interest.
    codes:
        ``(N, d)`` integer matrix; ``codes[i, j]`` is the code of object
        ``i``'s value on the ``j``-th schema attribute.
    images:
        Optional ``(N, H, W)`` float array of synthetic pixels (used by the
        classifier and downstream substrates; coverage algorithms ignore it).
    features:
        Optional ``(N, F)`` float array of per-object feature vectors.
    name:
        Optional human-readable dataset name for reports.
    """

    def __init__(
        self,
        schema: Schema,
        codes: np.ndarray,
        *,
        images: np.ndarray | None = None,
        features: np.ndarray | None = None,
        name: str = "dataset",
    ) -> None:
        codes = np.asarray(codes, dtype=np.int16)
        if codes.ndim != 2:
            raise InvalidParameterError(
                f"codes must be a 2-D (N, d) array, got shape {codes.shape}"
            )
        if codes.shape[1] != schema.n_attributes:
            raise InvalidParameterError(
                f"codes has {codes.shape[1]} columns but schema has "
                f"{schema.n_attributes} attributes"
            )
        for j, attribute in enumerate(schema):
            column = codes[:, j]
            if column.size and (column.min() < 0 or column.max() >= attribute.cardinality):
                raise InvalidParameterError(
                    f"codes for attribute {attribute.name!r} outside "
                    f"[0, {attribute.cardinality})"
                )
        if images is not None and len(images) != len(codes):
            raise InvalidParameterError("images length does not match codes")
        if features is not None and len(features) != len(codes):
            raise InvalidParameterError("features length does not match codes")

        self.schema = schema
        self.name = name
        self._codes = codes
        self.images = images
        self.features = features
        self._mask_cache: dict[GroupPredicate, np.ndarray] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_value_rows(
        cls,
        schema: Schema,
        rows: Iterable[Mapping[str, str]],
        *,
        name: str = "dataset",
    ) -> "LabeledDataset":
        """Build a dataset from an iterable of ``{attribute: value}`` rows.

        Convenient for tests and examples; large datasets should be built
        directly from code matrices (see :mod:`repro.data.synthetic`).
        """
        rows = list(rows)
        codes = np.zeros((len(rows), schema.n_attributes), dtype=np.int16)
        for i, row in enumerate(rows):
            for j, attribute in enumerate(schema):
                codes[i, j] = attribute.code_of(row[attribute.name])
        return cls(schema, codes, name=name)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._codes.shape[0]

    @property
    def n_objects(self) -> int:
        return self._codes.shape[0]

    @property
    def codes(self) -> np.ndarray:
        """Read-only view of the ``(N, d)`` label-code matrix."""
        view = self._codes.view()
        view.setflags(write=False)
        return view

    def column(self, attribute: str) -> np.ndarray:
        """Label codes of one attribute for every object."""
        return self.codes[:, self.schema.index_of(attribute)]

    def value_row(self, index: int) -> dict[str, str]:
        """Ground-truth ``{attribute: value}`` mapping of object ``index``."""
        if not 0 <= index < len(self):
            raise OracleError(f"object index {index} out of range [0, {len(self)})")
        return {
            attribute.name: attribute.value_of(int(self._codes[index, j]))
            for j, attribute in enumerate(self.schema)
        }

    # ------------------------------------------------------------------
    # predicate evaluation
    # ------------------------------------------------------------------
    def mask(self, predicate: GroupPredicate) -> np.ndarray:
        """Boolean membership mask of ``predicate`` over all objects.

        Masks are memoized per predicate; predicates are immutable value
        objects so the cache never goes stale.
        """
        cached = self._mask_cache.get(predicate)
        if cached is not None:
            return cached
        predicate.validate(self.schema)
        result = self._compute_mask(predicate)
        result.setflags(write=False)
        self._mask_cache[predicate] = result
        return result

    def _compute_mask(self, predicate: GroupPredicate) -> np.ndarray:
        # Sub-predicates resolve through self.mask so composite masks
        # reuse (and populate) the per-predicate memo cache.
        return predicate_mask(
            self.schema, self._codes, predicate, resolve=self.mask
        )

    def matches(self, index: int, predicate: GroupPredicate) -> bool:
        """Does object ``index`` satisfy ``predicate``? (ground truth)"""
        return bool(self.mask(predicate)[index])

    def count(self, predicate: GroupPredicate) -> int:
        """Exact number of objects satisfying ``predicate`` (ground truth)."""
        return int(self.mask(predicate).sum())

    def positions(self, predicate: GroupPredicate) -> np.ndarray:
        """Sorted indices of all objects satisfying ``predicate``."""
        return np.flatnonzero(self.mask(predicate))

    def is_covered(self, predicate: GroupPredicate, tau: int) -> bool:
        """Ground-truth coverage verdict: at least ``tau`` matching objects."""
        if tau < 0:
            raise InvalidParameterError(f"tau must be non-negative, got {tau}")
        return self.count(predicate) >= tau

    # ------------------------------------------------------------------
    # group statistics
    # ------------------------------------------------------------------
    def counts_by_value(self, attribute: str) -> dict[str, int]:
        """Histogram ``{value: count}`` of one attribute."""
        attr = self.schema.attribute(attribute)
        column = self.column(attribute)
        bincount = np.bincount(column, minlength=attr.cardinality)
        return {attr.value_of(code): int(bincount[code]) for code in range(attr.cardinality)}

    def joint_counts(self) -> dict[tuple[str, ...], int]:
        """Histogram over fully-specified value combinations.

        Returns ``{(v1, ..., vd): count}`` for every combination that occurs
        at least once.
        """
        cards = self.schema.cardinalities
        flat = np.zeros(len(self), dtype=np.int64)
        for j, card in enumerate(cards):
            flat = flat * card + self._codes[:, j]
        bincount = np.bincount(flat, minlength=int(np.prod(cards)))
        result: dict[tuple[str, ...], int] = {}
        for flat_code, count in enumerate(bincount):
            if count == 0:
                continue
            values = []
            remainder = flat_code
            for card in reversed(cards):
                values.append(remainder % card)
                remainder //= card
            values.reverse()
            key = tuple(
                attribute.value_of(code)
                for attribute, code in zip(self.schema, values)
            )
            result[key] = int(count)
        return result

    # ------------------------------------------------------------------
    # restructuring
    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray | list[int], *, name: str | None = None) -> "LabeledDataset":
        """A new dataset containing ``indices`` in the given order."""
        indices = np.asarray(indices, dtype=np.int64)
        return LabeledDataset(
            self.schema,
            self._codes[indices],
            images=None if self.images is None else self.images[indices],
            features=None if self.features is None else self.features[indices],
            name=name or f"{self.name}[subset:{len(indices)}]",
        )

    def shuffled(self, rng: np.random.Generator) -> "LabeledDataset":
        """A new dataset with objects in a random physical order."""
        permutation = rng.permutation(len(self))
        return self.subset(permutation, name=f"{self.name}[shuffled]")

    def concatenated(self, other: "LabeledDataset", *, name: str | None = None) -> "LabeledDataset":
        """This dataset followed by ``other`` (schemas must be equal)."""
        if other.schema != self.schema:
            raise InvalidParameterError("cannot concatenate datasets with different schemas")

        def _merge(a: np.ndarray | None, b: np.ndarray | None) -> np.ndarray | None:
            if a is None or b is None:
                return None
            return np.concatenate([a, b])

        return LabeledDataset(
            self.schema,
            np.concatenate([self._codes, other._codes]),
            images=_merge(self.images, other.images),
            features=_merge(self.features, other.features),
            name=name or f"{self.name}+{other.name}",
        )

    def describe(self) -> str:
        """A short multi-line summary used by examples and reports."""
        lines = [f"{self.name}: N={len(self)}, attributes={list(self.schema.names)}"]
        for attribute in self.schema:
            histogram = self.counts_by_value(attribute.name)
            rendered = ", ".join(f"{v}={c}" for v, c in histogram.items())
            lines.append(f"  {attribute.name}: {rendered}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"LabeledDataset(name={self.name!r}, N={len(self)}, d={self.schema.n_attributes})"
