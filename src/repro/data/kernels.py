"""Picklable predicate kernels: the compute units of the sharded path.

The sharded out-of-core index (:mod:`repro.data.sharded`) hands its hot
loops — predicate-mask evaluation, fused count + prefix-table
construction, scattered membership gathers — to a
:class:`~repro.data.sharded.ShardExecutor`. In ``serial`` and
``threads`` modes any callable works, but ``processes`` mode crosses a
pickle boundary: the work item must describe *how to get the chunk*
(never the chunk array itself — workers open the shard file or run the
generator on their own side, so chunk bytes never cross the boundary)
plus module-level functions to run over it. This module is that
vocabulary:

* **chunk sources** — :class:`MemmapChunkSource` (reopen an ``.npy``
  file with ``mmap_mode="r"`` in the worker, cached per process) and
  :class:`CallableChunkSource` (re-run a picklable deterministic
  generator), unified under :class:`ChunkSource`;
* **mask kernel** — :func:`predicate_mask`, the one predicate evaluator
  every membership substrate shares (the dense
  :class:`~repro.data.dataset.LabeledDataset` routes its memoized masks
  through it too);
* **fused kernels** — :func:`fused_prefix_tables` evaluates *many*
  predicates over *one* chunk touch and returns their local prefix-count
  tables (``prefix[-1]`` is the shard total, so a totals-plus-prefix
  build streams each chunk exactly once), and :func:`fused_source_pass`
  / :func:`scattered_hits_pass` are their process-safe forms taking a
  :class:`ChunkSource` instead of an in-memory chunk.

Everything here is deterministic and allocation-bounded: one chunk is
materialized per call, masks are evaluated once per predicate, and the
returned tables are exactly what the two-pass route (mask, then count,
then cumsum) would have produced — pinned by
``tests/data/test_kernel_properties.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

import numpy as np
from numpy.typing import NDArray

from repro.data.groups import Group, GroupPredicate, Negation, SuperGroup
from repro.data.schema import Schema
from repro.errors import InvalidParameterError

__all__ = [
    "ChunkSource",
    "MemmapChunkSource",
    "CallableChunkSource",
    "predicate_mask",
    "fused_prefix_tables",
    "fused_source_pass",
    "scattered_hits_pass",
]


def predicate_mask(
    schema: Schema,
    codes: NDArray[np.int16],
    predicate: GroupPredicate,
    *,
    resolve: Callable[[GroupPredicate], NDArray[np.bool_]] | None = None,
) -> NDArray[np.bool_]:
    """Boolean membership mask of ``predicate`` over a code matrix.

    The one predicate evaluator every membership substrate shares:
    :class:`~repro.data.dataset.LabeledDataset` routes its memoized
    masks through it, and the sharded out-of-core index evaluates it per
    shard chunk (in-process or inside pool workers). ``resolve``
    optionally maps a *sub*-predicate to an existing mask (the dense
    dataset passes its memo cache); by default sub-predicates recurse
    through this function.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.schema import Schema
    >>> from repro.data.groups import group
    >>> schema = Schema.from_dict({"gender": ["male", "female"]})
    >>> predicate_mask(schema, np.array([[0], [1], [1]]), group(gender="female"))
    array([False,  True,  True])
    """
    if isinstance(predicate, Group):
        result: NDArray[np.bool_] = np.ones(len(codes), dtype=bool)
        for attr_name, value in predicate.conditions:
            attribute = schema.attribute(attr_name)
            j = schema.index_of(attr_name)
            result &= codes[:, j] == attribute.code_of(value)
        return result
    def _recurse(sub: GroupPredicate) -> NDArray[np.bool_]:
        return predicate_mask(schema, codes, sub)
    resolver = resolve if resolve is not None else _recurse
    if isinstance(predicate, SuperGroup):
        merged: NDArray[np.bool_] = np.zeros(len(codes), dtype=bool)
        for member in predicate.members:
            merged |= resolver(member)
        return merged
    if isinstance(predicate, Negation):
        return ~resolver(predicate.inner)
    raise InvalidParameterError(f"unsupported predicate type: {type(predicate)!r}")


@runtime_checkable
class ChunkSource(Protocol):
    """A picklable recipe for materializing shard chunks.

    Process-pool workers receive the *source*, never chunk arrays: each
    worker materializes the rows it needs on its own side (memory map or
    deterministic generator), so the parent's residency accounting and
    the pickle channel stay free of chunk bytes.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.kernels import CallableChunkSource, ChunkSource
    >>> def zeros(shard_index, start, stop):
    ...     return np.zeros((stop - start, 1), dtype=np.int16)
    >>> isinstance(CallableChunkSource(generate=zeros), ChunkSource)
    True
    """

    def chunk(self, shard_index: int, start: int, stop: int) -> NDArray[np.int16]:
        """The ``(stop - start, d)`` code chunk of rows ``[start, stop)``."""
        ...


#: Per-process cache of opened memory maps, keyed by file path. A pool
#: worker opens each shard file once and reuses the map across tasks;
#: maps are read-only so sharing them between tasks is safe.
_MEMMAP_CACHE: dict[str, NDArray[np.int16]] = {}


@dataclass(frozen=True)
class MemmapChunkSource:
    """Chunks sliced from an on-disk ``.npy`` code matrix.

    Only the path crosses the pickle boundary; every process (parent or
    pool worker) opens the file with ``mmap_mode="r"`` on first use and
    caches the map, so a chunk view touches exactly the pages of its row
    range — the zero-copy substrate of the 100M-row benchmark tier.

    Examples
    --------
    >>> import numpy as np, tempfile, os
    >>> from repro.data.kernels import MemmapChunkSource
    >>> path = os.path.join(tempfile.mkdtemp(), "codes.npy")
    >>> np.save(path, np.arange(20, dtype=np.int16).reshape(10, 2))
    >>> source = MemmapChunkSource(path=path)
    >>> source.chunk(1, 4, 6).tolist()
    [[8, 9], [10, 11]]
    """

    path: str

    def chunk(self, shard_index: int, start: int, stop: int) -> NDArray[np.int16]:
        """Copy rows ``[start, stop)`` out of the (cached) memory map."""
        mapped = _MEMMAP_CACHE.get(self.path)
        if mapped is None:
            mapped = np.load(self.path, mmap_mode="r")
            _MEMMAP_CACHE[self.path] = mapped
        return np.array(mapped[start:stop], dtype=np.int16)


@dataclass(frozen=True)
class CallableChunkSource:
    """Chunks computed by a picklable deterministic generator.

    ``generate(shard_index, start, stop)`` must return the same
    ``(stop - start, d)`` chunk every time it is called with the same
    arguments — in ``processes`` mode it runs inside pool workers, so it
    must also pickle (a module-level function or a
    :func:`functools.partial` over one; closures and lambdas will not).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.kernels import CallableChunkSource
    >>> def zeros(shard_index, start, stop):
    ...     return np.zeros((stop - start, 1), dtype=np.int16)
    >>> CallableChunkSource(generate=zeros).chunk(0, 3, 7).shape
    (4, 1)
    """

    generate: Callable[[int, int, int], NDArray[np.int16]]

    def chunk(self, shard_index: int, start: int, stop: int) -> NDArray[np.int16]:
        """Run the generator for rows ``[start, stop)``."""
        return np.asarray(self.generate(shard_index, start, stop), dtype=np.int16)


def fused_prefix_tables(
    schema: Schema,
    chunk: NDArray[np.int16],
    predicates: Sequence[GroupPredicate],
) -> list[NDArray[np.int32]]:
    """Local prefix-count tables of many predicates over one chunk.

    The fused form of the old two-pass route: each predicate's mask is
    evaluated once and immediately cumsum-ed into its ``rows + 1``-long
    prefix table, so a totals-plus-prefix build touches the chunk
    exactly once however many predicates it indexes. ``table[-1]`` is
    the shard's member count — the totals entry — and
    ``table[b] - table[a]`` counts members of local rows ``[a, b)``.
    Tables are ``int32``: a local count is bounded by the shard's row
    count, and chunks anywhere near 2³¹ rows could not be materialized
    in the first place — half the bytes of the dense index's ``int64``
    tables, which is where the sharded path's prefix-cache headroom
    comes from.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.schema import Schema
    >>> from repro.data.groups import group
    >>> from repro.data.kernels import fused_prefix_tables
    >>> schema = Schema.from_dict({"gender": ["male", "female"]})
    >>> tables = fused_prefix_tables(
    ...     schema, np.array([[0], [1], [1], [0]], dtype=np.int16),
    ...     [group(gender="female"), group(gender="male")])
    >>> [table.tolist() for table in tables]
    [[0, 0, 1, 2, 2], [0, 1, 1, 1, 2]]
    """
    tables: list[NDArray[np.int32]] = []
    for predicate in predicates:
        mask = predicate_mask(schema, chunk, predicate)
        table = np.zeros(len(mask) + 1, dtype=np.int32)
        np.cumsum(mask, out=table[1:])
        table.setflags(write=False)
        tables.append(table)
    return tables


def fused_source_pass(
    source: ChunkSource,
    schema: Schema,
    shard_index: int,
    start: int,
    stop: int,
    predicates: Sequence[GroupPredicate],
    want_tables: bool,
) -> tuple[list[int], list[NDArray[np.int32]] | None]:
    """One shard's contribution to a fused totals + prefix build.

    Materializes the chunk from ``source`` (inside the calling process —
    under a pool this is the worker, so chunk bytes never pickle),
    evaluates every predicate once, and returns the per-predicate member
    counts plus, when ``want_tables`` is set, the full local prefix
    tables. Builders pass ``want_tables=False`` when shipping tables
    back would cost more than rebuilding the few boundary ones on
    demand.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.schema import Schema
    >>> from repro.data.groups import group
    >>> from repro.data.kernels import CallableChunkSource, fused_source_pass
    >>> schema = Schema.from_dict({"gender": ["male", "female"]})
    >>> def chunk(shard_index, start, stop):
    ...     return np.arange(start, stop, dtype=np.int16).reshape(-1, 1) % 2
    >>> counts, tables = fused_source_pass(
    ...     CallableChunkSource(chunk), schema, 0, 0, 6,
    ...     [group(gender="female")], True)
    >>> counts, tables[0].tolist()
    ([3], [0, 0, 1, 1, 2, 2, 3])
    """
    chunk = source.chunk(shard_index, start, stop)
    tables = fused_prefix_tables(schema, chunk, predicates)
    counts = [int(table[-1]) for table in tables]
    return counts, (tables if want_tables else None)


def scattered_hits_pass(
    source: ChunkSource,
    schema: Schema,
    shard_index: int,
    start: int,
    stop: int,
    predicate: GroupPredicate,
    local_indices: NDArray[np.int64],
) -> NDArray[np.bool_]:
    """Membership bits of scattered *local* rows within one shard.

    The process-safe form of a scattered gather: the worker materializes
    its shard's chunk from ``source``, evaluates the predicate mask
    once, and returns only the (small) boolean hit array for the
    requested rows — never the chunk.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.schema import Schema
    >>> from repro.data.groups import group
    >>> from repro.data.kernels import CallableChunkSource, scattered_hits_pass
    >>> schema = Schema.from_dict({"gender": ["male", "female"]})
    >>> def chunk(shard_index, start, stop):
    ...     return np.arange(start, stop, dtype=np.int16).reshape(-1, 1) % 2
    >>> scattered_hits_pass(
    ...     CallableChunkSource(chunk), schema, 0, 0, 8,
    ...     group(gender="female"), np.array([0, 3, 5]))
    array([False,  True,  True])
    """
    chunk = source.chunk(shard_index, start, stop)
    mask = predicate_mask(schema, chunk, predicate)
    return np.asarray(mask[local_indices], dtype=bool)
