"""Attribute schemas for the attributes of interest.

The paper considers a small number of low-cardinality categorical
*attributes of interest* (gender, race, age-group, ...). A
:class:`Schema` is an ordered collection of :class:`Attribute` objects and
is shared by datasets, group predicates, and the pattern graph.

Values are stored both as strings (the human-readable group names shown to
crowd workers, e.g. ``"female"``) and as integer codes (the compact form
stored in dataset label arrays). The schema owns the string<->code mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError, UnknownGroupError

__all__ = ["Attribute", "Schema"]


@dataclass(frozen=True)
class Attribute:
    """A categorical attribute of interest.

    Parameters
    ----------
    name:
        Attribute identifier, e.g. ``"gender"``.
    values:
        The attribute's domain as an ordered tuple of distinct value names,
        e.g. ``("male", "female")``. Order defines the integer coding:
        ``values[code] == name``.

    Raises
    ------
    SchemaError
        If the domain has fewer than two values or contains duplicates.
    """

    name: str
    values: tuple[str, ...]

    def __init__(self, name: str, values: Iterable[str]) -> None:
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "values", tuple(str(v) for v in values))
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if len(self.values) < 2:
            raise SchemaError(
                f"attribute {self.name!r} needs at least two values, "
                f"got {self.values!r}"
            )
        if len(set(self.values)) != len(self.values):
            raise SchemaError(
                f"attribute {self.name!r} has duplicate values: {self.values!r}"
            )

    @property
    def cardinality(self) -> int:
        """Number of values in the domain (the paper's sigma)."""
        return len(self.values)

    def code_of(self, value: str) -> int:
        """Integer code of ``value``.

        Raises
        ------
        UnknownGroupError
            If ``value`` is not in this attribute's domain.
        """
        try:
            return self.values.index(value)
        except ValueError:
            raise UnknownGroupError(
                f"value {value!r} not in domain of attribute {self.name!r} "
                f"(domain: {self.values!r})"
            ) from None

    def value_of(self, code: int) -> str:
        """Value name for an integer ``code``."""
        if not 0 <= code < len(self.values):
            raise UnknownGroupError(
                f"code {code} out of range for attribute {self.name!r}"
            )
        return self.values[code]

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)


@dataclass(frozen=True)
class Schema:
    """An ordered set of attributes of interest.

    The schema defines the universe for group predicates and patterns:
    a fully-specified subgroup picks one value per attribute, and the
    number of such subgroups is the product of the cardinalities.
    """

    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        object.__setattr__(self, "attributes", tuple(attributes))
        if not self.attributes:
            raise SchemaError("schema must contain at least one attribute")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names!r}")

    @classmethod
    def from_dict(cls, spec: Mapping[str, Sequence[str]]) -> "Schema":
        """Build a schema from ``{attribute_name: [values...]}``.

        >>> Schema.from_dict({"gender": ["male", "female"]}).cardinalities
        (2,)
        """
        return cls(Attribute(name, values) for name, values in spec.items())

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def cardinalities(self) -> tuple[int, ...]:
        """Per-attribute cardinalities ``(sigma_1, ..., sigma_d)``."""
        return tuple(a.cardinality for a in self.attributes)

    @property
    def n_attributes(self) -> int:
        return len(self.attributes)

    @property
    def n_full_groups(self) -> int:
        """Number of fully-specified subgroups (product of cardinalities)."""
        total = 1
        for a in self.attributes:
            total *= a.cardinality
        return total

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name.

        Raises
        ------
        UnknownGroupError
            If no attribute with that name exists.
        """
        for a in self.attributes:
            if a.name == name:
                return a
        raise UnknownGroupError(
            f"attribute {name!r} not in schema (have: {self.names!r})"
        )

    def index_of(self, name: str) -> int:
        """Position of attribute ``name`` within the schema."""
        for i, a in enumerate(self.attributes):
            if a.name == name:
                return i
        raise UnknownGroupError(
            f"attribute {name!r} not in schema (have: {self.names!r})"
        )

    def __contains__(self, name: object) -> bool:
        return any(a.name == name for a in self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)
