"""GroupMembershipIndex: the vectorized substrate of simulated answering.

The simulated crowd (ground-truth and flaky oracles, the platform's
hidden-truth computation) must answer set queries over datasets of
millions of objects at hardware speed. Evaluating
:meth:`~repro.data.groups.GroupPredicate.matches_row` per object in
Python is the row-at-a-time regime this index replaces:

* one boolean **membership column** per predicate, composed with NumPy
  (AND over a :class:`~repro.data.groups.Group`'s conditions, OR over a
  :class:`~repro.data.groups.SuperGroup`'s members, NOT for a
  :class:`~repro.data.groups.Negation`), memoized per predicate;
* a **prefix-count table** per predicate (``prefix[i]`` = members among
  the first ``i`` objects), so any *contiguous run* of indices — the
  only shape the divide-and-conquer trees over ``arange`` views ever
  produce — is answered in O(1) regardless of its length;
* **batched** forms (:meth:`any_match_batch`, :meth:`any_match_runs`)
  that answer thousands of queries with a handful of NumPy calls: one
  gather + segmented reduction per distinct predicate, and a single
  vectorized prefix-difference for run-shaped batches.

Everything here is ground truth: algorithms never touch the index; they
route through :mod:`repro.crowd.oracle`, whose simulated implementations
answer from it. One index per dataset is enough — use
:meth:`GroupMembershipIndex.for_dataset` to share it across oracles,
platforms, and audit sessions over the same dataset.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import LabeledDataset
from repro.data.groups import GroupPredicate
from repro.errors import OracleError

__all__ = ["GroupMembershipIndex", "as_run", "membership_index_for"]


def membership_index_for(dataset):
    """The shared membership index of ``dataset``, whatever its kind.

    Dense :class:`~repro.data.dataset.LabeledDataset` instances get the
    in-RAM :class:`GroupMembershipIndex`; sharded out-of-core datasets
    (:class:`~repro.data.sharded.ShardedDataset`) get a
    :class:`~repro.data.sharded.ShardedMembershipIndex`. Both expose the
    same query surface, which is how oracles and platforms accept either
    dataset kind transparently.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.membership import membership_index_for
    >>> from repro.data.sharded import ShardedDataset
    >>> from repro.data.synthetic import binary_dataset
    >>> dense = binary_dataset(100, 5, rng=np.random.default_rng(0))
    >>> type(membership_index_for(dense)).__name__
    'GroupMembershipIndex'
    >>> type(membership_index_for(
    ...     ShardedDataset.from_dataset(dense, shard_size=40))).__name__
    'ShardedMembershipIndex'
    """
    from repro.data.sharded import ShardedDataset, ShardedMembershipIndex

    if isinstance(dataset, ShardedDataset):
        return ShardedMembershipIndex.for_dataset(dataset)
    return GroupMembershipIndex.for_dataset(dataset)


def check_object_indices(index_array: np.ndarray, n_objects: int) -> None:
    """Raise :class:`~repro.errors.OracleError` for any index outside
    ``[0, n_objects)`` — the bounds contract every membership substrate
    (dense and sharded) enforces on set queries and label decoding
    alike, so a negative index raises instead of silently wrapping."""
    out_of_range = (index_array < 0) | (index_array >= n_objects)
    if out_of_range.any():
        bad = int(index_array[out_of_range][0])
        raise OracleError(f"object index {bad} out of range [0, {n_objects})")


def decode_value_rows(schema, codes: np.ndarray) -> list[dict[str, str]]:
    """Decode a gathered ``(k, d)`` code matrix into ``{attribute:
    value}`` rows — one fancy-index per attribute, shared by the dense
    and sharded ``value_rows`` paths."""
    columns: list[tuple[str, np.ndarray]] = []
    for j, attribute in enumerate(schema):
        values = np.asarray(attribute.values, dtype=object)
        columns.append((attribute.name, values[codes[:, j]]))
    return [
        {name: column[i] for name, column in columns}
        for i in range(len(codes))
    ]


def segmented_any(hits: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment ``any`` over a concatenated boolean gather: segment
    ``i`` covers the next ``lengths[i]`` entries of ``hits`` (every
    segment non-empty — ``reduceat`` cannot express empty segments).
    Shared by the dense and sharded scattered-batch paths."""
    bounds = np.zeros(len(lengths), dtype=np.int64)
    np.cumsum(lengths[:-1], out=bounds[1:])
    return np.logical_or.reduceat(hits, bounds)


def as_run(indices: np.ndarray) -> tuple[int, int] | None:
    """``(start, stop)`` if ``indices`` is a contiguous ascending run
    (``start, start+1, ..., stop-1``), else ``None``.

    The O(n) check is far cheaper than the O(n) gather it replaces with
    an O(1) prefix lookup, and run-shaped queries dominate: every tree
    node over an ``arange`` view slices out exactly such a run.
    """
    length = len(indices)
    if length == 0:
        return None
    start = int(indices[0])
    stop = int(indices[-1]) + 1
    if stop - start != length:
        return None
    if length > 1 and not bool((np.diff(indices) == 1).all()):
        return None
    return (start, stop)


class GroupMembershipIndex:
    """Precomputed boolean membership matrices over one dataset.

    Columns and prefix tables are built lazily per predicate and
    memoized forever (predicates are immutable value objects, datasets
    never mutate their codes). Memory per indexed predicate is one bool
    column (N bytes) plus one int64 prefix table (8(N+1) bytes) — ~9 MB
    per predicate at N = 1M.
    """

    def __init__(self, dataset: LabeledDataset) -> None:
        self.dataset = dataset
        self._prefix_cache: dict[GroupPredicate, np.ndarray] = {}

    @classmethod
    def for_dataset(cls, dataset: LabeledDataset) -> "GroupMembershipIndex":
        """The shared index of ``dataset`` (created on first use).

        Oracles, platforms, and sessions over the same dataset all get
        the same instance, so membership columns are computed once per
        process however many answerers exist.
        """
        index = dataset.__dict__.get("_membership_index")
        if index is None:
            index = cls(dataset)
            dataset.__dict__["_membership_index"] = index
        return index

    def __len__(self) -> int:
        return len(self.dataset)

    # ------------------------------------------------------------------
    # columns
    # ------------------------------------------------------------------
    def mask(self, predicate: GroupPredicate) -> np.ndarray:
        """The predicate's boolean membership column (memoized, read-only)."""
        return self.dataset.mask(predicate)

    def prefix(self, predicate: GroupPredicate) -> np.ndarray:
        """``prefix[i]`` = number of members among objects ``[0, i)``.

        Length N+1; ``prefix[stop] - prefix[start]`` counts members of
        any contiguous run in O(1).
        """
        cached = self._prefix_cache.get(predicate)
        if cached is None:
            cached = np.zeros(len(self.dataset) + 1, dtype=np.int64)
            np.cumsum(self.mask(predicate), out=cached[1:])
            cached.setflags(write=False)
            self._prefix_cache[predicate] = cached
        return cached

    # ------------------------------------------------------------------
    # single-query forms
    # ------------------------------------------------------------------
    def _check_run(self, start: int, stop: int) -> None:
        """Out-of-range runs raise like the sharded index — a negative
        start would otherwise silently wrap through the prefix table."""
        if start < 0 or stop > len(self.dataset):
            raise OracleError(
                f"query run [{start}, {stop}) outside dataset "
                f"[0, {len(self.dataset)})"
            )

    def count(self, predicate: GroupPredicate, indices: np.ndarray) -> int:
        """Number of objects in ``indices`` matching ``predicate``."""
        run = as_run(indices)
        if run is not None:
            self._check_run(run[0], run[1])
            prefix = self.prefix(predicate)
            return int(prefix[run[1]] - prefix[run[0]])
        if len(indices):
            check_object_indices(np.asarray(indices, dtype=np.int64), len(self.dataset))
        return int(self.mask(predicate)[indices].sum())

    def any_match(
        self, predicate: GroupPredicate, indices: np.ndarray, *, key=None
    ) -> bool:
        """Does ``indices`` contain at least one member of ``predicate``?

        Contiguous runs are answered from the prefix table in O(1);
        arbitrary index arrays fall back to a vectorized gather. ``key``
        (an :class:`~repro.engine.requests.IndexKey`) short-circuits the
        run detection when the caller already keyed the query.
        """
        if key is not None:
            if key.payload is None:
                if key.stop <= key.start:
                    return False
                self._check_run(key.start, key.stop)
                prefix = self.prefix(predicate)
                return bool(prefix[key.stop] > prefix[key.start])
            if len(indices) == 0:
                return False
            check_object_indices(
                np.asarray(indices, dtype=np.int64), len(self.dataset)
            )
            return bool(self.mask(predicate)[indices].any())
        run = as_run(indices)
        if run is not None:
            self._check_run(run[0], run[1])
            prefix = self.prefix(predicate)
            return bool(prefix[run[1]] > prefix[run[0]])
        if len(indices):
            check_object_indices(
                np.asarray(indices, dtype=np.int64), len(self.dataset)
            )
        return bool(self.mask(predicate)[indices].any())

    def matches(self, predicate: GroupPredicate, index: int) -> bool:
        """Ground-truth membership of a single object."""
        check_object_indices(
            np.asarray([index], dtype=np.int64), len(self.dataset)
        )
        return bool(self.mask(predicate)[index])

    # ------------------------------------------------------------------
    # batched forms
    # ------------------------------------------------------------------
    def any_match_runs(
        self, predicate: GroupPredicate, starts: np.ndarray, stops: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`any_match` over many runs of one predicate:
        one prefix gather for the whole batch."""
        prefix = self.prefix(predicate)
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        if len(starts) and (
            int(starts.min()) < 0 or int(stops.max()) > len(self.dataset)
        ):
            bad = np.flatnonzero((starts < 0) | (stops > len(self.dataset)))[0]
            raise OracleError(
                f"query run [{int(starts[bad])}, {int(stops[bad])}) outside "
                f"dataset [0, {len(self.dataset)})"
            )
        return prefix[stops] > prefix[starts]

    def any_match_batch(
        self,
        queries: Sequence[tuple[np.ndarray, GroupPredicate]],
        *,
        keys: "Sequence | None" = None,
    ) -> list[bool]:
        """Answer many set queries with a handful of NumPy calls.

        Queries are grouped by predicate; each group's run-shaped
        queries resolve through one vectorized prefix difference, and
        the rest through a single gather + segmented ``any`` over their
        concatenated index arrays. Empty index arrays answer ``False``
        (an empty set contains nothing). ``keys`` — a parallel sequence
        of :class:`~repro.engine.requests.IndexKey` — skips per-query
        run detection when the engine already keyed the batch.
        """
        answers = [False] * len(queries)
        by_predicate: dict[GroupPredicate, list[int]] = {}
        for position, (_, predicate) in enumerate(queries):
            by_predicate.setdefault(predicate, []).append(position)
        for predicate, positions in by_predicate.items():
            run_positions: list[int] = []
            run_bounds: list[tuple[int, int]] = []
            scattered: list[int] = []
            for position in positions:
                indices = queries[position][0]
                if keys is not None:
                    key = keys[position]
                    if key.payload is None:
                        if key.stop > key.start:
                            run_positions.append(position)
                            run_bounds.append((key.start, key.stop))
                        continue
                    if len(indices):
                        scattered.append(position)
                    continue
                if len(indices) == 0:
                    continue
                run = as_run(indices)
                if run is not None:
                    run_positions.append(position)
                    run_bounds.append(run)
                else:
                    scattered.append(position)
            if run_positions:
                bounds = np.asarray(run_bounds, dtype=np.int64)
                hits = self.any_match_runs(predicate, bounds[:, 0], bounds[:, 1])
                for position, hit in zip(run_positions, hits):
                    answers[position] = bool(hit)
            if scattered:
                mask = self.mask(predicate)
                arrays = [queries[position][0] for position in scattered]
                lengths = np.array([len(a) for a in arrays])
                flat = np.concatenate(arrays)
                check_object_indices(
                    np.asarray(flat, dtype=np.int64), len(self.dataset)
                )
                gathered = mask[flat]
                for position, hit in zip(
                    scattered, segmented_any(gathered, lengths)
                ):
                    answers[position] = bool(hit)
        return answers

    # ------------------------------------------------------------------
    # point labels
    # ------------------------------------------------------------------
    def value_rows(self, indices: Sequence[int]) -> list[dict[str, str]]:
        """Ground-truth ``{attribute: value}`` rows for many objects at
        once: one fancy-index per attribute instead of one Python-level
        ``value_row`` call per object.

        Bounds are checked like :meth:`LabeledDataset.value_row` — a
        negative index must raise, not silently wrap to the end of the
        dataset the way raw fancy-indexing would.
        """
        if len(indices) == 0:
            return []
        index_array = np.asarray(indices, dtype=np.int64)
        check_object_indices(index_array, len(self.dataset))
        return decode_value_rows(
            self.dataset.schema, self.dataset.codes[index_array]
        )

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"GroupMembershipIndex({self.dataset.name!r}, N={len(self.dataset)}, "
            f"indexed_predicates={len(self._prefix_cache)})"
        )
