"""Sharded, out-of-core datasets and the membership index over them.

The dense :class:`~repro.data.membership.GroupMembershipIndex` keeps one
boolean column plus one prefix-count table per predicate fully resident,
so the largest auditable dataset is whatever fits in RAM. This module
removes that ceiling: a :class:`ShardedDataset` partitions the object
space into fixed-size **shards** whose columnar code chunks are loaded
lazily (from a memory map, a generator, or any loader callable) and
evicted LRU under a resident-shard cap, and a
:class:`ShardedMembershipIndex` answers the same ``count`` /
``any_match`` / batched-gather API as the dense index by combining

* **cross-shard totals** — one ``int64`` per shard per predicate
  (``totals[s]`` = members among shards ``[0, s)``), built in a single
  streaming pass and from then on answering every *shard-aligned* run in
  O(1) without touching a single chunk; and
* **per-shard prefix tables** — built on demand only for the (at most
  two) *partially* covered boundary shards of a run, and cached LRU
  under their own entry-count budget (each entry is at most
  ``8·(shard_size+1)`` bytes, so the byte footprint is bounded too).

A contiguous-run query spanning many shards therefore splits at shard
boundaries — interior shards answer from the totals, boundary shards
from their local prefix tables — and the partial counts re-merge into
the exact dense answer. Scattered index arrays group by owning shard and
resolve shard-parallel through a :class:`ShardExecutor`.

Everything is *exact*, so oracles answering through a sharded index are
bit-identical to the dense path: same verdicts, same task counts, same
rng streams (pinned by ``tests/crowd/test_sharded_equivalence.py``).
Peak memory is structurally bounded by ``max_resident_shards`` chunks
plus the prefix-table budget — ``benchmarks/bench_shards.py`` asserts it
while auditing datasets 10× larger than the dense index could hold.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import LabeledDataset, predicate_mask
from repro.data.groups import GroupPredicate
from repro.data.membership import (
    as_run,
    check_object_indices,
    decode_value_rows,
    segmented_any,
)
from repro.data.schema import Schema
from repro.errors import InvalidParameterError, OracleError

__all__ = [
    "ShardStats",
    "ShardExecutor",
    "ShardedDataset",
    "ShardedMembershipIndex",
    "dense_index_bytes",
]


@dataclass
class ShardStats:
    """Residency accounting of one :class:`ShardedDataset`.

    The structural memory guarantee of the sharded path lives here:
    ``peak_resident_bytes`` can never exceed ``max_resident_shards ×
    bytes-per-chunk``, whatever the dataset size — the number
    ``benchmarks/bench_shards.py`` asserts against the dense index's
    requirement.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.sharded import ShardedDataset
    >>> dense = binary_dataset(100, 5, rng=np.random.default_rng(0))
    >>> sharded = ShardedDataset.from_dataset(dense, shard_size=30,
    ...                                       max_resident_shards=2)
    >>> _ = [sharded.chunk(s) for s in range(sharded.n_shards)]
    >>> sharded.stats.loads, sharded.stats.peak_resident_shards
    (4, 2)
    """

    #: chunk materializations (a regenerated evicted shard counts again)
    loads: int = 0
    #: chunks dropped to respect ``max_resident_shards``
    evictions: int = 0
    #: chunks resident right now / the lifetime high-water mark
    resident_shards: int = 0
    peak_resident_shards: int = 0
    #: bytes of resident chunks right now / the lifetime high-water mark
    resident_bytes: int = 0
    peak_resident_bytes: int = 0


class ShardExecutor:
    """Maps a function over shards, serially or on a thread pool.

    The executor is the parallelism seam of the sharded path: cross-shard
    totals builds and scattered-batch gathers hand it one callable per
    shard. ``mode="serial"`` runs in the calling thread (the default —
    exact answers need no concurrency); ``mode="threads"`` uses a
    :class:`~concurrent.futures.ThreadPoolExecutor`, which pays off when
    chunk loading is IO-bound or mask evaluation dominates (NumPy
    releases the GIL for large chunks). Results always come back in
    input order, so answers are identical in either mode.

    Examples
    --------
    >>> from repro.data.sharded import ShardExecutor
    >>> with ShardExecutor(mode="threads", max_workers=2) as executor:
    ...     executor.map(lambda s: s * s, range(4))
    [0, 1, 4, 9]
    """

    def __init__(
        self, *, mode: str = "serial", max_workers: int | None = None
    ) -> None:
        if mode not in ("serial", "threads"):
            raise InvalidParameterError(
                f"executor mode must be 'serial' or 'threads', got {mode!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.mode = mode
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def map(self, fn: Callable, items) -> list:
        """``[fn(item) for item in items]``, possibly shard-parallel;
        result order always matches input order."""
        items = list(items)
        if self.mode == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="shard"
                )
            pool = self._pool
        return list(pool.map(fn, items))

    def close(self) -> None:
        """Shut the thread pool down (idempotent; serial mode is a no-op)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ShardedDataset:
    """A dataset partitioned into fixed-size, lazily materialized shards.

    Rows ``[s·shard_size, (s+1)·shard_size)`` form shard ``s``; the last
    shard may be shorter. Chunks — ``(rows, d)`` ``int16`` code matrices
    — are produced by ``loader(shard_index, start, stop)`` on first
    access, kept in an LRU table capped at ``max_resident_shards``, and
    transparently regenerated after eviction, so the full ``(N, d)``
    matrix never exists in memory. The loader must be **deterministic**:
    an evicted shard that reloads with different content would break the
    exactness guarantees of every index built on top.

    Use the constructors instead of wiring a loader by hand:
    :meth:`from_dataset` (shard an in-RAM :class:`~repro.data.dataset.\
LabeledDataset` — equivalence tests and small jobs),
    :meth:`from_generator` (compute chunks on demand — synthetic
    benchmarks at any N), and :meth:`from_memmap` (``.npy`` file via
    ``numpy`` memory mapping — on-disk corpora).

    The class mirrors the read-only surface oracles need
    (``schema`` / ``__len__`` / ``value_row``) so
    :class:`~repro.crowd.oracle.GroundTruthOracle`,
    :class:`~repro.crowd.oracle.FlakyOracle`, and
    :class:`~repro.crowd.platform.CrowdPlatform` accept it wherever they
    accept a dense dataset.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.sharded import ShardedDataset
    >>> dense = binary_dataset(1_000, 30, rng=np.random.default_rng(0))
    >>> sharded = ShardedDataset.from_dataset(dense, shard_size=256)
    >>> len(sharded), sharded.n_shards
    (1000, 4)
    >>> sharded.value_row(17) == dense.value_row(17)
    True
    """

    def __init__(
        self,
        schema: Schema,
        n_objects: int,
        shard_size: int,
        loader: Callable[[int, int, int], np.ndarray],
        *,
        max_resident_shards: int = 4,
        name: str = "sharded-dataset",
    ) -> None:
        if n_objects < 0:
            raise InvalidParameterError(
                f"n_objects must be non-negative, got {n_objects}"
            )
        if shard_size < 1:
            raise InvalidParameterError(
                f"shard_size must be >= 1, got {shard_size}"
            )
        if max_resident_shards < 1:
            raise InvalidParameterError(
                f"max_resident_shards must be >= 1, got {max_resident_shards}"
            )
        self.schema = schema
        self.name = name
        self.shard_size = int(shard_size)
        self.max_resident_shards = int(max_resident_shards)
        self._n_objects = int(n_objects)
        self._loader = loader
        self.stats = ShardStats()
        self._chunks: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        #: Bounds how many chunks shard-parallel workers may *hold*
        #: (load + compute over) at once, so threaded execution cannot
        #: materialize more than ``max_resident_shards`` chunks beyond
        #: the LRU table — the worst-case footprint stays at twice the
        #: residency cap, which is what ``memory_report`` budgets for.
        self.hold_slots = threading.BoundedSemaphore(self.max_resident_shards)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(
        cls,
        dataset: LabeledDataset,
        shard_size: int,
        *,
        max_resident_shards: int = 4,
        name: str | None = None,
    ) -> "ShardedDataset":
        """Shard an in-RAM dense dataset (chunks are copies of its code
        slices, so residency accounting stays honest). The sharded view
        holds identical content — the substrate of every
        dense-vs-sharded equivalence test.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.data.synthetic import binary_dataset
        >>> dense = binary_dataset(100, 7, rng=np.random.default_rng(3))
        >>> sharded = ShardedDataset.from_dataset(dense, shard_size=33)
        >>> [sharded.shard_bounds(s) for s in range(sharded.n_shards)]
        [(0, 33), (33, 66), (66, 99), (99, 100)]
        """
        codes = dataset.codes

        def load(shard_index: int, start: int, stop: int) -> np.ndarray:
            return np.array(codes[start:stop], dtype=np.int16)

        return cls(
            dataset.schema,
            len(dataset),
            shard_size,
            load,
            max_resident_shards=max_resident_shards,
            name=name or f"{dataset.name}[sharded:{shard_size}]",
        )

    @classmethod
    def from_generator(
        cls,
        schema: Schema,
        n_objects: int,
        shard_size: int,
        generate: Callable[[int, int, int], np.ndarray],
        *,
        max_resident_shards: int = 4,
        name: str = "generated-sharded-dataset",
    ) -> "ShardedDataset":
        """A dataset whose chunks are computed on demand.

        ``generate(shard_index, start, stop)`` must deterministically
        return the ``(stop-start, d)`` code chunk of rows ``[start,
        stop)`` — seed a per-shard rng from the shard index so a
        regenerated chunk is identical to the evicted one. This is how
        the benchmarks audit 10M-row datasets that never materialize.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.data.schema import Schema
        >>> schema = Schema.from_dict({"gender": ["male", "female"]})
        >>> def chunk(shard, start, stop):
        ...     rng = np.random.default_rng([7, shard])
        ...     return (rng.random((stop - start, 1)) < 0.01).astype(np.int16)
        >>> ds = ShardedDataset.from_generator(schema, 10_000, 2_500, chunk)
        >>> ds.n_shards
        4
        """
        return cls(
            schema,
            n_objects,
            shard_size,
            generate,
            max_resident_shards=max_resident_shards,
            name=name,
        )

    @classmethod
    def from_memmap(
        cls,
        schema: Schema,
        path,
        shard_size: int,
        *,
        max_resident_shards: int = 4,
        name: str | None = None,
    ) -> "ShardedDataset":
        """A dataset backed by an on-disk ``.npy`` code matrix.

        The file (written with ``np.save(path, codes)``) is opened with
        ``mmap_mode="r"``, so only the chunk slices a query touches are
        ever paged in and copied; evicted chunks fall back to the page
        cache, not the Python heap.

        Examples
        --------
        >>> import numpy as np, tempfile, os
        >>> from repro.data.schema import Schema
        >>> schema = Schema.from_dict({"gender": ["male", "female"]})
        >>> path = os.path.join(tempfile.mkdtemp(), "codes.npy")
        >>> np.save(path, np.zeros((1_000, 1), dtype=np.int16))
        >>> ds = ShardedDataset.from_memmap(schema, path, shard_size=400)
        >>> len(ds), ds.n_shards
        (1000, 3)
        """
        mapped = np.load(path, mmap_mode="r")
        if mapped.ndim != 2 or mapped.shape[1] != schema.n_attributes:
            raise InvalidParameterError(
                f"memmapped codes at {path!r} have shape {mapped.shape}, "
                f"need (N, {schema.n_attributes})"
            )

        def load(shard_index: int, start: int, stop: int) -> np.ndarray:
            return np.array(mapped[start:stop], dtype=np.int16)

        return cls(
            schema,
            mapped.shape[0],
            shard_size,
            load,
            max_resident_shards=max_resident_shards,
            name=name or f"memmap({path})",
        )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_objects

    @property
    def n_objects(self) -> int:
        """Dataset size ``N`` (rows across all shards)."""
        return self._n_objects

    @property
    def n_shards(self) -> int:
        """Number of shards, ``ceil(N / shard_size)`` (0 when empty)."""
        return -(-self._n_objects // self.shard_size)

    def shard_bounds(self, shard_index: int) -> tuple[int, int]:
        """The global row range ``[start, stop)`` of one shard."""
        if not 0 <= shard_index < self.n_shards:
            raise InvalidParameterError(
                f"shard index {shard_index} out of range [0, {self.n_shards})"
            )
        start = shard_index * self.shard_size
        return start, min(start + self.shard_size, self._n_objects)

    def shard_of(self, index: int) -> int:
        """The shard owning global row ``index``."""
        return int(index) // self.shard_size

    # ------------------------------------------------------------------
    # chunk residency
    # ------------------------------------------------------------------
    def chunk(self, shard_index: int) -> np.ndarray:
        """The shard's resident ``(rows, d)`` code chunk, loading (and
        evicting the least recently used shard) as needed. Thread-safe;
        returned arrays are read-only."""
        with self._lock:
            cached = self._chunks.get(shard_index)
            if cached is not None:
                self._chunks.move_to_end(shard_index)
                return cached
        start, stop = self.shard_bounds(shard_index)
        chunk = np.asarray(self._loader(shard_index, start, stop), dtype=np.int16)
        if chunk.ndim != 2 or chunk.shape != (stop - start, self.schema.n_attributes):
            raise InvalidParameterError(
                f"loader returned shape {chunk.shape} for shard {shard_index}, "
                f"expected ({stop - start}, {self.schema.n_attributes})"
            )
        for j, attribute in enumerate(self.schema):
            column = chunk[:, j]
            if column.size and (
                column.min() < 0 or column.max() >= attribute.cardinality
            ):
                raise InvalidParameterError(
                    f"shard {shard_index} codes for attribute "
                    f"{attribute.name!r} outside [0, {attribute.cardinality})"
                )
        chunk.setflags(write=False)
        with self._lock:
            raced = self._chunks.get(shard_index)
            if raced is not None:
                # Another thread loaded it first; this thread's loader
                # call still materialized a chunk, so it still counts.
                self.stats.loads += 1
                self._chunks.move_to_end(shard_index)
                return raced
            self.stats.loads += 1
            self._chunks[shard_index] = chunk
            self.stats.resident_bytes += chunk.nbytes
            self.stats.resident_shards += 1
            while len(self._chunks) > self.max_resident_shards:
                _, evicted = self._chunks.popitem(last=False)
                self.stats.evictions += 1
                self.stats.resident_bytes -= evicted.nbytes
                self.stats.resident_shards -= 1
            self.stats.peak_resident_shards = max(
                self.stats.peak_resident_shards, self.stats.resident_shards
            )
            self.stats.peak_resident_bytes = max(
                self.stats.peak_resident_bytes, self.stats.resident_bytes
            )
        return chunk

    # ------------------------------------------------------------------
    # row access (the oracle surface)
    # ------------------------------------------------------------------
    def value_row(self, index: int) -> dict[str, str]:
        """Ground-truth ``{attribute: value}`` mapping of one object,
        decoded from its owning shard's chunk."""
        index = int(index)
        if not 0 <= index < self._n_objects:
            raise OracleError(
                f"object index {index} out of range [0, {self._n_objects})"
            )
        shard = self.shard_of(index)
        row = self.chunk(shard)[index - shard * self.shard_size]
        return {
            attribute.name: attribute.value_of(int(row[j]))
            for j, attribute in enumerate(self.schema)
        }

    def describe(self) -> str:
        """A short summary used by examples and reports."""
        return (
            f"{self.name}: N={self._n_objects}, shards={self.n_shards}"
            f"×{self.shard_size}, resident≤{self.max_resident_shards}, "
            f"attributes={list(self.schema.names)}"
        )

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"ShardedDataset(name={self.name!r}, N={self._n_objects}, "
            f"shards={self.n_shards}x{self.shard_size})"
        )


@dataclass
class _PrefixCache:
    """Entry-capped LRU of per-shard prefix tables (internal).

    Eviction triggers on entry count; since every entry is at most
    ``8·(shard_size+1)`` bytes, the byte footprint is bounded by
    ``max_entries`` times that — the ``prefix_cap`` term of
    :meth:`ShardedMembershipIndex.memory_report`. Byte counters are
    tracked for reporting, not for eviction."""

    max_entries: int
    entries: "OrderedDict[tuple[GroupPredicate, int], np.ndarray]" = field(
        default_factory=OrderedDict
    )
    resident_bytes: int = 0
    peak_resident_bytes: int = 0
    builds: int = 0
    evictions: int = 0

    def get(self, key) -> np.ndarray | None:
        cached = self.entries.get(key)
        if cached is not None:
            self.entries.move_to_end(key)
        return cached

    def put(self, key, prefix: np.ndarray) -> None:
        if key in self.entries:
            return
        self.builds += 1
        self.entries[key] = prefix
        self.resident_bytes += prefix.nbytes
        while len(self.entries) > self.max_entries:
            _, evicted = self.entries.popitem(last=False)
            self.evictions += 1
            self.resident_bytes -= evicted.nbytes
        self.peak_resident_bytes = max(
            self.peak_resident_bytes, self.resident_bytes
        )


class ShardedMembershipIndex:
    """The out-of-core answering substrate: dense-index API, sharded spine.

    Exposes the same query surface as
    :class:`~repro.data.membership.GroupMembershipIndex` —
    :meth:`count`, :meth:`any_match`, :meth:`any_match_runs`,
    :meth:`any_match_batch`, :meth:`matches`, :meth:`value_rows` — with
    identical (exact) answers, so every oracle, platform, session, and
    service runs unmodified over it. Internally a query splits at shard
    boundaries: interior shards answer from the cross-shard totals
    (built once per predicate in a streaming pass), boundary shards from
    their local prefix tables (built on demand, LRU-capped), and the
    partial counts merge. Shard-aligned runs never load a chunk at all.

    Parameters
    ----------
    dataset:
        The :class:`ShardedDataset` to answer over.
    executor:
        The :class:`ShardExecutor` for totals builds and scattered-batch
        gathers; defaults to a serial executor (answers are identical in
        every mode).
    max_cached_prefixes:
        LRU capacity of the per-shard prefix-table cache, in entries
        (each ≤ ``8·(shard_size+1)`` bytes). Defaults to the dataset's
        ``max_resident_shards``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.groups import group
    >>> from repro.data.membership import GroupMembershipIndex
    >>> from repro.data.sharded import ShardedDataset, ShardedMembershipIndex
    >>> from repro.data.synthetic import binary_dataset
    >>> dense = binary_dataset(1_000, 30, rng=np.random.default_rng(0))
    >>> sharded = ShardedMembershipIndex.for_dataset(
    ...     ShardedDataset.from_dataset(dense, shard_size=137))
    >>> female = group(gender="female")
    >>> run = np.arange(100, 900)
    >>> sharded.count(female, run) == GroupMembershipIndex.for_dataset(
    ...     dense).count(female, run)
    True
    """

    def __init__(
        self,
        dataset: ShardedDataset,
        *,
        executor: ShardExecutor | None = None,
        max_cached_prefixes: int | None = None,
    ) -> None:
        if max_cached_prefixes is not None and max_cached_prefixes < 1:
            raise InvalidParameterError(
                f"max_cached_prefixes must be >= 1, got {max_cached_prefixes}"
            )
        self.dataset = dataset
        self.executor = executor if executor is not None else ShardExecutor()
        self._totals: dict[GroupPredicate, np.ndarray] = {}
        self._prefixes = _PrefixCache(
            max_entries=(
                max_cached_prefixes
                if max_cached_prefixes is not None
                else dataset.max_resident_shards
            )
        )
        self._lock = threading.Lock()

    @classmethod
    def for_dataset(cls, dataset: ShardedDataset) -> "ShardedMembershipIndex":
        """The shared index of one sharded dataset (created on first
        use), mirroring ``GroupMembershipIndex.for_dataset`` so oracles
        and platforms over the same dataset share totals and caches.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.data.sharded import ShardedDataset, ShardedMembershipIndex
        >>> from repro.data.synthetic import binary_dataset
        >>> ds = ShardedDataset.from_dataset(
        ...     binary_dataset(100, 5, rng=np.random.default_rng(0)), shard_size=40)
        >>> a = ShardedMembershipIndex.for_dataset(ds)
        >>> a is ShardedMembershipIndex.for_dataset(ds)
        True
        """
        index = dataset.__dict__.get("_membership_index")
        if index is None:
            index = cls(dataset)
            dataset.__dict__["_membership_index"] = index
        return index

    def __len__(self) -> int:
        return len(self.dataset)

    # ------------------------------------------------------------------
    # the sharded substrate
    # ------------------------------------------------------------------
    def shard_totals(self, predicate: GroupPredicate) -> np.ndarray:
        """Cumulative member counts at shard boundaries: ``totals[s]`` =
        members among shards ``[0, s)`` (length ``n_shards + 1``).

        Built once per predicate by a streaming pass over every shard
        (shard-parallel through the executor); afterwards any
        shard-aligned range is answered in O(1) from this table alone.
        """
        with self._lock:
            cached = self._totals.get(predicate)
        if cached is not None:
            return cached
        predicate.validate(self.dataset.schema)
        schema = self.dataset.schema

        def count_shard(shard_index: int) -> int:
            # The hold slot bounds how many chunks threaded workers keep
            # alive at once (load + mask evaluation) to the residency cap.
            with self.dataset.hold_slots:
                chunk = self.dataset.chunk(shard_index)
                return int(predicate_mask(schema, chunk, predicate).sum())

        counts = self.executor.map(count_shard, range(self.dataset.n_shards))
        totals = np.zeros(self.dataset.n_shards + 1, dtype=np.int64)
        np.cumsum(np.asarray(counts, dtype=np.int64), out=totals[1:])
        totals.setflags(write=False)
        with self._lock:
            # A racing build produced identical content; keep the first.
            cached = self._totals.setdefault(predicate, totals)
        return cached

    def _shard_prefix(
        self, predicate: GroupPredicate, shard_index: int
    ) -> np.ndarray:
        """The shard's local prefix-count table (length ``rows + 1``),
        built from its chunk on demand and cached LRU."""
        key = (predicate, shard_index)
        with self._lock:
            cached = self._prefixes.get(key)
        if cached is not None:
            return cached
        chunk = self.dataset.chunk(shard_index)
        mask = predicate_mask(self.dataset.schema, chunk, predicate)
        prefix = np.zeros(len(mask) + 1, dtype=np.int64)
        np.cumsum(mask, out=prefix[1:])
        prefix.setflags(write=False)
        with self._lock:
            raced = self._prefixes.get(key)
            if raced is not None:
                return raced
            self._prefixes.put(key, prefix)
        return prefix

    def _count_run(
        self,
        predicate: GroupPredicate,
        start: int,
        stop: int,
        totals: np.ndarray | None = None,
    ) -> int:
        """Exact member count over the contiguous run ``[start, stop)``:
        totals for whole shards, local prefixes for the (at most two)
        partially covered boundary shards. ``totals`` lets batched
        callers hoist the per-predicate lookup (and its lock) out of
        their per-run loop."""
        if stop <= start:
            return 0
        if start < 0 or stop > len(self.dataset):
            # Same contract as value_rows: out-of-range queries raise
            # instead of silently clamping (the dense index's prefix
            # table would overrun on the same input).
            raise OracleError(
                f"query run [{start}, {stop}) outside dataset "
                f"[0, {len(self.dataset)})"
            )
        size = self.dataset.shard_size
        first = start // size
        last = (stop - 1) // size
        if totals is None:
            totals = self.shard_totals(predicate)
        count = int(totals[last + 1] - totals[first])
        first_base = first * size
        if start > first_base:
            count -= int(self._shard_prefix(predicate, first)[start - first_base])
        last_base = last * size
        _, last_stop = self.dataset.shard_bounds(last)
        if stop < last_stop:
            in_last = int(totals[last + 1] - totals[last])
            count -= in_last - int(
                self._shard_prefix(predicate, last)[stop - last_base]
            )
        return count

    def _scattered_hits(
        self, predicate: GroupPredicate, indices: np.ndarray
    ) -> np.ndarray:
        """Per-index membership of an arbitrary (non-empty) index array,
        resolved shard-by-shard through the executor."""
        check_object_indices(indices, len(self.dataset))
        size = self.dataset.shard_size
        shards = indices // size
        unique_shards = np.unique(shards)
        hits = np.zeros(len(indices), dtype=bool)

        def eval_shard(shard_index: int):
            selector = shards == shard_index
            local = indices[selector] - shard_index * size
            with self.dataset.hold_slots:
                prefix = self._shard_prefix(predicate, int(shard_index))
            return selector, prefix[local + 1] > prefix[local]

        for selector, shard_hits in self.executor.map(
            eval_shard, (int(s) for s in unique_shards)
        ):
            hits[selector] = shard_hits
        return hits

    # ------------------------------------------------------------------
    # the dense-index query surface
    # ------------------------------------------------------------------
    def count(self, predicate: GroupPredicate, indices: np.ndarray) -> int:
        """Number of objects in ``indices`` matching ``predicate``
        (exact — identical to the dense index).

        Examples
        --------
        >>> import numpy as np
        >>> from repro.data.groups import group
        >>> from repro.data.sharded import ShardedDataset, ShardedMembershipIndex
        >>> from repro.data.synthetic import binary_dataset
        >>> ds = ShardedDataset.from_dataset(
        ...     binary_dataset(100, 100, rng=np.random.default_rng(0)),
        ...     shard_size=32)
        >>> ShardedMembershipIndex(ds).count(group(gender="female"),
        ...                                  np.arange(10, 90))
        80
        """
        indices = np.asarray(indices, dtype=np.int64)
        run = as_run(indices)
        if run is not None:
            return self._count_run(predicate, run[0], run[1])
        if len(indices) == 0:
            return 0
        return int(self._scattered_hits(predicate, indices).sum())

    def any_match(
        self, predicate: GroupPredicate, indices: np.ndarray, *, key=None
    ) -> bool:
        """Does ``indices`` contain at least one member of ``predicate``?
        ``key`` (an :class:`~repro.engine.requests.IndexKey`) skips run
        re-detection exactly as on the dense index."""
        indices = np.asarray(indices, dtype=np.int64)
        if key is not None:
            if key.payload is None:
                return self._count_run(predicate, key.start, key.stop) > 0
            if len(indices) == 0:
                return False
            return bool(self._scattered_hits(predicate, indices).any())
        run = as_run(indices)
        if run is not None:
            return self._count_run(predicate, run[0], run[1]) > 0
        if len(indices) == 0:
            return False
        return bool(self._scattered_hits(predicate, indices).any())

    def matches(self, predicate: GroupPredicate, index: int) -> bool:
        """Ground-truth membership of a single object."""
        index = int(index)
        check_object_indices(np.asarray([index], dtype=np.int64), len(self.dataset))
        shard = self.dataset.shard_of(index)
        prefix = self._shard_prefix(predicate, shard)
        local = index - shard * self.dataset.shard_size
        return bool(prefix[local + 1] > prefix[local])

    def any_match_runs(
        self, predicate: GroupPredicate, starts: np.ndarray, stops: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`any_match` over many runs of one predicate."""
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        totals = self.shard_totals(predicate)
        return np.array(
            [
                self._count_run(predicate, int(start), int(stop), totals) > 0
                for start, stop in zip(starts, stops)
            ],
            dtype=bool,
        )

    def any_match_batch(
        self,
        queries: Sequence[tuple[np.ndarray, GroupPredicate]],
        *,
        keys: "Sequence | None" = None,
    ) -> list[bool]:
        """Answer many set queries; same grouping semantics (and
        identical answers) as the dense ``any_match_batch``. Run-shaped
        queries split/merge at shard boundaries; scattered queries of
        one predicate concatenate into a single shard-parallel gather."""
        answers = [False] * len(queries)
        by_predicate: dict[GroupPredicate, list[int]] = {}
        for position, (_, predicate) in enumerate(queries):
            by_predicate.setdefault(predicate, []).append(position)
        for predicate, positions in by_predicate.items():
            totals = self.shard_totals(predicate)
            scattered: list[int] = []
            for position in positions:
                indices = queries[position][0]
                if keys is not None:
                    key = keys[position]
                    if key.payload is None:
                        if key.stop > key.start:
                            answers[position] = (
                                self._count_run(
                                    predicate, key.start, key.stop, totals
                                )
                                > 0
                            )
                        continue
                    if len(indices):
                        scattered.append(position)
                    continue
                if len(indices) == 0:
                    continue
                run = as_run(indices)
                if run is not None:
                    answers[position] = (
                        self._count_run(predicate, run[0], run[1], totals) > 0
                    )
                else:
                    scattered.append(position)
            if scattered:
                arrays = [
                    np.asarray(queries[position][0], dtype=np.int64)
                    for position in scattered
                ]
                lengths = np.array([len(a) for a in arrays])
                hits = self._scattered_hits(predicate, np.concatenate(arrays))
                for position, hit in zip(
                    scattered, segmented_any(hits, lengths)
                ):
                    answers[position] = bool(hit)
        return answers

    # ------------------------------------------------------------------
    # point labels
    # ------------------------------------------------------------------
    def value_rows(self, indices: Sequence[int]) -> list[dict[str, str]]:
        """Ground-truth ``{attribute: value}`` rows for many objects,
        decoded shard by shard; bounds-checked like the dense index."""
        if len(indices) == 0:
            return []
        index_array = np.asarray(indices, dtype=np.int64)
        check_object_indices(index_array, len(self.dataset))
        size = self.dataset.shard_size
        shards = index_array // size
        codes = np.empty(
            (len(index_array), self.dataset.schema.n_attributes), dtype=np.int16
        )
        for shard_index in np.unique(shards):
            selector = shards == shard_index
            local = index_array[selector] - int(shard_index) * size
            codes[selector] = self.dataset.chunk(int(shard_index))[local]
        return decode_value_rows(self.dataset.schema, codes)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_report(self) -> dict[str, int]:
        """Structural memory accounting of the sharded path.

        ``peak_tracked_bytes`` (resident chunks + prefix tables + totals,
        at their high-water marks) is what ``benchmarks/bench_shards.py``
        compares against :func:`dense_index_bytes`; ``cap_bytes`` is the
        configuration-implied ceiling it can never exceed.
        """
        stats = self.dataset.stats
        row_bytes = 2 * self.dataset.schema.n_attributes
        # LRU-resident chunks plus the chunks shard-parallel workers may
        # hold outside the table (bounded by the dataset's hold_slots
        # semaphore to the same count): worst case 2 × the residency cap.
        chunk_cap = 2 * self.dataset.max_resident_shards * (
            self.dataset.shard_size * row_bytes
        )
        prefix_cap = self._prefixes.max_entries * 8 * (self.dataset.shard_size + 1)
        totals_bytes = sum(t.nbytes for t in self._totals.values())
        return {
            "peak_chunk_bytes": stats.peak_resident_bytes,
            "peak_prefix_bytes": self._prefixes.peak_resident_bytes,
            "totals_bytes": totals_bytes,
            "peak_tracked_bytes": (
                stats.peak_resident_bytes
                + self._prefixes.peak_resident_bytes
                + totals_bytes
            ),
            "cap_bytes": chunk_cap
            + prefix_cap
            + (self.dataset.n_shards + 1) * 8 * max(len(self._totals), 1),
            "chunk_loads": stats.loads,
            "chunk_evictions": stats.evictions,
            "prefix_builds": self._prefixes.builds,
            "prefix_evictions": self._prefixes.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"ShardedMembershipIndex({self.dataset.name!r}, "
            f"N={len(self.dataset)}, shards={self.dataset.n_shards}, "
            f"indexed_predicates={len(self._totals)})"
        )


def dense_index_bytes(n_objects: int, n_attributes: int, n_predicates: int) -> int:
    """Bytes the dense path needs resident for the same workload: the
    ``(N, d)`` ``int16`` code matrix plus, per indexed predicate, one
    boolean membership column and one ``int64`` prefix table.

    The yardstick ``benchmarks/bench_shards.py`` measures the sharded
    path's tracked peak against.

    Examples
    --------
    >>> dense_index_bytes(1_000_000, 1, 1)  # ~11 MB at N=1M, one predicate
    11000008
    """
    codes = n_objects * n_attributes * 2
    per_predicate = n_objects * 1 + 8 * (n_objects + 1)
    return codes + n_predicates * per_predicate
