"""Sharded, out-of-core datasets and the membership index over them.

The dense :class:`~repro.data.membership.GroupMembershipIndex` keeps one
boolean column plus one prefix-count table per predicate fully resident,
so the largest auditable dataset is whatever fits in RAM. This module
removes that ceiling: a :class:`ShardedDataset` partitions the object
space into fixed-size **shards** whose columnar code chunks are loaded
lazily (from a memory map, a generator, or any loader callable) and
evicted LRU under a resident-shard cap, and a
:class:`ShardedMembershipIndex` answers the same ``count`` /
``any_match`` / batched-gather API as the dense index by combining

* **cross-shard totals** — one ``int64`` per shard per predicate
  (``totals[s]`` = members among shards ``[0, s)``), built in a single
  **fused** streaming pass (:mod:`repro.data.kernels`) that evaluates
  every requested predicate and its local prefix table off one chunk
  touch, and from then on answering every *shard-aligned* run in O(1)
  without touching a single chunk; and
* **prefix tables** — when the cache budget covers a predicate's full
  shard count, the fused build splices its per-shard tables into one
  *pinned* global prefix table (the exact array the dense index uses,
  at the same bytes) and every later query on that predicate answers
  lock-free at dense-index speed; otherwise boundary tables build on
  demand for the (at most two) *partially* covered shards of a run and
  cache LRU under an entry-count budget shared with the pinned tier
  (each entry is at most ``8·(shard_size+1)`` bytes, so the byte
  footprint is bounded too).

A contiguous-run query spanning many shards therefore splits at shard
boundaries — interior shards answer from the totals, boundary shards
from their local prefix tables — and the partial counts re-merge into
the exact dense answer. Scattered index arrays group by owning shard and
resolve shard-parallel through a :class:`ShardExecutor`, whose
``processes`` mode runs the picklable kernels of
:mod:`repro.data.kernels` on a :class:`~concurrent.futures.\
ProcessPoolExecutor` — workers materialize chunks from the dataset's
:class:`~repro.data.kernels.ChunkSource` (memory map or deterministic
generator) on their own side, so chunk arrays never cross the pickle
boundary.

Everything is *exact*, so oracles answering through a sharded index are
bit-identical to the dense path: same verdicts, same task counts, same
rng streams (pinned by ``tests/crowd/test_sharded_equivalence.py``, and
across executor modes by ``tests/data/test_kernel_equivalence.py``).
Peak memory is structurally bounded by ``max_resident_shards`` chunks
plus the prefix-table budget — ``benchmarks/bench_shards.py`` asserts it
while auditing datasets 10× larger than the dense index could hold.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import LabeledDataset
from repro.data.groups import GroupPredicate
from repro.data.kernels import (
    CallableChunkSource,
    ChunkSource,
    MemmapChunkSource,
    fused_prefix_tables,
    fused_source_pass,
    scattered_hits_pass,
)
from repro.data.membership import (
    as_run,
    check_object_indices,
    decode_value_rows,
    segmented_any,
)
from repro.data.schema import Schema
from repro.errors import InvalidParameterError, OracleError, ShardExecutionError

__all__ = [
    "ShardStats",
    "ShardExecutor",
    "ShardedDataset",
    "ShardedMembershipIndex",
    "dense_index_bytes",
]


def _run_fused_task(task: tuple) -> tuple[list[int], list[np.ndarray] | None]:
    """Unpack one fused-build work item (module-level so it pickles)."""
    return fused_source_pass(*task)


def _run_scattered_task(task: tuple) -> np.ndarray:
    """Unpack one scattered-gather work item (module-level so it pickles)."""
    return scattered_hits_pass(*task)


def _noop(item: int) -> int:
    """Round-trip payload for ShardExecutor.warm (module-level so it
    pickles into pool workers)."""
    return item


@dataclass
class ShardStats:
    """Residency accounting of one :class:`ShardedDataset`.

    The structural memory guarantee of the sharded path lives here:
    ``peak_resident_bytes`` can never exceed ``max_resident_shards ×
    bytes-per-chunk``, whatever the dataset size — the number
    ``benchmarks/bench_shards.py`` asserts against the dense index's
    requirement. Counters track the *calling* process only: pool workers
    of a ``processes`` executor materialize their chunks on their own
    side (bounded to one chunk per worker at a time) and never touch
    this ledger.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.sharded import ShardedDataset
    >>> dense = binary_dataset(100, 5, rng=np.random.default_rng(0))
    >>> sharded = ShardedDataset.from_dataset(dense, shard_size=30,
    ...                                       max_resident_shards=2)
    >>> _ = [sharded.chunk(s) for s in range(sharded.n_shards)]
    >>> sharded.stats.loads, sharded.stats.peak_resident_shards
    (4, 2)
    """

    #: chunk materializations (a regenerated evicted shard counts again)
    loads: int = 0
    #: chunks dropped to respect ``max_resident_shards``
    evictions: int = 0
    #: chunks resident right now / the lifetime high-water mark
    resident_shards: int = 0
    peak_resident_shards: int = 0
    #: bytes of resident chunks right now / the lifetime high-water mark
    resident_bytes: int = 0
    peak_resident_bytes: int = 0


class ShardExecutor:
    """Maps a function over shards: serially, on threads, or on processes.

    The executor is the parallelism seam of the sharded path: fused
    totals builds and scattered-batch gathers hand it one work item per
    shard. Three modes, validated at construction:

    * ``"serial"`` (default) — runs in the calling thread; exact answers
      need no concurrency.
    * ``"threads"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`;
      pays off when chunk loading is IO-bound or mask evaluation
      dominates (NumPy releases the GIL for large chunks).
    * ``"processes"`` — a :class:`~concurrent.futures.\
ProcessPoolExecutor` running the picklable kernels of
      :mod:`repro.data.kernels`; sidesteps the GIL entirely. Work items
      carry a :class:`~repro.data.kernels.ChunkSource` (never chunk
      arrays), so each worker materializes rows from the shard file or
      generator on its own side. A worker killed mid-map surfaces as
      :class:`~repro.errors.ShardExecutionError` (the broken pool is
      discarded); a retry on a fresh executor replays deterministically.

    Results always come back in input order, so answers are identical in
    every mode — pinned by ``tests/data/test_kernel_equivalence.py``.

    Examples
    --------
    >>> from repro.data.sharded import ShardExecutor
    >>> with ShardExecutor(mode="threads", max_workers=2) as executor:
    ...     executor.map(lambda s: s * s, range(4))
    [0, 1, 4, 9]
    """

    _MODES = ("serial", "threads", "processes")

    def __init__(
        self, *, mode: str = "serial", max_workers: int | None = None
    ) -> None:
        if mode not in self._MODES:
            raise InvalidParameterError(
                f"executor mode must be one of {'/'.join(self._MODES)}, "
                f"got {mode!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.mode = mode
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    @property
    def uses_processes(self) -> bool:
        """``True`` for ``mode="processes"`` — work items must then be
        picklable (module-level kernels + :class:`~repro.data.kernels.\
ChunkSource` specs, no closures, no chunk arrays)."""
        return self.mode == "processes"

    @property
    def effective_workers(self) -> int:
        """How many pool workers may hold a chunk concurrently (0 in
        serial mode) — the worker term of
        :meth:`ShardedMembershipIndex.memory_report`'s structural cap."""
        if self.mode == "serial":
            return 0
        return self.max_workers if self.max_workers else (os.cpu_count() or 1)

    def _ensure_pool(self) -> ThreadPoolExecutor | ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                if self.mode == "threads":
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers, thread_name_prefix="shard"
                    )
                else:
                    self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def map(self, fn: Callable, items) -> list:
        """``[fn(item) for item in items]``, possibly shard-parallel;
        result order always matches input order. Single-item (and
        serial-mode) maps run in the calling thread."""
        items = list(items)
        if self.mode == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        try:
            return list(pool.map(fn, items))
        except BrokenProcessPool as error:
            # A worker died (OOM killer, SIGKILL, hard crash). Discard
            # the broken pool so this executor fails fast instead of
            # hanging, and surface a library error callers can catch;
            # rebuilding on a fresh executor is bit-identical because
            # every kernel is deterministic.
            with self._pool_lock:
                if self._pool is pool:
                    self._pool = None
            pool.shutdown(wait=False)
            raise ShardExecutionError(
                "a shard pool worker died mid-map; the broken pool was "
                "discarded — retry on a fresh ShardExecutor to rebuild "
                "(results are deterministic, so the retry is bit-identical)"
            ) from error

    def warm(self) -> None:
        """Spin the pool up ahead of the first real map — in
        ``processes`` mode this forks the workers and round-trips one
        no-op through each, so build latency measurements (and
        latency-sensitive callers) don't pay one-time pool construction.
        No-op in serial mode; idempotent."""
        if self.mode == "serial":
            return
        pool = self._ensure_pool()
        width = self.effective_workers
        list(pool.map(_noop, range(max(2, width))))

    def close(self) -> None:
        """Shut the pool down (idempotent; serial mode is a no-op)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ShardedDataset:
    """A dataset partitioned into fixed-size, lazily materialized shards.

    Rows ``[s·shard_size, (s+1)·shard_size)`` form shard ``s``; the last
    shard may be shorter. Chunks — ``(rows, d)`` ``int16`` code matrices
    — are produced by ``loader(shard_index, start, stop)`` on first
    access, kept in an LRU table capped at ``max_resident_shards``, and
    transparently regenerated after eviction, so the full ``(N, d)``
    matrix never exists in memory. The loader must be **deterministic**:
    an evicted shard that reloads with different content would break the
    exactness guarantees of every index built on top.

    Use the constructors instead of wiring a loader by hand:
    :meth:`from_dataset` (shard an in-RAM :class:`~repro.data.dataset.\
LabeledDataset` — equivalence tests and small jobs),
    :meth:`from_generator` (compute chunks on demand — synthetic
    benchmarks at any N), and :meth:`from_memmap` (``.npy`` file via
    ``numpy`` memory mapping — on-disk corpora). The latter two also
    record a picklable :class:`~repro.data.kernels.ChunkSource`, which
    is what a ``processes`` :class:`ShardExecutor` ships to its pool
    workers; :meth:`from_dataset` holds its rows only in this process's
    RAM, so it cannot drive a process pool (validated at construction).

    ``executor`` selects how the shared membership index
    (:meth:`ShardedMembershipIndex.for_dataset`, and through it every
    oracle/session/service over this dataset) parallelizes its builds
    and gathers; the default is serial.

    The class mirrors the read-only surface oracles need
    (``schema`` / ``__len__`` / ``value_row``) so
    :class:`~repro.crowd.oracle.GroundTruthOracle`,
    :class:`~repro.crowd.oracle.FlakyOracle`, and
    :class:`~repro.crowd.platform.CrowdPlatform` accept it wherever they
    accept a dense dataset.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.sharded import ShardedDataset
    >>> dense = binary_dataset(1_000, 30, rng=np.random.default_rng(0))
    >>> sharded = ShardedDataset.from_dataset(dense, shard_size=256)
    >>> len(sharded), sharded.n_shards
    (1000, 4)
    >>> sharded.value_row(17) == dense.value_row(17)
    True
    """

    def __init__(
        self,
        schema: Schema,
        n_objects: int,
        shard_size: int,
        loader: Callable[[int, int, int], np.ndarray] | None = None,
        *,
        chunk_source: ChunkSource | None = None,
        executor: ShardExecutor | None = None,
        max_resident_shards: int = 4,
        name: str = "sharded-dataset",
    ) -> None:
        if n_objects < 0:
            raise InvalidParameterError(
                f"n_objects must be non-negative, got {n_objects}"
            )
        if shard_size < 1:
            raise InvalidParameterError(
                f"shard_size must be >= 1, got {shard_size}"
            )
        if max_resident_shards < 1:
            raise InvalidParameterError(
                f"max_resident_shards must be >= 1, got {max_resident_shards}"
            )
        if loader is None and chunk_source is None:
            raise InvalidParameterError(
                "a ShardedDataset needs a loader or a chunk_source"
            )
        if executor is not None and executor.uses_processes:
            if chunk_source is None:
                raise InvalidParameterError(
                    "a processes-mode ShardExecutor needs a picklable chunk "
                    "source (use ShardedDataset.from_memmap or from_generator "
                    "with a module-level generate function); from_dataset "
                    "chunks live only in this process's RAM"
                )
            try:
                pickle.dumps(chunk_source)
            except Exception as error:
                raise InvalidParameterError(
                    f"chunk source {chunk_source!r} does not pickle "
                    f"({error}); processes-mode workers re-create chunks on "
                    "their own side, so the source must be picklable — use a "
                    "module-level generate function or functools.partial "
                    "over one"
                ) from error
        self.schema = schema
        self.name = name
        self.shard_size = int(shard_size)
        self.max_resident_shards = int(max_resident_shards)
        self.chunk_source = chunk_source
        self.executor = executor
        self._n_objects = int(n_objects)
        self._loader = loader if loader is not None else chunk_source.chunk
        self.stats = ShardStats()
        self._chunks: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        #: Bounds how many chunks shard-parallel workers may *hold*
        #: (load + compute over) at once, so threaded execution cannot
        #: materialize more than ``max_resident_shards`` chunks beyond
        #: the LRU table — the worst-case footprint stays at twice the
        #: residency cap, which is what ``memory_report`` budgets for.
        self.hold_slots = threading.BoundedSemaphore(self.max_resident_shards)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(
        cls,
        dataset: LabeledDataset,
        shard_size: int,
        *,
        executor: ShardExecutor | None = None,
        max_resident_shards: int = 4,
        name: str | None = None,
    ) -> "ShardedDataset":
        """Shard an in-RAM dense dataset (chunks are copies of its code
        slices, so residency accounting stays honest). The sharded view
        holds identical content — the substrate of every
        dense-vs-sharded equivalence test. In-RAM rows cannot feed a
        process pool, so a ``processes`` executor is rejected here.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.data.synthetic import binary_dataset
        >>> dense = binary_dataset(100, 7, rng=np.random.default_rng(3))
        >>> sharded = ShardedDataset.from_dataset(dense, shard_size=33)
        >>> [sharded.shard_bounds(s) for s in range(sharded.n_shards)]
        [(0, 33), (33, 66), (66, 99), (99, 100)]
        """
        codes = dataset.codes

        def load(shard_index: int, start: int, stop: int) -> np.ndarray:
            return np.array(codes[start:stop], dtype=np.int16)

        return cls(
            dataset.schema,
            len(dataset),
            shard_size,
            load,
            executor=executor,
            max_resident_shards=max_resident_shards,
            name=name or f"{dataset.name}[sharded:{shard_size}]",
        )

    @classmethod
    def from_generator(
        cls,
        schema: Schema,
        n_objects: int,
        shard_size: int,
        generate: Callable[[int, int, int], np.ndarray],
        *,
        executor: ShardExecutor | None = None,
        max_resident_shards: int = 4,
        name: str = "generated-sharded-dataset",
    ) -> "ShardedDataset":
        """A dataset whose chunks are computed on demand.

        ``generate(shard_index, start, stop)`` must deterministically
        return the ``(stop-start, d)`` code chunk of rows ``[start,
        stop)`` — seed a per-shard rng from the shard index so a
        regenerated chunk is identical to the evicted one. This is how
        the benchmarks audit 10M-row datasets that never materialize.
        With a ``processes`` executor the generator also runs inside
        pool workers, so it must pickle (a module-level function or
        :func:`functools.partial` over one — checked at construction).

        Examples
        --------
        >>> import numpy as np
        >>> from repro.data.schema import Schema
        >>> schema = Schema.from_dict({"gender": ["male", "female"]})
        >>> def chunk(shard, start, stop):
        ...     rng = np.random.default_rng([7, shard])
        ...     return (rng.random((stop - start, 1)) < 0.01).astype(np.int16)
        >>> ds = ShardedDataset.from_generator(schema, 10_000, 2_500, chunk)
        >>> ds.n_shards
        4
        """
        return cls(
            schema,
            n_objects,
            shard_size,
            chunk_source=CallableChunkSource(generate),
            executor=executor,
            max_resident_shards=max_resident_shards,
            name=name,
        )

    @classmethod
    def from_memmap(
        cls,
        schema: Schema,
        path,
        shard_size: int,
        *,
        executor: ShardExecutor | None = None,
        max_resident_shards: int = 4,
        name: str | None = None,
    ) -> "ShardedDataset":
        """A dataset backed by an on-disk ``.npy`` code matrix.

        The file (written with ``np.save(path, codes)``) is opened with
        ``mmap_mode="r"``, so only the chunk slices a query touches are
        ever paged in and copied; evicted chunks fall back to the page
        cache, not the Python heap. With a ``processes`` executor only
        the *path* crosses the pickle boundary — each pool worker opens
        its own map and slices zero-copy chunk views from it, which is
        the substrate of the benchmark's 100M-row tier.

        Examples
        --------
        >>> import numpy as np, tempfile, os
        >>> from repro.data.schema import Schema
        >>> schema = Schema.from_dict({"gender": ["male", "female"]})
        >>> path = os.path.join(tempfile.mkdtemp(), "codes.npy")
        >>> np.save(path, np.zeros((1_000, 1), dtype=np.int16))
        >>> ds = ShardedDataset.from_memmap(schema, path, shard_size=400)
        >>> len(ds), ds.n_shards
        (1000, 3)
        """
        mapped = np.load(path, mmap_mode="r")
        if mapped.ndim != 2 or mapped.shape[1] != schema.n_attributes:
            raise InvalidParameterError(
                f"memmapped codes at {path!r} have shape {mapped.shape}, "
                f"need (N, {schema.n_attributes})"
            )

        def load(shard_index: int, start: int, stop: int) -> np.ndarray:
            return np.array(mapped[start:stop], dtype=np.int16)

        return cls(
            schema,
            mapped.shape[0],
            shard_size,
            load,
            chunk_source=MemmapChunkSource(path=os.fspath(path)),
            executor=executor,
            max_resident_shards=max_resident_shards,
            name=name or f"memmap({path})",
        )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_objects

    @property
    def n_objects(self) -> int:
        """Dataset size ``N`` (rows across all shards)."""
        return self._n_objects

    @property
    def n_shards(self) -> int:
        """Number of shards, ``ceil(N / shard_size)`` (0 when empty)."""
        return -(-self._n_objects // self.shard_size)

    def shard_bounds(self, shard_index: int) -> tuple[int, int]:
        """The global row range ``[start, stop)`` of one shard."""
        if not 0 <= shard_index < self.n_shards:
            raise InvalidParameterError(
                f"shard index {shard_index} out of range [0, {self.n_shards})"
            )
        start = shard_index * self.shard_size
        return start, min(start + self.shard_size, self._n_objects)

    def shard_of(self, index: int) -> int:
        """The shard owning global row ``index``."""
        return int(index) // self.shard_size

    # ------------------------------------------------------------------
    # chunk residency
    # ------------------------------------------------------------------
    def chunk(self, shard_index: int) -> np.ndarray:
        """The shard's resident ``(rows, d)`` code chunk, loading (and
        evicting the least recently used shard) as needed. Thread-safe;
        returned arrays are read-only."""
        with self._lock:
            cached = self._chunks.get(shard_index)
            if cached is not None:
                self._chunks.move_to_end(shard_index)
                return cached
        start, stop = self.shard_bounds(shard_index)
        chunk = np.asarray(self._loader(shard_index, start, stop), dtype=np.int16)
        if chunk.ndim != 2 or chunk.shape != (stop - start, self.schema.n_attributes):
            raise InvalidParameterError(
                f"loader returned shape {chunk.shape} for shard {shard_index}, "
                f"expected ({stop - start}, {self.schema.n_attributes})"
            )
        for j, attribute in enumerate(self.schema):
            column = chunk[:, j]
            if column.size and (
                column.min() < 0 or column.max() >= attribute.cardinality
            ):
                raise InvalidParameterError(
                    f"shard {shard_index} codes for attribute "
                    f"{attribute.name!r} outside [0, {attribute.cardinality})"
                )
        chunk.setflags(write=False)
        with self._lock:
            raced = self._chunks.get(shard_index)
            if raced is not None:
                # Another thread loaded it first; this thread's loader
                # call still materialized a chunk, so it still counts.
                self.stats.loads += 1
                self._chunks.move_to_end(shard_index)
                return raced
            self.stats.loads += 1
            self._chunks[shard_index] = chunk
            self.stats.resident_bytes += chunk.nbytes
            self.stats.resident_shards += 1
            while len(self._chunks) > self.max_resident_shards:
                _, evicted = self._chunks.popitem(last=False)
                self.stats.evictions += 1
                self.stats.resident_bytes -= evicted.nbytes
                self.stats.resident_shards -= 1
            self.stats.peak_resident_shards = max(
                self.stats.peak_resident_shards, self.stats.resident_shards
            )
            self.stats.peak_resident_bytes = max(
                self.stats.peak_resident_bytes, self.stats.resident_bytes
            )
        return chunk

    # ------------------------------------------------------------------
    # row access (the oracle surface)
    # ------------------------------------------------------------------
    def value_row(self, index: int) -> dict[str, str]:
        """Ground-truth ``{attribute: value}`` mapping of one object,
        decoded from its owning shard's chunk."""
        index = int(index)
        if not 0 <= index < self._n_objects:
            raise OracleError(
                f"object index {index} out of range [0, {self._n_objects})"
            )
        shard = self.shard_of(index)
        row = self.chunk(shard)[index - shard * self.shard_size]
        return {
            attribute.name: attribute.value_of(int(row[j]))
            for j, attribute in enumerate(self.schema)
        }

    def describe(self) -> str:
        """A short summary used by examples and reports."""
        return (
            f"{self.name}: N={self._n_objects}, shards={self.n_shards}"
            f"×{self.shard_size}, resident≤{self.max_resident_shards}, "
            f"attributes={list(self.schema.names)}"
        )

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"ShardedDataset(name={self.name!r}, N={self._n_objects}, "
            f"shards={self.n_shards}x{self.shard_size})"
        )


@dataclass
class _PrefixCache:
    """Entry-capped store of prefix tables (internal).

    Two tiers sharing one ``max_entries`` budget (the unit is one
    shard-sized ``int32`` table of at most ``4·(shard_size+1)`` bytes,
    so the byte footprint is bounded by ``max_entries`` times that plus
    a two-entry LRU floor — the ``prefix_cap`` term of
    :meth:`ShardedMembershipIndex.memory_report`):

    * ``pinned`` — whole-predicate **global** prefix tables (length
      ``N + 1``, global cumulative counts) assembled by the fused build
      when the predicate's full ``n_shards`` tables fit the remaining
      budget. A pinned predicate charges ``n_shards`` entries — the same
      bytes as its per-shard tables — and answers *every* run, scatter,
      and point query in dense-index time, read lock-free on the hot
      path (the dict is only ever grown, under the index lock).
    * ``entries`` — the on-demand per-(predicate, shard) LRU for
      boundary shards of predicates too large to pin. Eviction triggers
      on total entry count (pinned cost + LRU), but the LRU always
      keeps a floor of two live entries — a run touches at most two
      boundary shards, so the floor stops fully-pinned budgets from
      starving unpinned predicates into a rebuild per query. Byte
      counters are tracked for reporting, not for eviction."""

    max_entries: int
    pinned: "dict[GroupPredicate, np.ndarray]" = field(default_factory=dict)
    pinned_entry_cost: int = 0
    entries: "OrderedDict[tuple[GroupPredicate, int], np.ndarray]" = field(
        default_factory=OrderedDict
    )
    resident_bytes: int = 0
    peak_resident_bytes: int = 0
    builds: int = 0
    evictions: int = 0

    def get(self, key) -> np.ndarray | None:
        cached = self.entries.get(key)
        if cached is not None:
            self.entries.move_to_end(key)
        return cached

    def can_pin(self, n_entries: int) -> bool:
        """Whether ``n_entries`` more shard-table-equivalents of pinned
        budget are available."""
        return self.pinned_entry_cost + n_entries <= self.max_entries

    def pin(self, predicate, global_prefix: np.ndarray, cost: int) -> None:
        """Pin one predicate's global table (caller checked
        :meth:`can_pin` with the same ``cost``)."""
        if predicate in self.pinned:
            return
        self.builds += 1
        self.pinned[predicate] = global_prefix
        self.pinned_entry_cost += cost
        self.resident_bytes += global_prefix.nbytes
        self._shrink()

    def put(self, key, prefix: np.ndarray) -> None:
        if key in self.entries:
            return
        self.builds += 1
        self.entries[key] = prefix
        self.resident_bytes += prefix.nbytes
        self._shrink()

    def _shrink(self) -> None:
        # The LRU keeps a small floor of entries even when pinned tables
        # consume the whole budget: a run has at most two boundary
        # shards, so two live slots are what stops an unpinned
        # predicate's boundary queries from rebuilding (chunk load +
        # mask + cumsum) on every call. The floor is accounted for in
        # ``memory_report``'s ``prefix_cap`` term.
        floor = min(2, self.max_entries)
        keep = max(self.max_entries - self.pinned_entry_cost, floor)
        while len(self.entries) > keep:
            _, evicted = self.entries.popitem(last=False)
            self.evictions += 1
            self.resident_bytes -= evicted.nbytes
        self.peak_resident_bytes = max(
            self.peak_resident_bytes, self.resident_bytes
        )


class ShardedMembershipIndex:
    """The out-of-core answering substrate: dense-index API, sharded spine.

    Exposes the same query surface as
    :class:`~repro.data.membership.GroupMembershipIndex` —
    :meth:`count`, :meth:`any_match`, :meth:`any_match_runs`,
    :meth:`any_match_batch`, :meth:`matches`, :meth:`value_rows` — with
    identical (exact) answers, so every oracle, platform, session, and
    service runs unmodified over it. Internally a query splits at shard
    boundaries: interior shards answer from the cross-shard totals
    (built by one fused streaming pass per *set* of predicates — each
    chunk is touched once however many predicates need totals), boundary
    shards from their local prefix tables (pinned by the fused build
    when they fit the cache budget, else built on demand and LRU-capped),
    and the partial counts merge. Shard-aligned runs never load a chunk
    at all.

    Parameters
    ----------
    dataset:
        The :class:`ShardedDataset` to answer over.
    executor:
        The :class:`ShardExecutor` for fused builds and scattered-batch
        gathers; defaults to the dataset's executor, else serial
        (answers are identical in every mode). A ``processes`` executor
        requires the dataset to carry a picklable
        :class:`~repro.data.kernels.ChunkSource`.
    max_cached_prefixes:
        Entry budget shared by pinned and LRU prefix tables (each ≤
        ``8·(shard_size+1)`` bytes). Defaults to the dataset's
        ``max_resident_shards``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.groups import group
    >>> from repro.data.membership import GroupMembershipIndex
    >>> from repro.data.sharded import ShardedDataset, ShardedMembershipIndex
    >>> from repro.data.synthetic import binary_dataset
    >>> dense = binary_dataset(1_000, 30, rng=np.random.default_rng(0))
    >>> sharded = ShardedMembershipIndex.for_dataset(
    ...     ShardedDataset.from_dataset(dense, shard_size=137))
    >>> female = group(gender="female")
    >>> run = np.arange(100, 900)
    >>> sharded.count(female, run) == GroupMembershipIndex.for_dataset(
    ...     dense).count(female, run)
    True
    """

    def __init__(
        self,
        dataset: ShardedDataset,
        *,
        executor: ShardExecutor | None = None,
        max_cached_prefixes: int | None = None,
    ) -> None:
        if max_cached_prefixes is not None and max_cached_prefixes < 1:
            raise InvalidParameterError(
                f"max_cached_prefixes must be >= 1, got {max_cached_prefixes}"
            )
        if executor is None:
            executor = dataset.executor
        if executor is not None and executor.uses_processes:
            if dataset.chunk_source is None:
                raise InvalidParameterError(
                    "a processes-mode ShardExecutor needs a dataset with a "
                    "picklable chunk source (from_memmap / from_generator); "
                    f"{dataset.name!r} has none"
                )
        self.dataset = dataset
        self.executor = executor if executor is not None else ShardExecutor()
        self._totals: dict[GroupPredicate, np.ndarray] = {}
        self._prefixes = _PrefixCache(
            max_entries=(
                max_cached_prefixes
                if max_cached_prefixes is not None
                else dataset.max_resident_shards
            )
        )
        self._lock = threading.Lock()

    @classmethod
    def for_dataset(cls, dataset: ShardedDataset) -> "ShardedMembershipIndex":
        """The shared index of one sharded dataset (created on first
        use), mirroring ``GroupMembershipIndex.for_dataset`` so oracles
        and platforms over the same dataset share totals and caches. The
        index inherits the dataset's executor, which is how sessions and
        services over a ``processes``-configured dataset parallelize
        transparently.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.data.sharded import ShardedDataset, ShardedMembershipIndex
        >>> from repro.data.synthetic import binary_dataset
        >>> ds = ShardedDataset.from_dataset(
        ...     binary_dataset(100, 5, rng=np.random.default_rng(0)), shard_size=40)
        >>> a = ShardedMembershipIndex.for_dataset(ds)
        >>> a is ShardedMembershipIndex.for_dataset(ds)
        True
        """
        index = dataset.__dict__.get("_membership_index")
        if index is None:
            index = cls(dataset)
            dataset.__dict__["_membership_index"] = index
        return index

    def __len__(self) -> int:
        return len(self.dataset)

    # ------------------------------------------------------------------
    # the sharded substrate
    # ------------------------------------------------------------------
    def build_totals(self, predicates: Sequence[GroupPredicate]) -> None:
        """Build cross-shard totals for every listed predicate that
        lacks them, in **one** fused streaming pass: each chunk is
        materialized once (shard-parallel through the executor) and
        every missing predicate's mask, member count, and local prefix
        table come off that single touch. When the whole predicate's
        table set fits the prefix budget the tables are pinned, so later
        boundary queries answer lock-free without ever reloading a
        chunk.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.data.groups import group
        >>> from repro.data.sharded import ShardedDataset, ShardedMembershipIndex
        >>> from repro.data.synthetic import binary_dataset
        >>> ds = ShardedDataset.from_dataset(
        ...     binary_dataset(100, 5, rng=np.random.default_rng(0)), shard_size=25)
        >>> index = ShardedMembershipIndex(ds)
        >>> index.build_totals([group(gender="female"), group(gender="male")])
        >>> ds.stats.loads  # four shards, one fused pass for BOTH predicates
        4
        """
        missing: list[GroupPredicate] = []
        for predicate in predicates:
            if predicate not in self._totals and predicate not in missing:
                missing.append(predicate)
        if not missing:
            return
        schema = self.dataset.schema
        for predicate in missing:
            predicate.validate(schema)
        n_shards = self.dataset.n_shards
        # Ship tables back only when they can all be pinned: otherwise
        # most would be evicted on arrival (and, under a process pool,
        # pickled across the boundary for nothing).
        # Pinned global tables are int32 (counts are bounded by N), so
        # pinning is only well-defined below the int32 ceiling — far
        # beyond any dataset the sharded tier targets.
        pinnable = len(self.dataset) < 2**31 - 1
        with self._lock:
            want_tables = pinnable and self._prefixes.can_pin(
                len(missing) * n_shards
            )

        if self.executor.uses_processes and n_shards > 1:
            source = self.dataset.chunk_source
            if source is None:
                raise InvalidParameterError(
                    "processes-mode builds need a dataset chunk source "
                    "(from_memmap / from_generator)"
                )
            tasks = [
                (source, schema, s, *self.dataset.shard_bounds(s),
                 tuple(missing), want_tables)
                for s in range(n_shards)
            ]
            results = self.executor.map(_run_fused_task, tasks)
        else:
            def build_shard(shard_index: int):
                # The hold slot bounds how many chunks threaded workers
                # keep alive at once (load + mask evaluation) to the
                # residency cap.
                with self.dataset.hold_slots:
                    chunk = self.dataset.chunk(shard_index)
                    tables = fused_prefix_tables(schema, chunk, missing)
                counts = [int(table[-1]) for table in tables]
                return counts, (tables if want_tables else None)

            results = self.executor.map(build_shard, range(n_shards))

        counts = np.zeros((len(missing), n_shards), dtype=np.int64)
        for shard_index, (shard_counts, _) in enumerate(results):
            counts[:, shard_index] = shard_counts
        with self._lock:
            for row, predicate in enumerate(missing):
                totals = np.zeros(n_shards + 1, dtype=np.int64)
                np.cumsum(counts[row], out=totals[1:])
                totals.setflags(write=False)
                # A racing build produced identical content; keep the first.
                self._totals.setdefault(predicate, totals)
            tables_present = want_tables and n_shards > 0 and all(
                tables is not None for _, tables in results
            )
            if tables_present:
                for row, predicate in enumerate(missing):
                    if predicate in self._prefixes.pinned:
                        continue
                    if not self._prefixes.can_pin(n_shards):
                        break
                    # Splice the per-shard tables into ONE global prefix
                    # table (prefix[i] = members among rows [0, i)) —
                    # the exact array the dense index uses, at the exact
                    # bytes the per-shard tables would have cost, so
                    # every later query on this predicate runs at
                    # dense-index speed.
                    totals = self._totals[predicate]
                    global_prefix = np.empty(
                        len(self.dataset) + 1, dtype=np.int32
                    )
                    global_prefix[0] = 0
                    for shard_index in range(n_shards):
                        start, stop = self.dataset.shard_bounds(shard_index)
                        global_prefix[start + 1 : stop + 1] = (
                            results[shard_index][1][row][1:] + totals[shard_index]
                        )
                    global_prefix.setflags(write=False)
                    self._prefixes.pin(predicate, global_prefix, n_shards)

    def shard_totals(self, predicate: GroupPredicate) -> np.ndarray:
        """Cumulative member counts at shard boundaries: ``totals[s]`` =
        members among shards ``[0, s)`` (length ``n_shards + 1``),
        building through :meth:`build_totals` on first use; afterwards
        any shard-aligned range is answered in O(1) from this table
        alone."""
        cached = self._totals.get(predicate)
        if cached is not None:
            return cached
        self.build_totals((predicate,))
        return self._totals[predicate]

    def _shard_prefix(
        self, predicate: GroupPredicate, shard_index: int
    ) -> np.ndarray:
        """The shard's local prefix-count table (length ``rows + 1``):
        sliced out of a pinned global table when one exists, otherwise
        built from the chunk on demand and cached LRU."""
        pinned = self._prefixes.pinned.get(predicate)
        if pinned is not None:
            start, stop = self.dataset.shard_bounds(shard_index)
            return pinned[start : stop + 1] - pinned[start]
        key = (predicate, shard_index)
        with self._lock:
            cached = self._prefixes.get(key)
        if cached is not None:
            return cached
        chunk = self.dataset.chunk(shard_index)
        prefix = fused_prefix_tables(self.dataset.schema, chunk, (predicate,))[0]
        with self._lock:
            raced = self._prefixes.get(key)
            if raced is not None:
                return raced
            self._prefixes.put(key, prefix)
        return prefix

    def _count_run(
        self,
        predicate: GroupPredicate,
        start: int,
        stop: int,
        totals: np.ndarray | None = None,
    ) -> int:
        """Exact member count over the contiguous run ``[start, stop)``:
        totals for whole shards, local prefixes for the (at most two)
        partially covered boundary shards. ``totals`` lets batched
        callers hoist the per-predicate lookup out of their per-run
        loop."""
        if stop <= start:
            return 0
        if start < 0 or stop > len(self.dataset):
            # Same contract as value_rows: out-of-range queries raise
            # instead of silently clamping (the dense index's prefix
            # table would overrun on the same input).
            raise OracleError(
                f"query run [{start}, {stop}) outside dataset "
                f"[0, {len(self.dataset)})"
            )
        pinned = self._prefixes.pinned.get(predicate)
        if pinned is not None:
            return int(pinned[stop] - pinned[start])
        size = self.dataset.shard_size
        first = start // size
        last = (stop - 1) // size
        if totals is None:
            totals = self.shard_totals(predicate)
        count = int(totals[last + 1] - totals[first])
        first_base = first * size
        if start > first_base:
            count -= int(self._shard_prefix(predicate, first)[start - first_base])
        last_base = last * size
        _, last_stop = self.dataset.shard_bounds(last)
        if stop < last_stop:
            in_last = int(totals[last + 1] - totals[last])
            count -= in_last - int(
                self._shard_prefix(predicate, last)[stop - last_base]
            )
        return count

    def _scattered_hits(
        self, predicate: GroupPredicate, indices: np.ndarray
    ) -> np.ndarray:
        """Per-index membership of an arbitrary (non-empty) index array,
        resolved shard-by-shard through the executor. In ``processes``
        mode each shard's gather runs as a picklable kernel — only the
        local index array and its boolean hits cross the boundary —
        unless the predicate's global prefix table is already pinned, in
        which case the parent answers lock-free without dispatching (or
        touching a chunk) at all."""
        check_object_indices(indices, len(self.dataset))
        pinned = self._prefixes.pinned.get(predicate)
        if pinned is not None:
            return np.asarray(pinned[indices + 1] > pinned[indices])
        size = self.dataset.shard_size
        shards = indices // size
        unique_shards = np.unique(shards)
        hits = np.zeros(len(indices), dtype=bool)

        if self.executor.uses_processes and len(unique_shards) > 1:
            source = self.dataset.chunk_source
            predicate.validate(self.dataset.schema)
            selectors = []
            tasks = []
            for shard_index in (int(s) for s in unique_shards):
                selector = shards == shard_index
                local = indices[selector] - shard_index * size
                selectors.append(selector)
                tasks.append(
                    (source, self.dataset.schema, shard_index,
                     *self.dataset.shard_bounds(shard_index), predicate, local)
                )
            for selector, shard_hits in zip(
                selectors, self.executor.map(_run_scattered_task, tasks)
            ):
                hits[selector] = shard_hits
            return hits

        def eval_shard(shard_index: int):
            selector = shards == shard_index
            local = indices[selector] - shard_index * size
            with self.dataset.hold_slots:
                prefix = self._shard_prefix(predicate, int(shard_index))
            return selector, prefix[local + 1] > prefix[local]

        if self.executor.uses_processes:
            # Single-shard gather with no chunk source advantage: build
            # the boundary prefix in-parent (the closure would not
            # pickle anyway).
            results = [eval_shard(int(s)) for s in unique_shards]
        else:
            results = self.executor.map(
                eval_shard, (int(s) for s in unique_shards)
            )
        for selector, shard_hits in results:
            hits[selector] = shard_hits
        return hits

    # ------------------------------------------------------------------
    # the dense-index query surface
    # ------------------------------------------------------------------
    def count(self, predicate: GroupPredicate, indices: np.ndarray) -> int:
        """Number of objects in ``indices`` matching ``predicate``
        (exact — identical to the dense index).

        Examples
        --------
        >>> import numpy as np
        >>> from repro.data.groups import group
        >>> from repro.data.sharded import ShardedDataset, ShardedMembershipIndex
        >>> from repro.data.synthetic import binary_dataset
        >>> ds = ShardedDataset.from_dataset(
        ...     binary_dataset(100, 100, rng=np.random.default_rng(0)),
        ...     shard_size=32)
        >>> ShardedMembershipIndex(ds).count(group(gender="female"),
        ...                                  np.arange(10, 90))
        80
        """
        indices = np.asarray(indices, dtype=np.int64)
        run = as_run(indices)
        if run is not None:
            return self._count_run(predicate, run[0], run[1])
        if len(indices) == 0:
            return 0
        return int(self._scattered_hits(predicate, indices).sum())

    def any_match(
        self, predicate: GroupPredicate, indices: np.ndarray, *, key=None
    ) -> bool:
        """Does ``indices`` contain at least one member of ``predicate``?
        ``key`` (an :class:`~repro.engine.requests.IndexKey`) skips run
        re-detection exactly as on the dense index."""
        indices = np.asarray(indices, dtype=np.int64)
        if key is not None:
            if key.payload is None:
                return self._count_run(predicate, key.start, key.stop) > 0
            if len(indices) == 0:
                return False
            return bool(self._scattered_hits(predicate, indices).any())
        run = as_run(indices)
        if run is not None:
            return self._count_run(predicate, run[0], run[1]) > 0
        if len(indices) == 0:
            return False
        return bool(self._scattered_hits(predicate, indices).any())

    def matches(self, predicate: GroupPredicate, index: int) -> bool:
        """Ground-truth membership of a single object."""
        index = int(index)
        check_object_indices(np.asarray([index], dtype=np.int64), len(self.dataset))
        pinned = self._prefixes.pinned.get(predicate)
        if pinned is not None:
            return bool(pinned[index + 1] > pinned[index])
        shard = self.dataset.shard_of(index)
        prefix = self._shard_prefix(predicate, shard)
        local = index - shard * self.dataset.shard_size
        return bool(prefix[local + 1] > prefix[local])

    def any_match_runs(
        self, predicate: GroupPredicate, starts: np.ndarray, stops: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`any_match` over many runs of one predicate."""
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        totals = self.shard_totals(predicate)
        return np.array(
            [
                self._count_run(predicate, int(start), int(stop), totals) > 0
                for start, stop in zip(starts, stops)
            ],
            dtype=bool,
        )

    def any_match_batch(
        self,
        queries: Sequence[tuple[np.ndarray, GroupPredicate]],
        *,
        keys: "Sequence | None" = None,
    ) -> list[bool]:
        """Answer many set queries; same grouping semantics (and
        identical answers) as the dense ``any_match_batch``. Totals for
        every predicate the batch needs are built in one fused streaming
        pass first; then run-shaped queries split/merge at shard
        boundaries and scattered queries of one predicate concatenate
        into a single shard-parallel gather."""
        answers = [False] * len(queries)
        by_predicate: dict[GroupPredicate, list[int]] = {}
        for position, (_, predicate) in enumerate(queries):
            by_predicate.setdefault(predicate, []).append(position)
        # One chunk touch builds totals for every predicate missing them.
        self.build_totals(list(by_predicate))
        for predicate, positions in by_predicate.items():
            totals = self.shard_totals(predicate)
            scattered: list[int] = []
            for position in positions:
                indices = queries[position][0]
                if keys is not None:
                    key = keys[position]
                    if key.payload is None:
                        if key.stop > key.start:
                            answers[position] = (
                                self._count_run(
                                    predicate, key.start, key.stop, totals
                                )
                                > 0
                            )
                        continue
                    if len(indices):
                        scattered.append(position)
                    continue
                if len(indices) == 0:
                    continue
                run = as_run(indices)
                if run is not None:
                    answers[position] = (
                        self._count_run(predicate, run[0], run[1], totals) > 0
                    )
                else:
                    scattered.append(position)
            if scattered:
                arrays = [
                    np.asarray(queries[position][0], dtype=np.int64)
                    for position in scattered
                ]
                lengths = np.array([len(a) for a in arrays])
                hits = self._scattered_hits(predicate, np.concatenate(arrays))
                for position, hit in zip(
                    scattered, segmented_any(hits, lengths)
                ):
                    answers[position] = bool(hit)
        return answers

    # ------------------------------------------------------------------
    # point labels
    # ------------------------------------------------------------------
    def value_rows(self, indices: Sequence[int]) -> list[dict[str, str]]:
        """Ground-truth ``{attribute: value}`` rows for many objects,
        decoded shard by shard; bounds-checked like the dense index."""
        if len(indices) == 0:
            return []
        index_array = np.asarray(indices, dtype=np.int64)
        check_object_indices(index_array, len(self.dataset))
        size = self.dataset.shard_size
        shards = index_array // size
        codes = np.empty(
            (len(index_array), self.dataset.schema.n_attributes), dtype=np.int16
        )
        for shard_index in np.unique(shards):
            selector = shards == shard_index
            local = index_array[selector] - int(shard_index) * size
            codes[selector] = self.dataset.chunk(int(shard_index))[local]
        return decode_value_rows(self.dataset.schema, codes)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_report(self) -> dict[str, int]:
        """Structural memory accounting of the sharded path.

        ``peak_tracked_bytes`` (resident chunks + prefix tables + totals,
        at their high-water marks) is what ``benchmarks/bench_shards.py``
        compares against :func:`dense_index_bytes`; ``cap_bytes`` is the
        configuration-implied ceiling it can never exceed. Under a
        ``processes`` executor each pool worker additionally holds at
        most one chunk at a time in its own address space — that bound
        is the ``worker_chunk_cap`` term of ``cap_bytes`` (it can never
        appear in ``peak_tracked_bytes``, which ledgers this process
        only).
        """
        stats = self.dataset.stats
        row_bytes = 2 * self.dataset.schema.n_attributes
        chunk_bytes = self.dataset.shard_size * row_bytes
        # LRU-resident chunks plus the chunks shard-parallel workers may
        # hold outside the table (bounded by the dataset's hold_slots
        # semaphore to the same count): worst case 2 × the residency cap.
        chunk_cap = 2 * self.dataset.max_resident_shards * chunk_bytes
        # Pool workers of a processes executor each materialize at most
        # one chunk at a time on their own side.
        worker_chunk_cap = (
            self.executor.effective_workers * chunk_bytes
            if self.executor.uses_processes
            else 0
        )
        # Prefix tables are int32 (4 bytes/entry); the +2 is the LRU's
        # boundary-table floor, which survives even a fully-pinned
        # budget (see _PrefixCache._shrink).
        prefix_cap = (
            (self._prefixes.max_entries + 2) * 4 * (self.dataset.shard_size + 1)
        )
        totals_bytes = sum(t.nbytes for t in self._totals.values())
        return {
            "peak_chunk_bytes": stats.peak_resident_bytes,
            "peak_prefix_bytes": self._prefixes.peak_resident_bytes,
            "totals_bytes": totals_bytes,
            "peak_tracked_bytes": (
                stats.peak_resident_bytes
                + self._prefixes.peak_resident_bytes
                + totals_bytes
            ),
            "worker_chunk_cap": worker_chunk_cap,
            "cap_bytes": chunk_cap
            + worker_chunk_cap
            + prefix_cap
            + (self.dataset.n_shards + 1) * 8 * max(len(self._totals), 1),
            "chunk_loads": stats.loads,
            "chunk_evictions": stats.evictions,
            "prefix_builds": self._prefixes.builds,
            "prefix_evictions": self._prefixes.evictions,
            "pinned_predicates": len(self._prefixes.pinned),
        }

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"ShardedMembershipIndex({self.dataset.name!r}, "
            f"N={len(self.dataset)}, shards={self.dataset.n_shards}, "
            f"indexed_predicates={len(self._totals)})"
        )


def dense_index_bytes(n_objects: int, n_attributes: int, n_predicates: int) -> int:
    """Bytes the dense path needs resident for the same workload: the
    ``(N, d)`` ``int16`` code matrix plus, per indexed predicate, one
    boolean membership column and one ``int64`` prefix table.

    The yardstick ``benchmarks/bench_shards.py`` measures the sharded
    path's tracked peak against.

    Examples
    --------
    >>> dense_index_bytes(1_000_000, 1, 1)  # ~11 MB at N=1M, one predicate
    11000008
    """
    codes = n_objects * n_attributes * 2
    per_predicate = n_objects * 1 + 8 * (n_objects + 1)
    return codes + n_predicates * per_predicate
