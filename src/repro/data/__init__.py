"""Data substrate: schemas, group predicates, labeled datasets, generators.

Public surface:

* :class:`~repro.data.schema.Attribute`, :class:`~repro.data.schema.Schema`
* :class:`~repro.data.groups.Group`, :class:`~repro.data.groups.SuperGroup`,
  :class:`~repro.data.groups.Negation`, :func:`~repro.data.groups.group`
* :class:`~repro.data.dataset.LabeledDataset`
* the sharded out-of-core layer (:mod:`repro.data.sharded`):
  :class:`~repro.data.sharded.ShardedDataset`,
  :class:`~repro.data.sharded.ShardedMembershipIndex`,
  :class:`~repro.data.sharded.ShardExecutor`
* synthetic generators (:mod:`repro.data.synthetic`)
* image rendering (:mod:`repro.data.images`)
* the paper's evaluation corpora (:mod:`repro.data.corpora`)
"""

from repro.data.corpora import (
    feret_mturk_slice,
    feret_unique_slice,
    mrl_eye_pool,
    utkface_gender_pool,
    utkface_slice,
)
from repro.data.dataset import LabeledDataset, predicate_mask
from repro.data.groups import Group, GroupPredicate, Negation, SuperGroup, group
from repro.data.images import ImageRenderer, attach_images
from repro.data.membership import GroupMembershipIndex, membership_index_for
from repro.data.schema import Attribute, Schema
from repro.data.sharded import (
    ShardedDataset,
    ShardedMembershipIndex,
    ShardExecutor,
    ShardStats,
    dense_index_bytes,
)
from repro.data.synthetic import (
    adversarial_tightness_dataset,
    binary_dataset,
    intersectional_dataset,
    proportions_dataset,
    single_attribute_dataset,
)

__all__ = [
    "Attribute",
    "Schema",
    "Group",
    "GroupPredicate",
    "SuperGroup",
    "Negation",
    "group",
    "LabeledDataset",
    "predicate_mask",
    "GroupMembershipIndex",
    "membership_index_for",
    "ShardedDataset",
    "ShardedMembershipIndex",
    "ShardExecutor",
    "ShardStats",
    "dense_index_bytes",
    "ImageRenderer",
    "attach_images",
    "binary_dataset",
    "single_attribute_dataset",
    "intersectional_dataset",
    "proportions_dataset",
    "adversarial_tightness_dataset",
    "feret_mturk_slice",
    "feret_unique_slice",
    "utkface_slice",
    "utkface_gender_pool",
    "mrl_eye_pool",
]
