"""Named builders for the paper's evaluation corpora.

The paper evaluates on slices of three real image datasets, none of which
can be redistributed. Every experiment that uses them depends only on the
slice's *group composition* (coverage experiments) or on learnable
group-conditional structure (classifier / downstream experiments), so we
rebuild each slice synthetically with the exact composition the paper
reports:

======================  =========================================  ==========
Builder                 Composition (paper §6)                      Used by
======================  =========================================  ==========
feret_mturk_slice       FERET, 215 female / 1307 male               Table 1
feret_unique_slice      FERET unique individuals, 403 F / 591 M     Table 2
utkface_slice           UTKFace 3000-point slices, 200 F or 20 F    Table 2
utkface_gender_pool     7055 Caucasian train slice + Black pool     Fig 6b
mrl_eye_pool            26480 open/closed, spectacled excluded      Fig 6a
======================  =========================================  ==========

Slices are shuffled with the caller's RNG because physical placement
affects Group-Coverage's task count (the paper shuffles before each run).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import LabeledDataset
from repro.data.images import ImageRenderer, attach_images
from repro.data.schema import Schema
from repro.data.synthetic import binary_dataset, intersectional_dataset
from repro.errors import InvalidParameterError

__all__ = [
    "feret_mturk_slice",
    "feret_unique_slice",
    "utkface_slice",
    "utkface_gender_pool",
    "mrl_eye_pool",
    "GENDER_SCHEMA",
]

GENDER_SCHEMA = Schema.from_dict({"gender": ["male", "female"]})


def feret_mturk_slice(rng: np.random.Generator) -> LabeledDataset:
    """The FERET slice of the live MTurk experiment (Table 1):
    215 females, 1307 males, N = 1522."""
    return binary_dataset(
        1522, 215, attribute="gender", majority="male", minority="female",
        rng=rng, name="FERET(MTurk slice)",
    )


def feret_unique_slice(
    rng: np.random.Generator, *, with_images: bool = False
) -> LabeledDataset:
    """The FERET unique-individuals slice of Table 2: 403 F / 591 M."""
    dataset = binary_dataset(
        994, 403, attribute="gender", majority="male", minority="female",
        rng=rng, name="FERET(unique individuals)",
    )
    return attach_images(dataset, rng) if with_images else dataset


def utkface_slice(
    rng: np.random.Generator,
    *,
    n_female: int,
    n_total: int = 3000,
    with_images: bool = False,
) -> LabeledDataset:
    """A UTKFace 3000-point slice with a chosen female count.

    The paper uses two such slices (Table 2): ``n_female=200`` (covered
    female group) and ``n_female=20`` (uncovered).
    """
    if n_female > n_total:
        raise InvalidParameterError(
            f"n_female ({n_female}) exceeds n_total ({n_total})"
        )
    dataset = binary_dataset(
        n_total, n_female, attribute="gender", majority="male",
        minority="female", rng=rng,
        name=f"UTKFace(females={n_female}, males={n_total - n_female})",
    )
    return attach_images(dataset, rng) if with_images else dataset


def utkface_gender_pool(
    rng: np.random.Generator,
    *,
    n_black_pool: int = 1200,
    renderer: ImageRenderer | None = None,
) -> LabeledDataset:
    """The gender-detection world of §6.4.2.

    The paper's training slice is 7055 UTKFace images (3834 male / 3221
    female), *Caucasian only*; the Black subjects form the uncovered group
    that is later re-added and tested on. We build a single pool holding
    both: the Caucasian training composition plus a Black pool
    (``n_black_pool`` split evenly over gender) for test sets and for the
    20..100-sample re-additions.

    Images are attached — this corpus exists to be trained on.
    """
    schema = Schema.from_dict(
        {"gender": ["male", "female"], "race": ["caucasian", "black"]}
    )
    half_pool = n_black_pool // 2
    dataset = intersectional_dataset(
        schema,
        {
            ("male", "caucasian"): 3834,
            ("female", "caucasian"): 3221,
            ("male", "black"): half_pool,
            ("female", "black"): n_black_pool - half_pool,
        },
        rng=rng,
        name="UTKFace(gender-detection pool)",
    )
    return attach_images(dataset, rng, renderer=renderer)


def mrl_eye_pool(
    rng: np.random.Generator,
    *,
    n_spectacled_pool: int = 3000,
    renderer: ImageRenderer | None = None,
) -> LabeledDataset:
    """The drowsiness-detection world of §6.4.1.

    The paper's training sample is 26 480 MRL-eye images — 14 279 open and
    12 201 closed — with spectacled subjects deliberately excluded. The
    spectacled pool (``n_spectacled_pool``, split evenly over eye state)
    provides the uncovered-group test set and the re-added samples.
    """
    schema = Schema.from_dict(
        {"eye_state": ["open", "closed"], "spectacled": ["no", "yes"]}
    )
    half_pool = n_spectacled_pool // 2
    dataset = intersectional_dataset(
        schema,
        {
            ("open", "no"): 14279,
            ("closed", "no"): 12201,
            ("open", "yes"): half_pool,
            ("closed", "yes"): n_spectacled_pool - half_pool,
        },
        rng=rng,
        name="MRL-eye(drowsiness pool)",
    )
    return attach_images(dataset, rng, renderer=renderer)
