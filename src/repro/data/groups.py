"""Group predicates: the vocabulary of coverage questions.

The paper asks coverage questions about *(demographic) groups*. Three
predicate forms appear:

* :class:`Group` — a conjunction of ``attribute = value`` conditions
  (``{gender=female}``, ``{gender=female, race=asian}``). A group that
  fixes every attribute of a schema is a *fully-specified subgroup*.
* :class:`SuperGroup` — a disjunction (OR) of groups. Section 4 of the
  paper merges several minority groups into one "super-group" so a single
  Group-Coverage run can rule them all uncovered at once.
* :class:`Negation` — the complement of a predicate. Section 5's
  Classifier-Coverage asks the *reverse* set question ("is there any
  individual in this set that is NOT female?"), which is exactly a set
  query on ``Negation(female)``.

Predicates are immutable, hashable value objects that reference attributes
and values *by name*; they are validated and compiled into boolean masks by
:class:`repro.data.dataset.LabeledDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol, runtime_checkable

from repro.data.schema import Schema
from repro.errors import InvalidParameterError, UnknownGroupError

__all__ = ["GroupPredicate", "Group", "SuperGroup", "Negation", "group"]


@runtime_checkable
class GroupPredicate(Protocol):
    """Anything a set query can ask about."""

    def matches_row(self, row: Mapping[str, str]) -> bool:
        """Does an object with attribute values ``row`` satisfy the predicate?"""
        ...

    def validate(self, schema: Schema) -> None:
        """Raise :class:`UnknownGroupError` if the predicate does not type-check
        against ``schema``."""
        ...

    def describe(self) -> str:
        """Human-readable form, used in HIT instructions and reports."""
        ...


@dataclass(frozen=True)
class Group:
    """A conjunction of ``attribute = value`` conditions.

    Parameters
    ----------
    conditions:
        Mapping from attribute name to required value. Stored internally as
        a sorted tuple of pairs so that equal groups hash equally regardless
        of construction order.

    Examples
    --------
    >>> g = Group({"gender": "female"})
    >>> g.matches_row({"gender": "female", "race": "asian"})
    True
    >>> Group({"gender": "female", "race": "asian"}).describe()
    'gender=female AND race=asian'
    """

    conditions: tuple[tuple[str, str], ...]

    def __init__(self, conditions: Mapping[str, str]) -> None:
        if not conditions:
            raise InvalidParameterError("a Group needs at least one condition")
        items = tuple(sorted((str(k), str(v)) for k, v in conditions.items()))
        object.__setattr__(self, "conditions", items)
        # Predicates are dict keys on every cache/dedup probe of the
        # query engine; caching the hash keeps those probes O(1) instead
        # of re-hashing the conditions tuple each time.
        object.__setattr__(self, "_hash", hash(items))

    def __hash__(self) -> int:
        return self._hash

    @property
    def attributes(self) -> tuple[str, ...]:
        """Names of the attributes this group constrains, sorted."""
        return tuple(name for name, _ in self.conditions)

    def value_of(self, attribute: str) -> str:
        """The value this group requires for ``attribute``.

        Raises
        ------
        UnknownGroupError
            If the group does not constrain ``attribute``.
        """
        for name, value in self.conditions:
            if name == attribute:
                return value
        raise UnknownGroupError(f"group {self} has no condition on {attribute!r}")

    def constrains(self, attribute: str) -> bool:
        return any(name == attribute for name, _ in self.conditions)

    def matches_row(self, row: Mapping[str, str]) -> bool:
        return all(row.get(name) == value for name, value in self.conditions)

    def validate(self, schema: Schema) -> None:
        for name, value in self.conditions:
            attribute = schema.attribute(name)  # raises UnknownGroupError
            attribute.code_of(value)  # raises UnknownGroupError

    def is_fully_specified(self, schema: Schema) -> bool:
        """True if the group fixes a value for every attribute in ``schema``."""
        return set(self.attributes) == set(schema.names)

    def shares_parent_with(self, other: "Group") -> bool:
        """True if the two groups constrain the same attributes and differ on
        exactly one of them.

        In the pattern graph this means both groups are children of one
        common parent pattern; Algorithm 6's ``multi=True`` aggregation only
        merges such sibling groups.
        """
        if self.attributes != other.attributes:
            return False
        differing = sum(
            1
            for (_, mine), (_, theirs) in zip(self.conditions, other.conditions)
            if mine != theirs
        )
        return differing == 1

    def describe(self) -> str:
        return " AND ".join(f"{name}={value}" for name, value in self.conditions)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.describe()


@dataclass(frozen=True)
class SuperGroup:
    """A disjunction (OR) of :class:`Group` members.

    Section 4 of the paper aggregates several expected-minority groups into
    a super-group; a set query on a super-group asks "does this set contain
    at least one object from *any* of these groups?".

    Notes
    -----
    Members are kept in the order given (reports preserve the ascending
    sampled-count order Algorithm 6 produces), but equality and hashing use
    the unordered member set.
    """

    members: tuple[Group, ...]

    def __init__(self, members: Iterable[Group]) -> None:
        member_tuple = tuple(members)
        if not member_tuple:
            raise InvalidParameterError("a SuperGroup needs at least one member")
        if len(set(member_tuple)) != len(member_tuple):
            raise InvalidParameterError(
                f"duplicate members in super-group: {member_tuple!r}"
            )
        object.__setattr__(self, "members", member_tuple)
        object.__setattr__(self, "_hash", hash(frozenset(member_tuple)))

    def matches_row(self, row: Mapping[str, str]) -> bool:
        return any(member.matches_row(row) for member in self.members)

    def validate(self, schema: Schema) -> None:
        for member in self.members:
            member.validate(schema)

    def describe(self) -> str:
        if len(self.members) == 1:
            return self.members[0].describe()
        return " OR ".join(f"({member.describe()})" for member in self.members)

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SuperGroup):
            return NotImplemented
        return set(self.members) == set(other.members)

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.describe()


@dataclass(frozen=True)
class Negation:
    """The complement of a predicate.

    Used by Classifier-Coverage's reverse set question: a set query on
    ``Negation(Group({"gender": "female"}))`` asks whether the set contains
    any individual that is *not* female.
    """

    inner: Group | SuperGroup

    def matches_row(self, row: Mapping[str, str]) -> bool:
        return not self.inner.matches_row(row)

    def validate(self, schema: Schema) -> None:
        self.inner.validate(schema)

    def describe(self) -> str:
        return f"NOT ({self.inner.describe()})"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.describe()


def group(**conditions: str) -> Group:
    """Convenience constructor: ``group(gender="female", race="asian")``.

    Equivalent to ``Group({"gender": "female", "race": "asian"})`` but reads
    naturally at call sites and in examples.
    """
    return Group(conditions)
