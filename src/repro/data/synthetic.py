"""Synthetic dataset generators.

The paper's performance experiments (§6.5) run on synthetic data: "we
create synthetic data with a variety of distributions ... we simulate the
behavior of the crowdworkers in answering queries". These builders create
:class:`~repro.data.dataset.LabeledDataset` instances with exact group
composition and controllable *physical placement* of the minority objects,
which is what drives Group-Coverage's task count:

* ``random`` placement — the default; objects are shuffled (the paper
  shuffles before every run).
* ``uniform`` placement — minority objects evenly spread, the adversarial
  layout from the tightness proof of Theorem 3.2 (every early set query
  answers "yes").
* ``front`` / ``back`` — best/worst cases for the Base-Coverage baseline.
"""

from __future__ import annotations

from typing import Literal, Mapping

import numpy as np

from repro.data.dataset import LabeledDataset
from repro.data.schema import Attribute, Schema
from repro.errors import InvalidParameterError

__all__ = [
    "Placement",
    "binary_dataset",
    "single_attribute_dataset",
    "intersectional_dataset",
    "proportions_dataset",
    "adversarial_tightness_dataset",
]

Placement = Literal["random", "uniform", "front", "back"]


def _place_minority(
    n_total: int,
    n_minority: int,
    placement: Placement,
    rng: np.random.Generator | None,
) -> np.ndarray:
    """Indices at which minority objects are placed."""
    if not 0 <= n_minority <= n_total:
        raise InvalidParameterError(
            f"need 0 <= n_minority <= n_total, got {n_minority}/{n_total}"
        )
    if placement == "random":
        if rng is None:
            raise InvalidParameterError("random placement requires an rng")
        return rng.choice(n_total, size=n_minority, replace=False)
    if placement == "uniform":
        if n_minority == 0:
            return np.empty(0, dtype=np.int64)
        # Evenly spaced positions, one per stride, so that every window of
        # size ~n_total/n_minority contains exactly one minority object.
        return np.floor(np.arange(n_minority) * (n_total / n_minority)).astype(np.int64)
    if placement == "front":
        return np.arange(n_minority, dtype=np.int64)
    if placement == "back":
        return np.arange(n_total - n_minority, n_total, dtype=np.int64)
    raise InvalidParameterError(f"unknown placement {placement!r}")


def binary_dataset(
    n_total: int,
    n_minority: int,
    *,
    attribute: str = "gender",
    majority: str = "male",
    minority: str = "female",
    placement: Placement = "random",
    rng: np.random.Generator | None = None,
    name: str | None = None,
) -> LabeledDataset:
    """A single-binary-attribute dataset (the paper's core scenario).

    Parameters
    ----------
    n_total:
        Dataset size ``N``.
    n_minority:
        Exact number of minority objects (the paper's ``f`` when the
        minority is ``female``).
    placement:
        Physical layout of the minority objects, see module docstring.
    rng:
        Required for ``random`` placement.

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> ds = binary_dataset(1000, 30, rng=rng)
    >>> ds.counts_by_value("gender")["female"]
    30
    """
    schema = Schema([Attribute(attribute, (majority, minority))])
    codes = np.zeros((n_total, 1), dtype=np.int16)
    codes[_place_minority(n_total, n_minority, placement, rng), 0] = 1
    return LabeledDataset(
        schema,
        codes,
        name=name or f"binary({attribute}:{n_minority}/{n_total})",
    )


def single_attribute_dataset(
    counts: Mapping[str, int],
    *,
    attribute: str = "race",
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
    name: str | None = None,
) -> LabeledDataset:
    """A dataset over one attribute with an exact count per value.

    ``counts`` is an ordered mapping ``{value: count}``; its key order
    defines the attribute's domain order (put the majority first for
    readability). With ``shuffle=False`` objects are laid out value by
    value, which is useful for deterministic tests.

    Examples
    --------
    >>> rng = np.random.default_rng(1)
    >>> ds = single_attribute_dataset(
    ...     {"white": 900, "black": 60, "asian": 40}, rng=rng)
    >>> len(ds)
    1000
    """
    values = tuple(counts.keys())
    schema = Schema([Attribute(attribute, values)])
    blocks = [np.full(count, code, dtype=np.int16) for code, count in enumerate(counts.values())]
    column = np.concatenate(blocks) if blocks else np.empty(0, dtype=np.int16)
    codes = column.reshape(-1, 1)
    if shuffle:
        if rng is None:
            raise InvalidParameterError("shuffle=True requires an rng")
        rng.shuffle(codes)
    return LabeledDataset(
        schema,
        codes,
        name=name or f"single({attribute}:{dict(counts)})",
    )


def intersectional_dataset(
    schema: Schema,
    joint_counts: Mapping[tuple[str, ...], int],
    *,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
    name: str | None = None,
) -> LabeledDataset:
    """A multi-attribute dataset with exact counts per fully-specified group.

    ``joint_counts`` maps value tuples (aligned with ``schema`` attribute
    order) to object counts; omitted combinations get zero objects.

    Examples
    --------
    >>> schema = Schema.from_dict(
    ...     {"gender": ["male", "female"], "race": ["white", "black"]})
    >>> ds = intersectional_dataset(
    ...     schema, {("male", "white"): 80, ("female", "black"): 20},
    ...     shuffle=False)
    >>> ds.joint_counts()[("female", "black")]
    20
    """
    rows: list[np.ndarray] = []
    for values, count in joint_counts.items():
        if len(values) != schema.n_attributes:
            raise InvalidParameterError(
                f"joint count key {values!r} does not match schema arity "
                f"{schema.n_attributes}"
            )
        if count < 0:
            raise InvalidParameterError(f"negative count for {values!r}")
        code_row = np.array(
            [attribute.code_of(value) for attribute, value in zip(schema, values)],
            dtype=np.int16,
        )
        rows.append(np.tile(code_row, (count, 1)))
    codes = (
        np.concatenate(rows)
        if rows
        else np.empty((0, schema.n_attributes), dtype=np.int16)
    )
    if shuffle:
        if rng is None:
            raise InvalidParameterError("shuffle=True requires an rng")
        codes = codes[rng.permutation(len(codes))]
    return LabeledDataset(schema, codes, name=name or "intersectional")


def proportions_dataset(
    n_total: int,
    proportions: Mapping[str, float],
    *,
    attribute: str = "group",
    rng: np.random.Generator,
    name: str | None = None,
) -> LabeledDataset:
    """A dataset where each object's value is sampled i.i.d. from
    ``proportions`` (which must sum to ~1).

    Unlike :func:`single_attribute_dataset` the realized counts are random;
    use this to exercise estimator behavior (Algorithm 6's sampling phase).
    """
    values = tuple(proportions.keys())
    weights = np.array([proportions[v] for v in values], dtype=np.float64)
    if weights.min() < 0 or abs(weights.sum() - 1.0) > 1e-6:
        raise InvalidParameterError(
            f"proportions must be non-negative and sum to 1, got {dict(proportions)}"
        )
    schema = Schema([Attribute(attribute, values)])
    column = rng.choice(len(values), size=n_total, p=weights).astype(np.int16)
    return LabeledDataset(
        schema,
        column.reshape(-1, 1),
        name=name or f"proportions({attribute})",
    )


def adversarial_tightness_dataset(
    n_total: int,
    tau: int,
    *,
    attribute: str = "gender",
    majority: str = "male",
    minority: str = "female",
    name: str | None = None,
) -> LabeledDataset:
    """The adversarial layout from the tightness proof of Theorem 3.2.

    Exactly ``tau - 1`` minority objects (so the group is uncovered — the
    worst case) spread uniformly so that all early set queries answer "yes"
    and the execution tree degenerates into ``tau - 1`` long isolation
    paths: Θ(τ·log(n/τ)) tasks.
    """
    if tau < 1:
        raise InvalidParameterError(f"tau must be >= 1, got {tau}")
    return binary_dataset(
        n_total,
        tau - 1,
        attribute=attribute,
        majority=majority,
        minority=minority,
        placement="uniform",
        name=name or f"adversarial(tau={tau}, N={n_total})",
    )
