"""Serialization of audit reports to plain JSON-compatible dictionaries.

Coverage audits cost real money; their outcomes deserve a durable record.
These helpers flatten every report type into nested dicts of primitives
(strings, numbers, booleans, lists) so callers can ``json.dump`` them into
an audit trail, attach them to data-card documentation, or diff them
across dataset versions.

Only *export* is provided here: this JSON form is the flat,
human-readable archival format (descriptions instead of structure).
For **lossless** round-tripping — reports that cross a process boundary
and come back equal — use the :mod:`repro.audit` codecs
(:func:`repro.audit.result_to_dict` / :func:`repro.audit.result_from_dict`)
or the :class:`repro.audit.AuditReport` envelope's ``to_json``/``from_json``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.results import (
    ClassifierCoverageResult,
    GroupCoverageResult,
    IntersectionalCoverageReport,
    MultipleCoverageReport,
    TaskUsage,
)
from repro.errors import InvalidParameterError
from repro.patterns.combiner import PatternCoverageReport

__all__ = ["report_to_dict", "report_to_json"]


def _task_usage(usage: TaskUsage) -> dict[str, int]:
    return {
        "set_queries": usage.n_set_queries,
        "point_queries": usage.n_point_queries,
        "total": usage.total,
    }


def _group_coverage(result: GroupCoverageResult) -> dict[str, Any]:
    return {
        "kind": "group-coverage",
        "group": result.predicate.describe(),
        "covered": result.covered,
        "count": result.count,
        "count_is_exact": not result.covered,
        "tau": result.tau,
        "tasks": _task_usage(result.tasks),
        "discovered_indices": list(result.discovered_indices),
    }


def _multiple_coverage(report: MultipleCoverageReport) -> dict[str, Any]:
    return {
        "kind": "multiple-coverage",
        "tasks": _task_usage(report.tasks),
        "super_groups": [sg.describe() for sg in report.super_groups],
        "sampled_counts": {
            g.describe(): count for g, count in report.sampled_counts.items()
        },
        "entries": [
            {
                "group": entry.group.describe(),
                "covered": entry.covered,
                "count": entry.count,
                "count_is_exact": entry.count_is_exact,
                "via_supergroup": (
                    entry.via_supergroup.describe()
                    if entry.via_supergroup is not None
                    else None
                ),
            }
            for entry in report.entries
        ],
    }


def _pattern_report(report: PatternCoverageReport) -> dict[str, Any]:
    return {
        "kind": "pattern-coverage",
        "tau": report.tau,
        "mups": [p.describe() for p in report.mups],
        "verdicts": {
            pattern.describe(): {
                "covered": verdict.covered,
                "count_lower_bound": verdict.count_lower_bound,
                "count_is_exact": verdict.count_is_exact,
                "level": pattern.level,
            }
            for pattern, verdict in report.verdicts.items()
        },
    }


def _intersectional(report: IntersectionalCoverageReport) -> dict[str, Any]:
    return {
        "kind": "intersectional-coverage",
        "tasks": _task_usage(report.tasks),
        "mups": [p.describe() for p in report.mups],
        "leaf_report": _multiple_coverage(report.leaf_report),
        "pattern_report": _pattern_report(report.pattern_report),
    }


def _classifier(result: ClassifierCoverageResult) -> dict[str, Any]:
    return {
        "kind": "classifier-coverage",
        "group": result.group.describe(),
        "covered": result.covered,
        "count": result.count,
        "tau": result.tau,
        "strategy": result.strategy,
        "precision_estimate": result.precision_estimate,
        "verified_count": result.verified_count,
        "sample_size": result.sample_size,
        "tasks": _task_usage(result.tasks),
        "fallback": (
            _group_coverage(result.fallback) if result.fallback is not None else None
        ),
    }


_CONVERTERS = {
    GroupCoverageResult: _group_coverage,
    MultipleCoverageReport: _multiple_coverage,
    IntersectionalCoverageReport: _intersectional,
    ClassifierCoverageResult: _classifier,
    PatternCoverageReport: _pattern_report,
}


def report_to_dict(report: Any) -> dict[str, Any]:
    """Flatten any coverage report into JSON-compatible primitives.

    Raises
    ------
    InvalidParameterError
        For unsupported report types.
    """
    converter = _CONVERTERS.get(type(report))
    if converter is None:
        raise InvalidParameterError(
            f"cannot serialize {type(report).__name__}; supported: "
            f"{sorted(t.__name__ for t in _CONVERTERS)}"
        )
    return converter(report)


def report_to_json(report: Any, *, indent: int | None = 2) -> str:
    """``json.dumps(report_to_dict(report))`` with sane defaults."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)
