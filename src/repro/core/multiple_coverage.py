"""Multiple-Coverage (Algorithm 2): many non-intersectional groups at once.

For an attribute with cardinality ``c`` the naive plan runs Group-Coverage
``c`` times. Algorithm 2 spends ``c·tau`` point queries on a sampling
phase first and uses the estimates to (a) pre-credit every group's
threshold with its already-labeled members and (b) merge expected-minority
groups into super-groups (Algorithm 6), so that a *single* Group-Coverage
run can certify several groups uncovered together.

The known failure mode (§6.5.2, the "adversarial" setting) is faithfully
reproduced: when a super-group turns out to be *covered*, nothing is
learned about its individual members and the algorithm must re-run
Group-Coverage for each of them — the aggregation penalty.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.aggregate import aggregate_groups
from repro.core.group_coverage import group_coverage
from repro.core.results import GroupEntry, MultipleCoverageReport, TaskUsage
from repro.core.sampling import LabeledPool, label_samples
from repro.crowd.oracle import Oracle
from repro.data.groups import Group, SuperGroup
from repro.errors import InvalidParameterError

__all__ = ["multiple_coverage"]


def multiple_coverage(
    oracle: Oracle,
    groups: Sequence[Group],
    tau: int,
    *,
    n: int = 50,
    c: float = 2.0,
    rng: np.random.Generator,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
    multi: bool = False,
    attribute_supergroup_members: bool = False,
) -> MultipleCoverageReport:
    """Run Algorithm 2.

    Parameters
    ----------
    oracle:
        Answer source (ledger-charged).
    groups:
        The target groups (an attribute's values, or fully-specified
        subgroups when called from Intersectional-Coverage).
    tau:
        Coverage threshold.
    n:
        Set-query size bound for the inner Group-Coverage runs.
    c:
        Sampling budget multiplier; the sampling phase labels ``c·tau``
        random objects (``c=2`` is the paper's default; ``c=0`` disables
        sampling and aggregation degrades to singletons).
    view / dataset_size:
        The search space, as in :func:`~repro.core.group_coverage.group_coverage`.
    multi:
        Enforce the sibling constraint during aggregation (set by
        Intersectional-Coverage).
    attribute_supergroup_members:
        When a super-group is certified *uncovered*, spend one point query
        per isolated member to attribute it to its individual group, making
        every per-group count exact. This is our documented extension used
        by Intersectional-Coverage, whose pattern roll-up needs exact leaf
        counts (DESIGN.md §4); costs at most ``tau - 1`` extra point
        queries per uncovered super-group.

    Returns
    -------
    MultipleCoverageReport
    """
    if tau <= 0:
        raise InvalidParameterError(f"tau must be positive, got {tau}")
    if not groups:
        raise InvalidParameterError("multiple_coverage needs at least one group")
    if view is None:
        if dataset_size is None:
            raise InvalidParameterError("provide either view or dataset_size")
        view = np.arange(dataset_size, dtype=np.int64)
    else:
        view = np.asarray(view, dtype=np.int64)

    ledger = oracle.ledger
    start_sets, start_points = ledger.n_set_queries, ledger.n_point_queries

    # Phase 1: sampling. Labeled objects leave the unlabeled pool for good.
    remaining_view, pool = label_samples(oracle, view, tau, c=c, rng=rng)

    # Phase 2: super-group formation from the sampled estimates. N in the
    # expectation formula is the full (pre-sampling) search-space size, as
    # in the pseudo-code.
    super_groups = aggregate_groups(
        pool, len(view), tau, list(groups), multi=multi
    )

    # Phase 3: one Group-Coverage run per super-group, plus per-member
    # re-runs when a genuine super-group comes back covered.
    entries: dict[Group, GroupEntry] = {}
    for super_group in super_groups:
        labeled_credit = sum(pool.count(member) for member in super_group)
        tau_prime = tau - labeled_credit
        run = group_coverage(
            oracle,
            super_group if len(super_group) > 1 else super_group.members[0],
            max(tau_prime, 0),
            n=n,
            view=remaining_view,
        )
        if len(super_group) == 1:
            member = super_group.members[0]
            entries[member] = GroupEntry(
                group=member,
                covered=run.covered,
                count=pool.count(member) + run.count,
                count_is_exact=not run.covered,
                via_supergroup=super_group,
            )
            continue
        if run.covered:
            # Penalty path: the merged minorities are jointly covered, so
            # each member must be examined individually (sample credits
            # still apply).
            for member in super_group:
                member_tau = tau - pool.count(member)
                member_run = group_coverage(
                    oracle, member, max(member_tau, 0), n=n, view=remaining_view
                )
                entries[member] = GroupEntry(
                    group=member,
                    covered=member_run.covered,
                    count=pool.count(member) + member_run.count,
                    count_is_exact=not member_run.covered,
                    via_supergroup=super_group,
                )
        else:
            member_counts = {member: pool.count(member) for member in super_group}
            exact = False
            if attribute_supergroup_members:
                # Attribute every isolated member to its group with one
                # point query each; counts become exact.
                for index in run.discovered_indices:
                    labels = oracle.ask_point(index)
                    for member in super_group:
                        if member.matches_row(labels):
                            member_counts[member] += 1
                            break
                exact = True
            for member in super_group:
                entries[member] = GroupEntry(
                    group=member,
                    covered=False,
                    count=member_counts[member],
                    count_is_exact=exact,
                    via_supergroup=super_group,
                )

    tasks = TaskUsage(
        ledger.n_set_queries - start_sets,
        ledger.n_point_queries - start_points,
    )
    return MultipleCoverageReport(
        entries=tuple(entries[g] for g in groups),
        super_groups=super_groups,
        sampled_counts={g: pool.count(g) for g in groups},
        tasks=tasks,
    )
