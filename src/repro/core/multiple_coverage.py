"""Multiple-Coverage (Algorithm 2): many non-intersectional groups at once.

For an attribute with cardinality ``c`` the naive plan runs Group-Coverage
``c`` times. Algorithm 2 spends ``c·tau`` point queries on a sampling
phase first and uses the estimates to (a) pre-credit every group's
threshold with its already-labeled members and (b) merge expected-minority
groups into super-groups (Algorithm 6), so that a *single* Group-Coverage
run can certify several groups uncovered together.

The known failure mode (§6.5.2, the "adversarial" setting) is faithfully
reproduced: when a super-group turns out to be *covered*, nothing is
learned about its individual members and the algorithm must re-run
Group-Coverage for each of them — the aggregation penalty.

Execution modes
---------------
Sequential (default) issues every query one at a time, exactly as the
paper's pseudo-code. Passing an ``engine``
(:class:`repro.engine.QueryEngine`) instead:

* batches the sampling phase into one point-query round-trip,
* runs every super-group's Group-Coverage tree concurrently, batching the
  ready frontiers across runs,
* registers the super-group -> member implication with the engine's
  answer cache, so the covered-super-group penalty re-runs get every
  chunk the super-group run pruned answered for free, and
* batches the member-attribution point queries of uncovered super-groups.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.aggregate import aggregate_groups
from repro.core.group_coverage import GroupCoverageStepper, execute_group_coverage
from repro.core.results import (
    GroupCoverageResult,
    GroupEntry,
    LedgerWindow,
    MultipleCoverageReport,
)
from repro.core.sampling import LabeledPool, label_samples
from repro.core.views import resolve_view
from repro.crowd.oracle import Oracle
from repro.data.groups import Group, SuperGroup
from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro.engine.scheduler import QueryEngine

__all__ = ["multiple_coverage", "execute_multiple_coverage"]


def _singleton_entry(
    entries: dict[Group, GroupEntry],
    super_group: SuperGroup,
    run: GroupCoverageResult,
    pool: LabeledPool,
) -> None:
    member = super_group.members[0]
    entries[member] = GroupEntry(
        group=member,
        covered=run.covered,
        count=pool.count(member) + run.count,
        count_is_exact=not run.covered,
        via_supergroup=super_group,
    )


def _covered_supergroup_entries(
    entries: dict[Group, GroupEntry],
    super_group: SuperGroup,
    member_runs: dict[Group, GroupCoverageResult],
    pool: LabeledPool,
) -> None:
    for member in super_group:
        member_run = member_runs[member]
        entries[member] = GroupEntry(
            group=member,
            covered=member_run.covered,
            count=pool.count(member) + member_run.count,
            count_is_exact=not member_run.covered,
            via_supergroup=super_group,
        )


def _uncovered_supergroup_entries(
    entries: dict[Group, GroupEntry],
    oracle: Oracle,
    super_group: SuperGroup,
    run: GroupCoverageResult,
    pool: LabeledPool,
    *,
    attribute_members: bool,
    batched: bool,
) -> None:
    member_counts = {member: pool.count(member) for member in super_group}
    exact = False
    if attribute_members:
        # Attribute every isolated member to its group with one point
        # query each; counts become exact.
        if batched:
            rows = oracle.ask_point_batch(list(run.discovered_indices))
        else:
            rows = [oracle.ask_point(index) for index in run.discovered_indices]
        for labels in rows:
            for member in super_group:
                if member.matches_row(labels):
                    member_counts[member] += 1
                    break
        exact = True
    for member in super_group:
        entries[member] = GroupEntry(
            group=member,
            covered=False,
            count=member_counts[member],
            count_is_exact=exact,
            via_supergroup=super_group,
        )


def _run_supergroups_sequential(
    oracle: Oracle,
    super_groups: Sequence[SuperGroup],
    pool: LabeledPool,
    tau: int,
    n: int,
    remaining_view: np.ndarray,
    attribute_supergroup_members: bool,
    on_round: Callable[[], None] | None = None,
) -> dict[Group, GroupEntry]:
    """Phase 3, paper order: one Group-Coverage run per super-group, plus
    per-member re-runs when a genuine super-group comes back covered."""
    entries: dict[Group, GroupEntry] = {}
    for super_group in super_groups:
        labeled_credit = sum(pool.count(member) for member in super_group)
        tau_prime = tau - labeled_credit
        run = execute_group_coverage(
            oracle,
            super_group if len(super_group) > 1 else super_group.members[0],
            max(tau_prime, 0),
            n=n,
            view=remaining_view,
            on_round=on_round,
        )
        if len(super_group) == 1:
            _singleton_entry(entries, super_group, run, pool)
            continue
        if run.covered:
            # Penalty path: the merged minorities are jointly covered, so
            # each member must be examined individually (sample credits
            # still apply).
            member_runs = {
                member: execute_group_coverage(
                    oracle,
                    member,
                    max(tau - pool.count(member), 0),
                    n=n,
                    view=remaining_view,
                    on_round=on_round,
                )
                for member in super_group
            }
            _covered_supergroup_entries(entries, super_group, member_runs, pool)
        else:
            _uncovered_supergroup_entries(
                entries,
                oracle,
                super_group,
                run,
                pool,
                attribute_members=attribute_supergroup_members,
                batched=False,
            )
    return entries


def _run_supergroups_engine(
    oracle: Oracle,
    engine: "QueryEngine",
    super_groups: Sequence[SuperGroup],
    pool: LabeledPool,
    tau: int,
    n: int,
    remaining_view: np.ndarray,
    attribute_supergroup_members: bool,
    on_round: Callable[[], None] | None = None,
) -> dict[Group, GroupEntry]:
    """Phase 3, engine order: all super-group trees advance concurrently;
    covered super-groups spawn their penalty re-runs mid-flight."""
    runs: dict[SuperGroup, GroupCoverageResult] = {}
    member_runs: dict[SuperGroup, dict[Group, GroupCoverageResult]] = {}
    roles: dict[GroupCoverageStepper, tuple[SuperGroup, Group | None]] = {}

    def make_stepper(predicate, tau_prime: int) -> GroupCoverageStepper:
        return GroupCoverageStepper(
            predicate,
            max(tau_prime, 0),
            n=n,
            view=remaining_view,
            speculation=engine.speculation,
        )

    roots: list[GroupCoverageStepper] = []
    for super_group in super_groups:
        if len(super_group) > 1:
            # A "no" for the super-group over a range rules out every
            # member on that range — the penalty re-runs cash this in.
            engine.cache.register_implication(super_group, super_group.members)
        labeled_credit = sum(pool.count(member) for member in super_group)
        stepper = make_stepper(
            super_group if len(super_group) > 1 else super_group.members[0],
            tau - labeled_credit,
        )
        roles[stepper] = (super_group, None)
        roots.append(stepper)

    def on_complete(stepper):
        super_group, member = roles[stepper]
        run = stepper.result()
        if member is None:
            runs[super_group] = run
            if len(super_group) > 1 and run.covered:
                spawned = []
                for sibling in super_group:
                    sibling_stepper = make_stepper(
                        sibling, tau - pool.count(sibling)
                    )
                    roles[sibling_stepper] = (super_group, sibling)
                    spawned.append(sibling_stepper)
                return spawned
        else:
            member_runs.setdefault(super_group, {})[member] = run
        return None

    engine.run(roots, on_complete=on_complete, on_round=on_round)

    entries: dict[Group, GroupEntry] = {}
    for super_group in super_groups:
        run = runs[super_group]
        if len(super_group) == 1:
            _singleton_entry(entries, super_group, run, pool)
        elif run.covered:
            _covered_supergroup_entries(
                entries, super_group, member_runs[super_group], pool
            )
        else:
            _uncovered_supergroup_entries(
                entries,
                oracle,
                super_group,
                run,
                pool,
                attribute_members=attribute_supergroup_members,
                batched=True,
            )
    return entries


def execute_multiple_coverage(
    oracle: Oracle,
    groups: Sequence[Group],
    tau: int,
    *,
    n: int = 50,
    c: float = 2.0,
    rng: np.random.Generator,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
    multi: bool = False,
    attribute_supergroup_members: bool = False,
    engine: "QueryEngine | None" = None,
    on_round: Callable[[], None] | None = None,
) -> MultipleCoverageReport:
    """Execution backend of Algorithm 2 (see :func:`multiple_coverage`).

    Dispatched to by :meth:`repro.audit.AuditSession.run` for a
    :class:`~repro.audit.MultipleAuditSpec`; ``on_round`` fires after
    each Group-Coverage answer/engine batch in phase 3.
    """
    if tau <= 0:
        raise InvalidParameterError(f"tau must be positive, got {tau}")
    if not groups:
        raise InvalidParameterError("multiple_coverage needs at least one group")
    view = resolve_view(view, dataset_size)
    if engine is not None:
        engine.ensure_executes_for(oracle)

    window = LedgerWindow(oracle.ledger)
    engine_snapshot = engine.snapshot() if engine is not None else None

    # Phase 1: sampling. Labeled objects leave the unlabeled pool for good.
    remaining_view, pool = label_samples(
        oracle, view, tau, c=c, rng=rng, batched=engine is not None
    )

    # Phase 2: super-group formation from the sampled estimates. N in the
    # expectation formula is the full (pre-sampling) search-space size, as
    # in the pseudo-code.
    super_groups = aggregate_groups(
        pool, len(view), tau, list(groups), multi=multi
    )

    # Phase 3: the Group-Coverage runs.
    if engine is None:
        entries = _run_supergroups_sequential(
            oracle, super_groups, pool, tau, n,
            remaining_view, attribute_supergroup_members, on_round,
        )
    else:
        entries = _run_supergroups_engine(
            oracle, engine, super_groups, pool, tau, n,
            remaining_view, attribute_supergroup_members, on_round,
        )

    return MultipleCoverageReport(
        entries=tuple(entries[g] for g in groups),
        super_groups=super_groups,
        sampled_counts={g: pool.count(g) for g in groups},
        tasks=window.usage(),
        engine_stats=(
            engine.stats_since(engine_snapshot) if engine is not None else None
        ),
    )


def multiple_coverage(
    oracle: Oracle,
    groups: Sequence[Group],
    tau: int,
    *,
    n: int = 50,
    c: float = 2.0,
    rng: np.random.Generator,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
    multi: bool = False,
    attribute_supergroup_members: bool = False,
    engine: "QueryEngine | None" = None,
) -> MultipleCoverageReport:
    """Run Algorithm 2.

    Thin wrapper over :class:`~repro.audit.MultipleAuditSpec` — the
    :class:`~repro.audit.AuditSession` API is the blessed entry point.

    Parameters
    ----------
    oracle:
        Answer source (ledger-charged).
    groups:
        The target groups (an attribute's values, or fully-specified
        subgroups when called from Intersectional-Coverage).
    tau:
        Coverage threshold.
    n:
        Set-query size bound for the inner Group-Coverage runs.
    c:
        Sampling budget multiplier; the sampling phase labels ``c·tau``
        random objects (``c=2`` is the paper's default; ``c=0`` disables
        sampling and aggregation degrades to singletons).
    view / dataset_size:
        The search space, as in :func:`~repro.core.group_coverage.group_coverage`.
    multi:
        Enforce the sibling constraint during aggregation (set by
        Intersectional-Coverage).
    attribute_supergroup_members:
        When a super-group is certified *uncovered*, spend one point query
        per isolated member to attribute it to its individual group, making
        every per-group count exact. This is our documented extension used
        by Intersectional-Coverage, whose pattern roll-up needs exact leaf
        counts (DESIGN.md §4); costs at most ``tau - 1`` extra point
        queries per uncovered super-group.
    engine:
        A :class:`repro.engine.QueryEngine` bound to ``oracle``. When
        given, all phases batch their queries and the super-group runs
        execute concurrently with shared cached answers; verdicts and
        counts match the sequential mode under a deterministic oracle.

    Returns
    -------
    MultipleCoverageReport
    """
    from repro.audit.runners import run_spec
    from repro.audit.session import warn_on_adhoc_engine
    from repro.audit.specs import MultipleAuditSpec

    warn_on_adhoc_engine("multiple_coverage", oracle, engine)
    spec = MultipleAuditSpec(
        groups=tuple(groups),
        tau=tau,
        n=n,
        c=c,
        multi=multi,
        attribute_supergroup_members=attribute_supergroup_members,
        view=view,
    )
    return run_spec(oracle, spec, engine=engine, rng=rng, dataset_size=dataset_size)
