"""Classifier-Coverage (Algorithm 4) with Partition & Label (Algorithm 5).

When a pre-trained classifier has predicted each object's group, coverage
identification should *verify* rather than re-discover. For a target group
``g`` (say ``female``) and the classifier's predicted-positive set ``G``:

1. **Sample** ~10 % of ``G`` with point queries and estimate the
   classifier's precision on ``g``.
2. Eliminate false positives from ``G`` with the cheaper of two
   strategies, chosen by the precision estimate (the paper's prose and
   Table 2: Partition iff the estimated false-positive rate is below
   25 %):

   * **Partition** — divide-and-conquer with the *reverse* set question
     "is there any individual in this set that is NOT ``g``?"; a "no"
     certifies the entire chunk as members at the cost of one task.
   * **Label** — point-label ``G`` object by object.

3. If the verified members already reach ``tau``: covered. Otherwise run
   Group-Coverage over the complement ``D - G`` for the remaining
   ``tau - c'`` members (the classifier's false negatives).

Both strategies stop early once ``tau`` members are verified (DESIGN.md
deviation 4): a covered verdict needs no further cleaning.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.group_coverage import execute_group_coverage
from repro.core.results import ClassifierCoverageResult, LedgerWindow
from repro.core.tree import PrunableQueue, TreeNode
from repro.core.views import resolve_view
from repro.crowd.oracle import Oracle
from repro.data.groups import Group, Negation
from repro.errors import InvalidParameterError

__all__ = [
    "classifier_coverage",
    "execute_classifier_coverage",
    "partition_positive_set",
    "label_positive_set",
]


def partition_positive_set(
    oracle: Oracle,
    group: Group,
    positive_indices: np.ndarray,
    *,
    n: int = 50,
    stop_after: int | None = None,
) -> tuple[list[int], bool]:
    """Algorithm 5's ``Partition``: clean false positives with reverse set
    queries.

    Parameters
    ----------
    positive_indices:
        The (remaining) predicted-positive objects.
    stop_after:
        Stop as soon as this many members are verified (early stop for the
        covered case). ``None`` cleans the whole set.

    Returns
    -------
    (verified, exhausted)
        Indices certified to belong to ``group``, and whether the whole
        set was processed (``False`` means early stop, so ``verified`` is
        a lower bound rather than the exact member set).
    """
    if n < 1:
        raise InvalidParameterError(f"set-query size bound n must be >= 1, got {n}")
    positive_indices = np.asarray(positive_indices, dtype=np.int64)
    not_group = Negation(group)
    verified: list[int] = []
    queue = PrunableQueue()
    for begin in range(0, len(positive_indices), n):
        queue.add(TreeNode(begin, min(begin + n, len(positive_indices)) - 1))
    while queue:
        node = queue.pop()
        chunk = positive_indices[node.b_index : node.e_index + 1]
        contains_non_member = oracle.ask_set(chunk, not_group)
        if not contains_non_member:
            # The whole chunk is certified g.
            verified.extend(int(i) for i in chunk)
            if stop_after is not None and len(verified) >= stop_after:
                return verified, False
        elif node.size > 1:
            left, right = node.split()
            queue.add(left)
            queue.add(right)
        # size-1 nodes answering "yes" are non-members: drop silently.
    return verified, True


def label_positive_set(
    oracle: Oracle,
    group: Group,
    positive_indices: np.ndarray,
    *,
    stop_after: int | None = None,
) -> tuple[list[int], bool]:
    """Algorithm 5's ``Label``: clean false positives with point queries.

    Walks ``positive_indices`` in order, keeping members, until
    ``stop_after`` members are found or the set is exhausted. Returns the
    verified members and the exhaustion flag (mirrors
    :func:`partition_positive_set`).
    """
    verified: list[int] = []
    for position, index in enumerate(np.asarray(positive_indices, dtype=np.int64)):
        if oracle.ask_point_membership(int(index), group):
            verified.append(int(index))
            if stop_after is not None and len(verified) >= stop_after:
                return verified, position + 1 == len(positive_indices)
    return verified, True


def execute_classifier_coverage(
    oracle: Oracle,
    group: Group,
    tau: int,
    predicted_positive: np.ndarray,
    *,
    n: int = 50,
    sample_fraction: float = 0.10,
    fp_threshold: float = 0.25,
    rng: np.random.Generator,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
    on_round: Callable[[], None] | None = None,
) -> ClassifierCoverageResult:
    """Execution backend of Algorithm 4 (see :func:`classifier_coverage`).

    Dispatched to by :meth:`repro.audit.AuditSession.run` for a
    :class:`~repro.audit.ClassifierAuditSpec`; ``on_round`` is forwarded
    to the fallback Group-Coverage run.
    """
    if tau <= 0:
        raise InvalidParameterError(f"tau must be positive, got {tau}")
    if not 0.0 < sample_fraction <= 1.0:
        raise InvalidParameterError("sample_fraction must be in (0, 1]")
    if not 0.0 <= fp_threshold <= 1.0:
        raise InvalidParameterError("fp_threshold must be in [0, 1]")
    # Bounds-check both index collections: negative entries (or entries
    # past a known dataset_size) would silently wrap onto wrong objects.
    view = resolve_view(view, dataset_size)
    predicted_positive = resolve_view(
        np.asarray(predicted_positive, dtype=np.int64), dataset_size
    )

    window = LedgerWindow(oracle.ledger)
    usage = window.usage

    if len(predicted_positive) == 0:
        # Nothing predicted positive: straight to Group-Coverage.
        fallback = execute_group_coverage(
            oracle, group, tau, n=n, view=view, on_round=on_round
        )
        return ClassifierCoverageResult(
            group=group,
            covered=fallback.covered,
            count=fallback.count,
            tau=tau,
            strategy="none",
            precision_estimate=0.0,
            verified_count=0,
            tasks=usage(),
            fallback=fallback,
            sample_size=0,
        )

    # Phase 1: estimate precision on a random sample of G.
    sample_size = min(
        len(predicted_positive),
        max(1, int(round(sample_fraction * len(predicted_positive)))),
    )
    sample_positions = rng.choice(len(predicted_positive), size=sample_size, replace=False)
    sample_member_mask = np.zeros(len(predicted_positive), dtype=bool)
    sample_member_mask[sample_positions] = True
    verified: list[int] = []
    for position in sample_positions:
        index = int(predicted_positive[position])
        if oracle.ask_point_membership(index, group):
            verified.append(index)
    precision_estimate = len(verified) / sample_size

    # Phase 2: clean the unsampled remainder of G.
    remainder = predicted_positive[~sample_member_mask]
    exhausted = True
    if precision_estimate >= 1.0 - fp_threshold:
        strategy = "partition"
        cleaner = partition_positive_set
        cleaner_kwargs = {"n": n}
    else:
        strategy = "label"
        cleaner = label_positive_set
        cleaner_kwargs = {}
    if len(verified) < tau and len(remainder):
        newly_verified, exhausted = cleaner(
            oracle,
            group,
            remainder,
            stop_after=tau - len(verified),
            **cleaner_kwargs,
        )
        verified.extend(newly_verified)

    if len(verified) >= tau:
        return ClassifierCoverageResult(
            group=group,
            covered=True,
            count=len(verified),
            tau=tau,
            strategy=strategy,
            precision_estimate=precision_estimate,
            verified_count=len(verified),
            tasks=usage(),
            fallback=None,
            sample_size=sample_size,
        )

    # Phase 3: G held fewer than tau members (count now exact — the set
    # was exhausted); hunt for the classifier's false negatives in D - G.
    assert exhausted, "early stop without reaching tau is impossible"
    complement = view[~np.isin(view, predicted_positive)]
    fallback = execute_group_coverage(
        oracle, group, tau - len(verified), n=n, view=complement, on_round=on_round
    )
    return ClassifierCoverageResult(
        group=group,
        covered=fallback.covered,
        count=len(verified) + fallback.count,
        tau=tau,
        strategy=strategy,
        precision_estimate=precision_estimate,
        verified_count=len(verified),
        tasks=usage(),
        fallback=fallback,
        sample_size=sample_size,
    )


def classifier_coverage(
    oracle: Oracle,
    group: Group,
    tau: int,
    predicted_positive: np.ndarray,
    *,
    n: int = 50,
    sample_fraction: float = 0.10,
    fp_threshold: float = 0.25,
    rng: np.random.Generator,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
) -> ClassifierCoverageResult:
    """Run Algorithm 4.

    Thin wrapper over :class:`~repro.audit.ClassifierAuditSpec` — the
    :class:`~repro.audit.AuditSession` API is the blessed entry point.
    ``view`` and ``predicted_positive`` entries are validated as dataset
    indices: negative values raise :class:`InvalidParameterError`, as do
    values ``>= dataset_size`` when it is supplied.

    Parameters
    ----------
    group:
        The target group ``g``.
    predicted_positive:
        Dataset indices the classifier labeled as ``g`` (the set ``G``).
    sample_fraction:
        Fraction of ``G`` point-labeled to estimate precision (the paper
        found 10 % a good choice).
    fp_threshold:
        Choose Partition iff the estimated false-positive rate is below
        this (the paper found 25 % a good choice).
    view / dataset_size:
        The full search space; the fallback Group-Coverage runs on
        ``view`` minus ``G``.

    Returns
    -------
    ClassifierCoverageResult
    """
    from repro.audit.runners import run_spec
    from repro.audit.specs import ClassifierAuditSpec

    spec = ClassifierAuditSpec(
        group=group,
        tau=tau,
        predicted_positive=predicted_positive,
        n=n,
        sample_fraction=sample_fraction,
        fp_threshold=fp_threshold,
        view=view,
    )
    return run_spec(oracle, spec, rng=rng, dataset_size=dataset_size)
