"""Search-space ("view") resolution shared by the coverage entry points.

Every algorithm takes either an explicit ``view`` (dataset indices to
search, in physical order) or a ``dataset_size`` from which the full
view is derived. Validation lives here once: negative indices always
raise, and indices beyond ``dataset_size`` raise whenever the size is
known — numpy's negative-index wraparound would otherwise silently
answer questions about the wrong objects.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["resolve_view"]


def resolve_view(view: np.ndarray | None, dataset_size: int | None) -> np.ndarray:
    """Materialize and bounds-check the search space.

    ``view`` entries must be valid dataset indices: non-negative always,
    and ``< dataset_size`` whenever ``dataset_size`` is given alongside.
    """
    if view is None:
        if dataset_size is None:
            raise InvalidParameterError("provide either view or dataset_size")
        if dataset_size < 0:
            raise InvalidParameterError(
                f"dataset_size must be >= 0, got {dataset_size}"
            )
        return np.arange(dataset_size, dtype=np.int64)
    view = np.asarray(view, dtype=np.int64)
    if view.size:
        lowest, highest = int(view.min()), int(view.max())
        if lowest < 0:
            raise InvalidParameterError(
                f"view contains negative dataset index {lowest}"
            )
        if dataset_size is not None and highest >= dataset_size:
            raise InvalidParameterError(
                f"view contains index {highest} out of range for "
                f"dataset_size {dataset_size}"
            )
    return view
