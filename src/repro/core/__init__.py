"""The paper's core contribution: crowd-efficient coverage identification."""

from repro.core.aggregate import aggregate_groups, expected_count
from repro.core.base_coverage import base_coverage
from repro.core.bounds import (
    adversarial_tree_size,
    lower_bound_tasks,
    single_tree_upper_bound,
    upper_bound_tasks,
)
from repro.core.classifier_coverage import (
    classifier_coverage,
    label_positive_set,
    partition_positive_set,
)
from repro.core.cost_aware import (
    CostAwareResult,
    SpendingOracle,
    choose_set_size,
    cost_aware_group_coverage,
    dollar_cost_upper_bound,
)
from repro.core.group_coverage import GroupCoverageStepper, group_coverage
from repro.core.intersectional_coverage import intersectional_coverage
from repro.core.multiple_coverage import multiple_coverage
from repro.core.resolution import (
    AcquisitionPlan,
    acquisition_plan,
    find_members,
    resolve_coverage,
)
from repro.core.results import (
    ClassifierCoverageResult,
    GroupCoverageResult,
    GroupEntry,
    IntersectionalCoverageReport,
    MultipleCoverageReport,
    TaskUsage,
)
from repro.core.sampling import LabeledPool, label_samples
from repro.core.tree import PrunableQueue, TreeNode

__all__ = [
    "group_coverage",
    "GroupCoverageStepper",
    "base_coverage",
    "multiple_coverage",
    "intersectional_coverage",
    "classifier_coverage",
    "partition_positive_set",
    "label_positive_set",
    "aggregate_groups",
    "expected_count",
    "label_samples",
    "LabeledPool",
    "upper_bound_tasks",
    "lower_bound_tasks",
    "single_tree_upper_bound",
    "adversarial_tree_size",
    "TaskUsage",
    "GroupCoverageResult",
    "GroupEntry",
    "MultipleCoverageReport",
    "IntersectionalCoverageReport",
    "ClassifierCoverageResult",
    "TreeNode",
    "PrunableQueue",
    "CostAwareResult",
    "SpendingOracle",
    "choose_set_size",
    "cost_aware_group_coverage",
    "dollar_cost_upper_bound",
    "AcquisitionPlan",
    "acquisition_plan",
    "find_members",
    "resolve_coverage",
]
