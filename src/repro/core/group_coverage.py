"""Group-Coverage (Algorithm 1): divide-and-conquer coverage identification.

Given a view over the dataset, a target group ``g``, a threshold ``tau``,
and a set-query size bound ``n``, decide whether the view holds at least
``tau`` members of ``g`` while issuing as few crowd tasks as possible.

The algorithm is a group-testing style divide and conquer:

* Partition the view into ⌈N/n⌉ chunks; each chunk roots a binary tree.
* A set query with answer **no** prunes its whole subtree. A "no" on a
  *left* child additionally implies — for free — a "yes" on its queued
  right sibling (the parent contained a member; the left half does not).
* A set query with answer **yes** splits the range in half. Disjointness
  of sibling ranges turns "both children yes" into one extra *certain*
  member, tracked through each node's ``checked`` flag; the count lower
  bound ``cnt`` therefore never overstates ``|g|``.
* Stop as soon as ``cnt == tau`` (covered), or when the queue drains
  (uncovered — and then ``cnt`` is the exact member count, every member
  having been isolated in a size-1 "yes" node).

Cost: Θ(N/n + τ·log n) set queries in the worst case (Theorem 3.2 /
Lemma 3.3), against the Θ(N/n) lower bound any algorithm must pay when the
group is uncovered.

The algorithm lives in :class:`GroupCoverageStepper`, a *resumable*
formulation that emits pending set queries and consumes answers. The
:func:`group_coverage` entry point drives the same stepper in two modes:
legacy sequential (one oracle ask per query, the paper's execution
model), or through a :class:`repro.engine.QueryEngine`, which batches the
ready frontier of every tree into few oracle round-trips and shares
answers with concurrent runs. Under a deterministic oracle both modes
produce identical verdicts, counts, and discovered members; engine mode
may consume a slightly different number of tasks (cache hits save
queries, speculative final-round batches waste some around early stops).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from repro.core.results import GroupCoverageResult, LedgerWindow, TaskUsage
from repro.core.tree import PrunableQueue, TreeNode
from repro.core.views import resolve_view
from repro.crowd.oracle import Oracle
from repro.data.groups import GroupPredicate
from repro.data.membership import as_run
from repro.engine.requests import IndexKey, QueryKey, SetRequest
from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro.engine.scheduler import QueryEngine
    from repro.engine.stats import EngineStats

__all__ = ["GroupCoverageStepper", "group_coverage", "execute_group_coverage"]


def _validate(n: int, tau: int) -> None:
    if n < 1:
        raise InvalidParameterError(f"set-query size bound n must be >= 1, got {n}")
    if tau < 0:
        raise InvalidParameterError(f"tau must be >= 0, got {tau}")


class GroupCoverageStepper:
    """Algorithm 1 as a resumable state machine.

    The stepper owns the execution trees and the FIFO discipline of the
    sequential algorithm but externalises the oracle: callers pull ready
    queries from :meth:`pending` and push answers through :meth:`feed`
    until :attr:`done`.

    *Ready* means dispatchable now: every queued root and left child, plus
    each right child whose left sibling already answered "yes" (a left
    sibling's "no" implies the right child's "yes" for free, so asking it
    early would waste a task). That is exactly the per-tree frontier —
    trees never depend on each other — which is what lets an engine batch
    across trees and across concurrent runs.

    Answers are *applied* in the sequential algorithm's global FIFO order
    regardless of arrival order, so ``covered``/``count``/``discovered``
    match the sequential execution exactly under a deterministic oracle.
    """

    def __init__(
        self,
        predicate: GroupPredicate,
        tau: int,
        *,
        n: int = 50,
        view: np.ndarray,
        speculation: int = 0,
    ) -> None:
        _validate(n, tau)
        if speculation < 0:
            raise InvalidParameterError(
                f"speculation must be >= 0, got {speculation}"
            )
        self.predicate = predicate
        self.tau = tau
        self.n = n
        self.speculation = speculation
        # Bounds-checks negativity (the stepper has no dataset_size to
        # check the upper bound against; group_coverage does that).
        self._view = resolve_view(view, None)
        # When the view is one contiguous ascending run (the vanilla
        # arange case), every tree node's indices are the run
        # [view0+b, view0+e+1) — its IndexKey is then O(1) to build, and
        # vectorized oracles answer it O(1) from prefix counts.
        self._view_run = as_run(self._view)
        self._cnt = 0
        self._discovered: list[int] = []
        self._unapplied = 0  # answers fed but not yet consumed by _advance
        self._queue = PrunableQueue()
        # Keyed by node object (identity hash): keys keep their nodes
        # alive, so a recycled memory address can never alias a stale
        # answer onto a fresh node.
        self._answers: dict[TreeNode, bool] = {}
        self._requests: dict[QueryKey, TreeNode] = {}
        self._done = False
        self._covered = False
        if tau == 0:
            self._done = True
            self._covered = True
        elif len(self._view) == 0:
            self._done = True
        else:
            total = len(self._view)
            for begin in range(0, total, n):  # init roots of the subtrees
                self._queue.add(TreeNode(begin, min(begin + n, total) - 1))

    # -- stepper protocol ------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    @property
    def covered(self) -> bool:
        return self._covered

    @property
    def count(self) -> int:
        return self._cnt

    @property
    def discovered_indices(self) -> tuple[int, ...]:
        return tuple(self._discovered)

    def pending(self, limit: int | None = None) -> list[SetRequest]:
        """Every queued query that is ready to dispatch, in FIFO order.

        ``limit`` caps the scan (``limit=1`` is the sequential driver's
        O(1) "next query" — the FIFO front is always ready).

        Emission is additionally capped so that total *outstanding* work
        (queries in flight plus answers not yet consumed) never exceeds
        the certification deficit ``tau - count`` plus the
        ``speculation`` budget. One consumed answer raises the count by
        at most one, so a stop at ``count == tau`` leaves at most
        ``speculation`` paid-but-unused queries behind — the waste a
        covered run can incur is bounded by the speculation budget.
        Engine-mode callers set ``speculation`` to the engine's batch
        size: one batch of speculative look-ahead, which keeps uncovered
        groups and small-deficit runs batching wide (every query there
        is needed regardless). The FIFO front is always allowed through
        so progress never stalls."""
        if self._done:
            return []
        outstanding = len(self._requests) + self._unapplied
        emission_cap = max(
            (self.tau - self._cnt) + self.speculation - outstanding, 1
        )
        if limit is None or limit > emission_cap:
            limit = emission_cap
        ready: list[SetRequest] = []
        # The sequential driver (limit=1, nothing in flight) is the hot
        # path: skip building the in-flight set when there is none.
        in_flight = set(self._requests.values()) if self._requests else ()
        for node in self._queue:
            if len(ready) >= limit:
                break
            if node in self._answers or node in in_flight:
                # Answered, or emitted earlier and still awaiting its
                # answer — re-emitting would double-charge the oracle.
                continue
            parent = node.parent
            if (
                parent is not None
                and parent.right is node
                and self._answers.get(parent.left) is not True
            ):
                # A right child is only ever *asked* after its left
                # sibling answered "yes"; on "no" its answer is implied.
                continue
            segment = self._view[node.b_index : node.e_index + 1]
            index_key = (
                IndexKey.of_run(
                    self._view_run[0] + node.b_index,
                    self._view_run[0] + node.e_index + 1,
                )
                if self._view_run is not None
                else None
            )
            request = SetRequest(segment, self.predicate, index_key=index_key)
            self._requests[request.key] = node
            ready.append(request)
        return ready

    def feed(self, answers: Mapping[QueryKey, bool]) -> None:
        """Record answers for previously pending queries and advance."""
        for key, answer in answers.items():
            node = self._requests.pop(key, None)
            if node is None:
                raise InvalidParameterError(
                    "answer fed for a query this stepper never requested"
                )
            self._answers[node] = bool(answer)
            self._unapplied += 1
        self._advance()

    # -- result ----------------------------------------------------------
    def result(
        self,
        tasks: TaskUsage = TaskUsage(),
        engine_stats: "EngineStats | None" = None,
    ) -> GroupCoverageResult:
        if not self._done:
            raise InvalidParameterError(
                "stepper has not finished; result() is only valid when done"
            )
        return GroupCoverageResult(
            predicate=self.predicate,
            covered=self._covered,
            count=self._cnt,
            tau=self.tau,
            tasks=tasks,
            discovered_indices=tuple(self._discovered),
            engine_stats=engine_stats,
        )

    # -- internals -------------------------------------------------------
    def _advance(self) -> None:
        """Process answered nodes in global FIFO order (the sequential
        algorithm's exact pop order) until blocked, covered, or drained."""
        while not self._done:
            front = self._queue.peek()
            if front is None:
                # Queue drained below the threshold: every "yes" range was
                # driven down to singletons, so cnt is the exact member
                # count (Lemma 3.1).
                self._done = True
                return
            if front not in self._answers:
                return  # blocked on an unanswered query
            node = self._queue.pop()
            answer = self._answers[node]
            self._unapplied -= 1
            if node.is_root:
                if not answer:
                    continue  # prune the whole chunk
                self._cnt += 1
            else:
                if not answer:
                    if node.is_left_child:
                        # The parent held a member and the left half does
                        # not: the right sibling's answer is "yes" for free.
                        assert node.parent is not None and node.parent.right is not None
                        node = self._queue.remove(node.parent.right)
                    else:
                        # Right child "no": the left sibling already
                        # certified the parent's member; nothing new.
                        continue
                # `node` now carries a (possibly implied) "yes" answer.
                assert node.parent is not None
                if node.parent.checked:
                    # Both children contain members; disjoint ranges make
                    # that one additional certain member.
                    self._cnt += 1
                else:
                    node.parent.checked = True
            if node.size == 1:
                self._discovered.append(int(self._view[node.b_index]))
            if self._cnt == self.tau:
                self._done = True
                self._covered = True
                return
            if node.size > 1:
                left, right = node.split()
                self._queue.add(left)
                self._queue.add(right)


def execute_group_coverage(
    oracle: Oracle,
    predicate: GroupPredicate,
    tau: int,
    *,
    n: int = 50,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
    engine: "QueryEngine | None" = None,
    on_round: "Callable[[], None] | None" = None,
) -> GroupCoverageResult:
    """Execution backend of Algorithm 1 (see :func:`group_coverage`).

    This is what :meth:`repro.audit.AuditSession.run` dispatches a
    :class:`~repro.audit.GroupAuditSpec` to; the :func:`group_coverage`
    function form is a thin wrapper over the same code. ``on_round`` is
    invoked after every oracle round-trip (each sequential answer, each
    engine batch) — the session's progress-callback hook.
    """
    _validate(n, tau)
    view = resolve_view(view, dataset_size)
    if engine is not None:
        engine.ensure_executes_for(oracle)

    window = LedgerWindow(oracle.ledger)
    stepper = GroupCoverageStepper(
        predicate,
        tau,
        n=n,
        view=view,
        speculation=engine.speculation if engine is not None else 0,
    )
    engine_stats: "EngineStats | None" = None
    if engine is None:
        # Legacy sequential mode: ask the front of the FIFO, one query per
        # round-trip, exactly as the paper executes Algorithm 1.
        while not stepper.done:
            request = stepper.pending(limit=1)[0]
            answer = oracle.ask_set(request.indices, predicate, key=request.key)
            stepper.feed({request.key: answer})
            if on_round is not None:
                on_round()
    else:
        snapshot = engine.snapshot()
        engine.drive(stepper, on_round=on_round)
        engine_stats = engine.stats_since(snapshot)

    return stepper.result(tasks=window.usage(), engine_stats=engine_stats)


def group_coverage(
    oracle: Oracle,
    predicate: GroupPredicate,
    tau: int,
    *,
    n: int = 50,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
    engine: "QueryEngine | None" = None,
) -> GroupCoverageResult:
    """Run Algorithm 1.

    This function form is a thin wrapper over the
    :class:`~repro.audit.GroupAuditSpec` +
    :class:`~repro.audit.AuditSession` API — the blessed entry point,
    which additionally offers batched multi-spec dispatch, progress
    callbacks, serializable report envelopes, and checkpoint/resume.
    Behavior, verdicts, and task accounting are identical.

    Parameters
    ----------
    oracle:
        Answer source; every set query is charged to its ledger.
    predicate:
        The target group ``g`` (a :class:`~repro.data.groups.Group`, a
        :class:`~repro.data.groups.SuperGroup`, or any predicate).
    tau:
        Coverage threshold. ``tau <= 0`` returns covered immediately with
        zero tasks (callers that pre-credit labeled samples rely on this).
    n:
        Maximum number of objects in one set query.
    view:
        Dataset indices to search, in physical order. Defaults to
        ``arange(dataset_size)``; ``dataset_size`` is required only when
        ``view`` is omitted. Entries must be valid dataset indices:
        negative entries raise :class:`InvalidParameterError`, and when
        ``dataset_size`` is supplied alongside ``view``, entries
        ``>= dataset_size`` do too.
    engine:
        A :class:`repro.engine.QueryEngine` bound to ``oracle``. When
        given, the run's ready queries are batched into few oracle
        round-trips and answers are shared (via the engine's cache) with
        any other runs on the same engine. When omitted, queries are
        asked strictly sequentially — the paper's execution model.

    Returns
    -------
    GroupCoverageResult
        Verdict, count lower bound (exact when uncovered), tasks used, and
        the indices of individually isolated members. Engine runs attach
        :class:`~repro.engine.stats.EngineStats`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.crowd import GroundTruthOracle
    >>> from repro.data import binary_dataset, group
    >>> ds = binary_dataset(1000, 8, rng=np.random.default_rng(3))
    >>> result = group_coverage(
    ...     GroundTruthOracle(ds), group(gender="female"), tau=50,
    ...     n=50, dataset_size=len(ds))
    >>> (result.covered, result.count)
    (False, 8)

    The same audit through the engine issues the same queries in far
    fewer oracle round-trips:

    >>> from repro.engine import QueryEngine
    >>> oracle = GroundTruthOracle(ds)
    >>> batched = group_coverage(
    ...     oracle, group(gender="female"), tau=50, n=50,
    ...     dataset_size=len(ds), engine=QueryEngine(oracle))
    >>> (batched.covered, batched.count) == (result.covered, result.count)
    True
    >>> batched.tasks.n_rounds < result.tasks.n_rounds
    True
    """
    from repro.audit.runners import run_spec
    from repro.audit.session import warn_on_adhoc_engine
    from repro.audit.specs import GroupAuditSpec

    warn_on_adhoc_engine("group_coverage", oracle, engine)
    spec = GroupAuditSpec(predicate=predicate, tau=tau, n=n, view=view)
    return run_spec(oracle, spec, engine=engine, dataset_size=dataset_size)
