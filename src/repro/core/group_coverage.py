"""Group-Coverage (Algorithm 1): divide-and-conquer coverage identification.

Given a view over the dataset, a target group ``g``, a threshold ``tau``,
and a set-query size bound ``n``, decide whether the view holds at least
``tau`` members of ``g`` while issuing as few crowd tasks as possible.

The algorithm is a group-testing style divide and conquer:

* Partition the view into ⌈N/n⌉ chunks; each chunk roots a binary tree.
* A set query with answer **no** prunes its whole subtree. A "no" on a
  *left* child additionally implies — for free — a "yes" on its queued
  right sibling (the parent contained a member; the left half does not).
* A set query with answer **yes** splits the range in half. Disjointness
  of sibling ranges turns "both children yes" into one extra *certain*
  member, tracked through each node's ``checked`` flag; the count lower
  bound ``cnt`` therefore never overstates ``|g|``.
* Stop as soon as ``cnt == tau`` (covered), or when the queue drains
  (uncovered — and then ``cnt`` is the exact member count, every member
  having been isolated in a size-1 "yes" node).

Cost: Θ(N/n + τ·log n) set queries in the worst case (Theorem 3.2 /
Lemma 3.3), against the Θ(N/n) lower bound any algorithm must pay when the
group is uncovered.
"""

from __future__ import annotations

import numpy as np

from repro.crowd.oracle import Oracle
from repro.core.results import GroupCoverageResult, TaskUsage
from repro.core.tree import PrunableQueue, TreeNode
from repro.data.groups import GroupPredicate
from repro.errors import InvalidParameterError

__all__ = ["group_coverage"]


def _validate(n: int, tau: int) -> None:
    if n < 1:
        raise InvalidParameterError(f"set-query size bound n must be >= 1, got {n}")
    if tau < 0:
        raise InvalidParameterError(f"tau must be >= 0, got {tau}")


def group_coverage(
    oracle: Oracle,
    predicate: GroupPredicate,
    tau: int,
    *,
    n: int = 50,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
) -> GroupCoverageResult:
    """Run Algorithm 1.

    Parameters
    ----------
    oracle:
        Answer source; every set query is charged to its ledger.
    predicate:
        The target group ``g`` (a :class:`~repro.data.groups.Group`, a
        :class:`~repro.data.groups.SuperGroup`, or any predicate).
    tau:
        Coverage threshold. ``tau <= 0`` returns covered immediately with
        zero tasks (callers that pre-credit labeled samples rely on this).
    n:
        Maximum number of objects in one set query.
    view:
        Dataset indices to search, in physical order. Defaults to
        ``arange(dataset_size)``; ``dataset_size`` is required only when
        ``view`` is omitted.

    Returns
    -------
    GroupCoverageResult
        Verdict, count lower bound (exact when uncovered), tasks used, and
        the indices of individually isolated members.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.crowd import GroundTruthOracle
    >>> from repro.data import binary_dataset, group
    >>> ds = binary_dataset(1000, 8, rng=np.random.default_rng(3))
    >>> result = group_coverage(
    ...     GroundTruthOracle(ds), group(gender="female"), tau=50,
    ...     n=50, dataset_size=len(ds))
    >>> (result.covered, result.count)
    (False, 8)
    """
    _validate(n, tau)
    if view is None:
        if dataset_size is None:
            raise InvalidParameterError("provide either view or dataset_size")
        view = np.arange(dataset_size, dtype=np.int64)
    else:
        view = np.asarray(view, dtype=np.int64)

    ledger = oracle.ledger
    start_sets, start_points = ledger.n_set_queries, ledger.n_point_queries

    def usage() -> TaskUsage:
        return TaskUsage(
            ledger.n_set_queries - start_sets,
            ledger.n_point_queries - start_points,
        )

    def result(covered: bool, cnt: int, discovered: list[int]) -> GroupCoverageResult:
        return GroupCoverageResult(
            predicate=predicate,
            covered=covered,
            count=cnt,
            tau=tau,
            tasks=usage(),
            discovered_indices=tuple(discovered),
        )

    if tau == 0:
        return result(True, 0, [])
    total = len(view)
    if total == 0:
        return result(False, 0, [])

    cnt = 0
    discovered: list[int] = []
    queue = PrunableQueue()
    for begin in range(0, total, n):  # init roots of the subtrees
        queue.add(TreeNode(begin, min(begin + n, total) - 1))

    while queue:
        node = queue.pop()
        answer = oracle.ask_set(
            view[node.b_index : node.e_index + 1], predicate
        )
        if node.is_root:
            if answer:
                cnt += 1
            else:
                continue  # prune the whole chunk
        else:
            if not answer:
                if node.is_left_child:
                    # The parent held a member and the left half does not:
                    # the right sibling's answer is "yes" for free.
                    assert node.parent is not None and node.parent.right is not None
                    node = queue.remove(node.parent.right)
                else:
                    # Right child "no": the left sibling already certified
                    # the parent's member; nothing new to learn.
                    continue
            # `node` now carries a (possibly implied) "yes" answer.
            assert node.parent is not None
            if node.parent.checked:
                # Both children of this parent contain members; the ranges
                # are disjoint, so that is one additional certain member.
                cnt += 1
            else:
                node.parent.checked = True
        if node.size == 1:
            discovered.append(int(view[node.b_index]))
        if cnt == tau:
            return result(True, cnt, discovered)
        if node.size > 1:
            left, right = node.split()
            queue.add(left)
            queue.add(right)

    # Queue drained below the threshold: every "yes" range was driven down
    # to singletons, so cnt is the exact member count (Lemma 3.1).
    return result(False, cnt, discovered)
