"""Intersectional-Coverage (Algorithm 3): MUP discovery over crowd labels.

For multiple attributes the uncovered region is reported as *maximal
uncovered patterns* (MUPs). Algorithm 3 reduces the problem to the
fully-specified subgroups (the pattern-graph leaves — their count is what
every other pattern's count sums from), solves those with
Multiple-Coverage (sibling-constrained super-groups), and rolls verdicts
up the pattern graph with the Pattern-Combiner arithmetic — costing zero
additional crowd tasks beyond the leaf level.

Implementation note (DESIGN.md deviation 7/8): the paper's upward
propagation pseudo-code is replaced by the equivalent exact roll-up in
:func:`repro.patterns.combiner.combine_leaf_coverage`, which requires
exact counts for uncovered leaves; we obtain them by attributing the
members isolated inside uncovered super-groups with one point query each
(``attribute_supergroup_members=True``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.multiple_coverage import execute_multiple_coverage
from repro.core.results import IntersectionalCoverageReport, LedgerWindow
from repro.core.views import resolve_view
from repro.crowd.oracle import Oracle
from repro.data.schema import Schema
from repro.errors import InvalidParameterError
from repro.patterns.combiner import LeafCoverage, combine_leaf_coverage
from repro.patterns.graph import PatternGraph

if TYPE_CHECKING:
    from repro.engine.scheduler import QueryEngine

__all__ = ["intersectional_coverage", "execute_intersectional_coverage"]


def execute_intersectional_coverage(
    oracle: Oracle,
    schema: Schema,
    tau: int,
    *,
    n: int = 50,
    c: float = 2.0,
    rng: np.random.Generator,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
    engine: "QueryEngine | None" = None,
    on_round: Callable[[], None] | None = None,
) -> IntersectionalCoverageReport:
    """Execution backend of Algorithm 3 (see :func:`intersectional_coverage`).

    Dispatched to by :meth:`repro.audit.AuditSession.run` for an
    :class:`~repro.audit.IntersectionalAuditSpec`; ``on_round`` is
    forwarded to the leaf-level Multiple-Coverage solve.
    """
    if schema.n_attributes < 1:
        raise InvalidParameterError("schema must have at least one attribute")
    # Validate the search space up front: bad view indices fail here, not
    # deep inside the leaf solve after the sampling phase spent budget.
    view = resolve_view(view, dataset_size) if view is not None else None
    graph = PatternGraph(schema)
    leaves = graph.leaves()
    leaf_groups = [leaf.to_group() for leaf in leaves]

    window = LedgerWindow(oracle.ledger)
    leaf_report = execute_multiple_coverage(
        oracle,
        leaf_groups,
        tau,
        n=n,
        c=c,
        rng=rng,
        view=view,
        dataset_size=dataset_size,
        multi=True,
        attribute_supergroup_members=True,
        engine=engine,
        on_round=on_round,
    )

    leaf_results = {}
    for leaf, group in zip(leaves, leaf_groups):
        entry = leaf_report.entry_for(group)
        # Covered leaves carry the tau certificate; uncovered leaves carry
        # exact counts (guaranteed by attribute_supergroup_members=True).
        count = max(entry.count, tau) if entry.covered else entry.count
        leaf_results[leaf] = LeafCoverage(covered=entry.covered, count=count)

    pattern_report = combine_leaf_coverage(graph, leaf_results, tau)
    return IntersectionalCoverageReport(
        leaf_report=leaf_report,
        pattern_report=pattern_report,
        tasks=window.usage(),
        engine_stats=leaf_report.engine_stats,
    )


def intersectional_coverage(
    oracle: Oracle,
    schema: Schema,
    tau: int,
    *,
    n: int = 50,
    c: float = 2.0,
    rng: np.random.Generator,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
    engine: "QueryEngine | None" = None,
) -> IntersectionalCoverageReport:
    """Run Algorithm 3 over all attributes of ``schema``.

    Thin wrapper over :class:`~repro.audit.IntersectionalAuditSpec` — the
    :class:`~repro.audit.AuditSession` API is the blessed entry point.
    ``view`` entries are validated up front (negative indices raise
    :class:`InvalidParameterError`, as do indices ``>= dataset_size`` when
    both are supplied).

    Parameters mirror :func:`~repro.core.multiple_coverage.multiple_coverage`;
    the target groups are derived internally as the fully-specified
    subgroups (the Cartesian product of all attribute values). Passing an
    ``engine`` batches and deduplicates the leaf-level crowd work — the
    sibling-constrained super-groups then share cached answers — without
    changing verdicts under a deterministic oracle.

    Returns
    -------
    IntersectionalCoverageReport
        Leaf verdicts, the full pattern-graph report, and the MUPs.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.crowd import GroundTruthOracle
    >>> from repro.data import Schema, intersectional_dataset
    >>> schema = Schema.from_dict(
    ...     {"gender": ["male", "female"], "race": ["white", "black"]})
    >>> ds = intersectional_dataset(
    ...     schema,
    ...     {("male", "white"): 500, ("female", "white"): 120,
    ...      ("male", "black"): 80, ("female", "black"): 4},
    ...     rng=np.random.default_rng(5))
    >>> report = intersectional_coverage(
    ...     GroundTruthOracle(ds), schema, tau=50,
    ...     rng=np.random.default_rng(6), dataset_size=len(ds))
    >>> [m.describe() for m in report.mups]
    ['female-black']
    """
    from repro.audit.runners import run_spec
    from repro.audit.session import warn_on_adhoc_engine
    from repro.audit.specs import IntersectionalAuditSpec

    warn_on_adhoc_engine("intersectional_coverage", oracle, engine)
    spec = IntersectionalAuditSpec(schema=schema, tau=tau, n=n, c=c, view=view)
    return run_spec(oracle, spec, engine=engine, rng=rng, dataset_size=dataset_size)
