"""LabelSamples (Algorithm 6, part 1): the sampling phase of §4.

Multiple-Coverage starts by point-labeling ``c·tau`` random objects
(``c = 2`` by default — "we found c = 2 as a good choice"). The labels
serve two purposes at once:

* they estimate group frequencies, from which Algorithm 6's ``Aggregate``
  forms super-groups, and
* they are *reused*: labeled objects move from the unlabeled pool ``D`` to
  the labeled pool ``L``, their group memberships pre-credit the per-group
  thresholds, and they are never asked about again.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.crowd.oracle import Oracle
from repro.data.groups import Group, GroupPredicate, Negation, SuperGroup
from repro.errors import InvalidParameterError

__all__ = ["LabeledPool", "label_samples"]


class LabeledPool:
    """Objects whose labels the crowd has already provided.

    Maps dataset index to the ``{attribute: value}`` labeling the crowd
    returned (which, under a noisy oracle, may differ from ground truth —
    downstream logic treats it as truth, exactly like the paper does).

    Storage is columnar: besides the row dicts, the pool maintains one
    integer-code array per attribute (codes assigned per pool in
    first-seen order, ``-1`` for rows missing the attribute), so
    :meth:`count` and :meth:`members` — which Multiple-Coverage calls
    once per group per super-group — are NumPy reductions instead of a
    Python loop over every labeled row.
    """

    def __init__(self, rows: Mapping[int, Mapping[str, str]] | None = None) -> None:
        self.rows: dict[int, dict[str, str]] = {}
        #: insertion-ordered dataset indices, parallel to the columns
        self._order: list[int] = []
        #: dataset index -> position in ``_order``
        self._positions: dict[int, int] = {}
        #: attribute name -> per-row value codes (grown lazily)
        self._columns: dict[str, list[int]] = {}
        #: attribute name -> value -> pool-local code
        self._codings: dict[str, dict[str, int]] = {}
        #: compiled ``np.asarray`` views of ``_columns`` (invalidated on add)
        self._compiled: dict[str, np.ndarray] | None = None
        if rows:
            for index, labels in rows.items():
                self.add(index, labels)

    def add(self, index: int, labels: Mapping[str, str]) -> None:
        index = int(index)
        row = {str(k): str(v) for k, v in labels.items()}
        self._compiled = None
        position = self._positions.get(index)
        if position is None:
            position = len(self._order)
            self._positions[index] = position
            self._order.append(index)
            for column in self._columns.values():
                column.append(-1)
        else:
            # Relabeling an index overwrites in place, keeping its
            # original insertion position (dict semantics).
            for column in self._columns.values():
                column[position] = -1
        self.rows[index] = row
        size = len(self._order)
        for name, value in row.items():
            column = self._columns.get(name)
            if column is None:
                column = [-1] * size
                self._columns[name] = column
                self._codings[name] = {}
            coding = self._codings[name]
            code = coding.setdefault(value, len(coding))
            column[position] = code

    # ------------------------------------------------------------------
    # vectorized predicate evaluation
    # ------------------------------------------------------------------
    def _column(self, name: str) -> np.ndarray:
        if self._compiled is None:
            self._compiled = {}
        compiled = self._compiled.get(name)
        if compiled is None:
            compiled = np.asarray(self._columns[name], dtype=np.int32)
            self._compiled[name] = compiled
        return compiled

    def _mask(self, predicate: GroupPredicate) -> np.ndarray:
        """Boolean membership of ``predicate`` over the pool's rows, in
        insertion order."""
        size = len(self._order)
        if isinstance(predicate, Group):
            mask = np.ones(size, dtype=bool)
            for name, value in predicate.conditions:
                coding = self._codings.get(name)
                code = -2 if coding is None else coding.get(value, -2)
                if code < 0:  # attribute or value never labeled: no row matches
                    return np.zeros(size, dtype=bool)
                mask &= self._column(name) == code
            return mask
        if isinstance(predicate, SuperGroup):
            mask = np.zeros(size, dtype=bool)
            for member in predicate.members:
                mask |= self._mask(member)
            return mask
        if isinstance(predicate, Negation):
            return ~self._mask(predicate.inner)
        # Unknown predicate type: fall back to row-at-a-time semantics.
        return np.fromiter(
            (predicate.matches_row(self.rows[index]) for index in self._order),
            dtype=bool,
            count=size,
        )

    def count(self, predicate: GroupPredicate) -> int:
        """``L.count(g)``: labeled objects satisfying ``predicate``."""
        if not self._order:
            return 0
        return int(self._mask(predicate).sum())

    def members(self, predicate: GroupPredicate) -> tuple[int, ...]:
        """Indices of labeled objects satisfying ``predicate``, in
        insertion order."""
        if not self._order:
            return ()
        mask = self._mask(predicate)
        order = np.asarray(self._order, dtype=np.int64)
        return tuple(int(index) for index in order[mask])

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, index: object) -> bool:
        return index in self.rows

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"LabeledPool({len(self.rows)} rows)"


def sample_size_for(tau: int, c: float, view_size: int) -> int:
    """The sampling phase's size: ``min(⌈c·τ⌉, |view|)``.

    The paper budgets ``c·τ`` point queries; a fractional product rounds
    **up** — ``int(round(...))`` banker's-rounds half-integer products
    down (``c=2.5, τ=1 → 2``) and silently under-samples. The product is
    pre-rounded at 9 decimals so float artifacts (``0.1 * 30 =
    3.0000…04``) do not inflate the ceiling.
    """
    return min(math.ceil(round(c * tau, 9)), view_size)


def label_samples(
    oracle: Oracle,
    view: np.ndarray,
    tau: int,
    *,
    c: float = 2.0,
    rng: np.random.Generator,
    pool: LabeledPool | None = None,
    batched: bool = False,
) -> tuple[np.ndarray, LabeledPool]:
    """Label ``min(⌈c·tau⌉, |view|)`` random objects of ``view``.

    Returns the reduced view (labeled objects removed, original order
    preserved — Algorithm 6 line 4: ``D.remove(t)``) and the labeled pool.

    Parameters
    ----------
    pool:
        An existing pool to extend; a fresh one is created when omitted.
    batched:
        Publish all point queries in one oracle round-trip
        (:meth:`~repro.crowd.oracle.Oracle.ask_point_batch`) instead of
        one at a time. Same tasks, same labels under a deterministic
        oracle; engine-mode Multiple-Coverage sets this.

    >>> import numpy as np
    >>> from repro.crowd import GroundTruthOracle
    >>> from repro.data import binary_dataset
    >>> rng = np.random.default_rng(0)
    >>> ds = binary_dataset(100, 10, rng=rng)
    >>> view, pool = label_samples(
    ...     GroundTruthOracle(ds), np.arange(100), tau=5, rng=rng)
    >>> (len(view), len(pool))
    (90, 10)
    """
    if tau < 0:
        raise InvalidParameterError(f"tau must be >= 0, got {tau}")
    if c < 0:
        raise InvalidParameterError(f"sample-size parameter c must be >= 0, got {c}")
    view = np.asarray(view, dtype=np.int64)
    pool = pool if pool is not None else LabeledPool()

    sample_size = sample_size_for(tau, c, len(view))
    if sample_size == 0:
        return view, pool
    chosen_positions = rng.choice(len(view), size=sample_size, replace=False)
    if batched:
        chosen_indices = [int(view[position]) for position in chosen_positions]
        for index, labels in zip(
            chosen_indices, oracle.ask_point_batch(chosen_indices)
        ):
            pool.add(index, labels)
    else:
        for position in chosen_positions:
            index = int(view[position])
            pool.add(index, oracle.ask_point(index))
    keep = np.ones(len(view), dtype=bool)
    keep[chosen_positions] = False
    return view[keep], pool
