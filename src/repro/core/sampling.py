"""LabelSamples (Algorithm 6, part 1): the sampling phase of §4.

Multiple-Coverage starts by point-labeling ``c·tau`` random objects
(``c = 2`` by default — "we found c = 2 as a good choice"). The labels
serve two purposes at once:

* they estimate group frequencies, from which Algorithm 6's ``Aggregate``
  forms super-groups, and
* they are *reused*: labeled objects move from the unlabeled pool ``D`` to
  the labeled pool ``L``, their group memberships pre-credit the per-group
  thresholds, and they are never asked about again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.crowd.oracle import Oracle
from repro.data.groups import GroupPredicate
from repro.errors import InvalidParameterError

__all__ = ["LabeledPool", "label_samples"]


@dataclass
class LabeledPool:
    """Objects whose labels the crowd has already provided.

    Maps dataset index to the ``{attribute: value}`` labeling the crowd
    returned (which, under a noisy oracle, may differ from ground truth —
    downstream logic treats it as truth, exactly like the paper does).
    """

    rows: dict[int, dict[str, str]] = field(default_factory=dict)

    def add(self, index: int, labels: Mapping[str, str]) -> None:
        self.rows[int(index)] = dict(labels)

    def count(self, predicate: GroupPredicate) -> int:
        """``L.count(g)``: labeled objects satisfying ``predicate``."""
        return sum(1 for labels in self.rows.values() if predicate.matches_row(labels))

    def members(self, predicate: GroupPredicate) -> tuple[int, ...]:
        """Indices of labeled objects satisfying ``predicate``."""
        return tuple(
            index
            for index, labels in self.rows.items()
            if predicate.matches_row(labels)
        )

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, index: object) -> bool:
        return index in self.rows


def label_samples(
    oracle: Oracle,
    view: np.ndarray,
    tau: int,
    *,
    c: float = 2.0,
    rng: np.random.Generator,
    pool: LabeledPool | None = None,
    batched: bool = False,
) -> tuple[np.ndarray, LabeledPool]:
    """Label ``min(c·tau, |view|)`` random objects of ``view``.

    Returns the reduced view (labeled objects removed, original order
    preserved — Algorithm 6 line 4: ``D.remove(t)``) and the labeled pool.

    Parameters
    ----------
    pool:
        An existing pool to extend; a fresh one is created when omitted.
    batched:
        Publish all point queries in one oracle round-trip
        (:meth:`~repro.crowd.oracle.Oracle.ask_point_batch`) instead of
        one at a time. Same tasks, same labels under a deterministic
        oracle; engine-mode Multiple-Coverage sets this.

    >>> import numpy as np
    >>> from repro.crowd import GroundTruthOracle
    >>> from repro.data import binary_dataset
    >>> rng = np.random.default_rng(0)
    >>> ds = binary_dataset(100, 10, rng=rng)
    >>> view, pool = label_samples(
    ...     GroundTruthOracle(ds), np.arange(100), tau=5, rng=rng)
    >>> (len(view), len(pool))
    (90, 10)
    """
    if tau < 0:
        raise InvalidParameterError(f"tau must be >= 0, got {tau}")
    if c < 0:
        raise InvalidParameterError(f"sample-size parameter c must be >= 0, got {c}")
    view = np.asarray(view, dtype=np.int64)
    pool = pool if pool is not None else LabeledPool()

    sample_size = min(int(round(c * tau)), len(view))
    if sample_size == 0:
        return view, pool
    chosen_positions = rng.choice(len(view), size=sample_size, replace=False)
    if batched:
        chosen_indices = [int(view[position]) for position in chosen_positions]
        for index, labels in zip(
            chosen_indices, oracle.ask_point_batch(chosen_indices)
        ):
            pool.add(index, labels)
    else:
        for position in chosen_positions:
            index = int(view[position])
            pool.add(index, oracle.ask_point(index))
    keep = np.ones(len(view), dtype=bool)
    keep[chosen_positions] = False
    return view[keep], pool
