"""Aggregate (Algorithm 6, part 2): forming super-groups.

Given the sampling-phase counts, estimate each group's dataset-wide count
as ``E[|g|] = N · L.count(g) / |L|`` and greedily merge expected-minority
groups into *super-groups* whose expected total stays below ``tau`` — one
Group-Coverage run can then certify all of them uncovered at once.

Exactly as the pseudo-code: groups are sorted by sampled count ascending
(minorities first, so they merge together), then scanned once; a group
joins the current super-group while the running expected sum stays
``< tau``, otherwise the current super-group is emitted and a new one
starts.

With ``multi=True`` (the intersectional case, §4) a super-group may only
contain *sibling* fully-specified subgroups — groups that agree on every
attribute except one, i.e. children of a common parent pattern — because
the roll-up of §3.3.2 needs super-groups to live under one parent.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.sampling import LabeledPool
from repro.data.groups import Group, SuperGroup
from repro.errors import InvalidParameterError

__all__ = ["aggregate_groups", "expected_count"]


def expected_count(pool: LabeledPool, group: Group, dataset_size: int) -> float:
    """``E[|g|] = N · L.count(g) / |L|`` (0 when the pool is empty)."""
    if not len(pool):
        return 0.0
    return dataset_size * pool.count(group) / len(pool)


def _can_join(members: Sequence[Group], candidate: Group) -> bool:
    """Sibling test for ``multi=True``: is there one attribute on which all
    of ``members + [candidate]`` may differ while agreeing on the rest?"""
    if not members:
        return True
    reference = members[0]
    if reference.attributes != candidate.attributes:
        return False
    attributes = reference.attributes
    all_groups = [*members, candidate]
    for free_position in range(len(attributes)):
        agrees_elsewhere = all(
            all(
                g.conditions[j][1] == reference.conditions[j][1]
                for j in range(len(attributes))
                if j != free_position
            )
            for g in all_groups
        )
        if agrees_elsewhere:
            return True
    return False


def aggregate_groups(
    pool: LabeledPool,
    dataset_size: int,
    tau: int,
    groups: Sequence[Group],
    *,
    multi: bool = False,
) -> tuple[SuperGroup, ...]:
    """Partition ``groups`` into super-groups (singletons allowed).

    Parameters
    ----------
    pool:
        The sampling-phase labels (drives the expected counts).
    dataset_size:
        ``N`` in the expectation formula — the size of the dataset whose
        counts are being estimated.
    tau:
        Coverage threshold.
    groups:
        The candidate groups (one attribute's values, or the
        fully-specified subgroups in the intersectional case).
    multi:
        Enforce the sibling constraint (see module docstring).

    Returns
    -------
    tuple[SuperGroup, ...]
        Super-groups covering every input group exactly once.

    >>> from repro.core.sampling import LabeledPool
    >>> from repro.data import group
    >>> pool = LabeledPool()
    >>> for i in range(93):
    ...     pool.add(i, {"race": "white"})
    >>> for i in range(93, 95):
    ...     pool.add(i, {"race": "black"})
    >>> gs = [group(race="white"), group(race="black"), group(race="asian")]
    >>> supers = aggregate_groups(pool, 1000, 50, gs)
    >>> sorted(len(s) for s in supers)   # black+asian merge, white alone
    [1, 2]
    """
    if tau <= 0:
        raise InvalidParameterError(f"tau must be positive, got {tau}")
    if dataset_size < 0:
        raise InvalidParameterError(f"dataset_size must be >= 0, got {dataset_size}")
    if len(set(groups)) != len(groups):
        raise InvalidParameterError("duplicate groups passed to aggregate_groups")
    if not groups:
        return ()

    # Sort by sampled count ascending (stable; describe() breaks ties so
    # runs are deterministic under a fixed seed).
    ordered = sorted(groups, key=lambda g: (pool.count(g), g.describe()))

    super_groups: list[SuperGroup] = []
    current: list[Group] = []
    running_sum = 0.0
    for candidate in ordered:
        expectation = expected_count(pool, candidate, dataset_size)
        joinable = not multi or _can_join(current, candidate)
        if current and joinable and running_sum + expectation < tau:
            current.append(candidate)
            running_sum += expectation
        elif not current and expectation < tau:
            # First member of a fresh super-group: admit it as long as the
            # group itself is expected uncovered; expected-covered groups
            # always stand alone.
            current = [candidate]
            running_sum = expectation
        else:
            if current:
                super_groups.append(SuperGroup(current))
            current = [candidate]
            running_sum = expectation
    if current:
        super_groups.append(SuperGroup(current))
    return tuple(super_groups)
