"""Base-Coverage (Algorithm 7): the one-point-query-per-object baseline.

The straightforward strategy the paper compares against: walk the dataset
object by object, asking the crowd whether each belongs to the target
group, and stop when ``tau`` members have been found (covered) or the data
is exhausted (uncovered). Costs Θ(position of the tau-th member) point
queries when covered and exactly ``N`` when uncovered.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.results import GroupCoverageResult, LedgerWindow
from repro.core.views import resolve_view
from repro.crowd.oracle import Oracle
from repro.data.groups import GroupPredicate
from repro.errors import InvalidParameterError

__all__ = ["base_coverage", "execute_base_coverage"]


def execute_base_coverage(
    oracle: Oracle,
    predicate: GroupPredicate,
    tau: int,
    *,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
    on_round: Callable[[], None] | None = None,
) -> GroupCoverageResult:
    """Execution backend of Algorithm 7 (see :func:`base_coverage`).

    Dispatched to by :meth:`repro.audit.AuditSession.run` for a
    :class:`~repro.audit.BaseAuditSpec`; ``on_round`` fires after every
    point query (the session's progress hook).
    """
    if tau < 0:
        raise InvalidParameterError(f"tau must be >= 0, got {tau}")
    view = resolve_view(view, dataset_size)

    window = LedgerWindow(oracle.ledger)
    cnt = 0
    discovered: list[int] = []
    covered = tau == 0
    if not covered:
        for index in view:
            is_member = oracle.ask_point_membership(int(index), predicate)
            if on_round is not None:
                on_round()
            if is_member:
                cnt += 1
                discovered.append(int(index))
                if cnt == tau:
                    covered = True
                    break

    return GroupCoverageResult(
        predicate=predicate,
        covered=covered,
        count=cnt,
        tau=tau,
        tasks=window.usage(),
        discovered_indices=tuple(discovered),
    )


def base_coverage(
    oracle: Oracle,
    predicate: GroupPredicate,
    tau: int,
    *,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
) -> GroupCoverageResult:
    """Run Algorithm 7.

    Parameters mirror :func:`repro.core.group_coverage.group_coverage`
    minus the set-query bound (this baseline only issues point queries).
    Thin wrapper over :class:`~repro.audit.BaseAuditSpec` — the
    :class:`~repro.audit.AuditSession` API is the blessed entry point.

    >>> import numpy as np
    >>> from repro.crowd import GroundTruthOracle
    >>> from repro.data import binary_dataset, group
    >>> ds = binary_dataset(200, 120, rng=np.random.default_rng(0))
    >>> result = base_coverage(GroundTruthOracle(ds), group(gender="female"),
    ...                        tau=5, dataset_size=len(ds))
    >>> result.covered, result.tasks.n_point_queries <= 30
    (True, True)
    """
    from repro.audit.runners import run_spec
    from repro.audit.specs import BaseAuditSpec

    spec = BaseAuditSpec(predicate=predicate, tau=tau, view=view)
    return run_spec(oracle, spec, dataset_size=dataset_size)
