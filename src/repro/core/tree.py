"""The execution-tree data structures of Algorithm 1.

The paper implements Group-Coverage over a binary tree whose nodes carry::

    struct node:
        b_index      // beginning index of the range
        e_index      // end index of the range
        parent=null, left=null, right=null,
        checked=false   // true once one child returned a yes answer

plus a FIFO queue that supports removing a *specific* enqueued node
(line 12 of Algorithm 1: ``T <- Q.del(T.parent.right)`` — when a left child
answers "no", its right sibling's answer is implied "yes" and the sibling
must be pulled out of the queue without being asked). :class:`PrunableQueue`
implements that with lazy deletion.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import InvalidParameterError

__all__ = ["TreeNode", "PrunableQueue"]


class TreeNode:
    """One set query's range ``[b_index, e_index]`` (inclusive positions in
    the current view) plus tree links and the ``checked`` flag."""

    __slots__ = ("b_index", "e_index", "parent", "left", "right", "checked")

    def __init__(
        self, b_index: int, e_index: int, parent: Optional["TreeNode"] = None
    ) -> None:
        if b_index < 0 or e_index < b_index:
            raise InvalidParameterError(
                f"invalid node range [{b_index}, {e_index}]"
            )
        self.b_index = b_index
        self.e_index = e_index
        self.parent = parent
        self.left: TreeNode | None = None
        self.right: TreeNode | None = None
        self.checked = False

    @property
    def size(self) -> int:
        return self.e_index - self.b_index + 1

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_left_child(self) -> bool:
        return self.parent is not None and self.parent.left is self

    def split(self) -> tuple["TreeNode", "TreeNode"]:
        """Create and link the two half-range children (paper line 18:
        left gets ``[b, floor((b+e)/2)]``, right the rest)."""
        if self.size < 2:
            raise InvalidParameterError("cannot split a singleton node")
        middle = (self.b_index + self.e_index) // 2
        self.left = TreeNode(self.b_index, middle, parent=self)
        self.right = TreeNode(middle + 1, self.e_index, parent=self)
        return self.left, self.right

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"TreeNode[{self.b_index}, {self.e_index}]"


class PrunableQueue:
    """FIFO queue of :class:`TreeNode` with O(1) removal of a known member.

    Removal is lazy: removed nodes stay in the deque but are skipped on
    pop. Membership is tracked by object identity — tree nodes are unique.
    """

    def __init__(self) -> None:
        self._items: deque[TreeNode] = deque()
        # id -> number of stale (lazily deleted) entries still in _items.
        # A counter, not a set: the same node may be removed, re-added,
        # and removed again before its stale entries drain.
        self._removed: dict[int, int] = {}
        self._live: set[int] = set()

    def add(self, node: TreeNode) -> None:
        if id(node) in self._live:
            raise InvalidParameterError("node is already enqueued")
        self._items.append(node)
        self._live.add(id(node))

    def pop(self) -> TreeNode:
        """Remove and return the oldest live node.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        while self._items:
            node = self._items.popleft()
            stale = self._removed.get(id(node), 0)
            if stale:
                if stale == 1:
                    del self._removed[id(node)]
                else:
                    self._removed[id(node)] = stale - 1
                continue
            self._live.discard(id(node))
            return node
        raise IndexError("pop from empty PrunableQueue")

    def peek(self) -> TreeNode | None:
        """The oldest live node without removing it, or ``None`` when
        empty. Stale front entries are drained as a side effect (the
        observable FIFO state is unchanged)."""
        while self._items:
            node = self._items[0]
            stale = self._removed.get(id(node), 0)
            if stale:
                self._items.popleft()
                if stale == 1:
                    del self._removed[id(node)]
                else:
                    self._removed[id(node)] = stale - 1
                continue
            return node
        return None

    def __iter__(self):
        """Yield the live nodes in FIFO order without consuming them.

        When a node was removed and re-added, the *older* deque entry is
        the stale one (``pop`` drains in the same order), so the first
        occurrences are skipped until the stale count is used up.
        """
        seen_stale: dict[int, int] = {}
        for node in self._items:
            stale_total = self._removed.get(id(node), 0)
            used = seen_stale.get(id(node), 0)
            if used < stale_total:
                seen_stale[id(node)] = used + 1
                continue
            yield node

    def remove(self, node: TreeNode) -> TreeNode:
        """Remove a specific enqueued node (the ``Q.del`` of Algorithm 1)
        and return it.

        Raises
        ------
        InvalidParameterError
            If the node is not currently enqueued.
        """
        if id(node) not in self._live:
            raise InvalidParameterError("node is not in the queue")
        self._live.discard(id(node))
        self._removed[id(node)] = self._removed.get(id(node), 0) + 1
        return node

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)
