"""Cost-aware auditing under non-fixed pricing (the paper's §8 future work).

Under the paper's fixed pricing, minimizing tasks minimizes dollars and
the set-size bound ``n`` is chosen by crowd ergonomics alone. Under
size-dependent pricing (bigger HITs pay more), ``n`` becomes an
optimization variable:

* worst-case task structure (Lemma 3.3): ``⌈N/n⌉`` level-1 queries of
  size ``n`` plus, per "yes" leaf (≤ τ of them), an isolation path of
  ≤ ``⌈log₂ n⌉`` levels whose two queries at depth ``d`` show ``n / 2^d``
  images each;
* pricing each query at its display size yields a closed-form worst-case
  dollar bound, :func:`dollar_cost_upper_bound`;
* :func:`choose_set_size` minimizes that bound over a candidate grid, and
  :func:`cost_aware_group_coverage` runs Algorithm 1 at the optimum
  against a size-dependent ledger.

The A4 ablation bench sweeps the pricing slope and shows the optimum
moving from large sets (slope ≈ 0: classic regime, ``n`` as big as the
crowd tolerates) to small sets (steep slopes: showing images is what
costs, so pruning whole chunks buys little).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.group_coverage import group_coverage
from repro.core.results import GroupCoverageResult
from repro.crowd.oracle import Oracle
from repro.crowd.pricing import SizeDependentPricing
from repro.data.groups import GroupPredicate
from repro.errors import InvalidParameterError

__all__ = [
    "dollar_cost_upper_bound",
    "choose_set_size",
    "cost_aware_group_coverage",
    "CostAwareResult",
    "SpendingOracle",
]


def dollar_cost_upper_bound(
    N: int,
    n: int,
    tau: int,
    pricing: SizeDependentPricing,
    *,
    assignments_per_hit: int = 1,
) -> float:
    """Worst-case dollar cost of Group-Coverage at set-size bound ``n``.

    Sums the level-1 chunk queries (each showing ``n`` images) and, for
    each of up to ``tau`` yes leaves, a root-to-leaf isolation path with
    two queries per level showing geometrically shrinking sets.

    >>> flat = SizeDependentPricing(base_price=0.1, per_image=0.0)
    >>> a = dollar_cost_upper_bound(10_000, 10, 50, flat)
    >>> b = dollar_cost_upper_bound(10_000, 50, 50, flat)
    >>> a > b   # with pure per-HIT pricing, tiny sets waste money
    True
    """
    if N < 0 or n < 1 or tau < 0:
        raise InvalidParameterError("need N >= 0, n >= 1, tau >= 0")
    chunk_cost = math.ceil(N / n) * pricing.query_price(n)
    isolation_cost = 0.0
    size = n
    while size > 1:
        half = (size + 1) // 2
        isolation_cost += 2 * pricing.query_price(half)
        size = half
    total = chunk_cost + tau * isolation_cost
    return total * assignments_per_hit * (1.0 + pricing.service_fee_rate)


def choose_set_size(
    N: int,
    tau: int,
    pricing: SizeDependentPricing,
    *,
    candidates: Sequence[int] | None = None,
    n_max: int = 400,
) -> int:
    """The candidate ``n`` minimizing :func:`dollar_cost_upper_bound`.

    ``n_max`` caps the search at what the crowd can reasonably eyeball in
    one HIT (the paper's practical concern about very large sets).
    """
    if n_max < 1:
        raise InvalidParameterError("n_max must be >= 1")
    if candidates is None:
        candidates = sorted(
            {
                n
                for n in (1, 2, 5, 10, 20, 30, 50, 75, 100, 150, 200, 300, 400)
                if n <= n_max
            }
        )
    if not candidates:
        raise InvalidParameterError("no set-size candidates")
    return min(
        candidates,
        key=lambda n: dollar_cost_upper_bound(N, n, tau, pricing),
    )


class SpendingOracle(Oracle):
    """Decorates an oracle with a size-dependent dollar ledger.

    Tasks are still charged to the inner oracle; this wrapper additionally
    totals worker payments + fees under the given pricing.
    """

    def __init__(self, inner: Oracle, pricing: SizeDependentPricing) -> None:
        super().__init__(inner.schema, budget=None)
        self.inner = inner
        self.pricing = pricing
        self.dollars_spent = 0.0

    def _spend(self, n_images: int) -> None:
        payment = self.pricing.query_price(n_images)
        self.dollars_spent += payment + self.pricing.fee(payment)

    def _answer_set(self, indices: np.ndarray, predicate: GroupPredicate) -> bool:
        self._spend(len(indices))
        return self.inner._answer_set(indices, predicate)

    def _answer_point(self, index: int) -> dict[str, str]:
        self._spend(1)
        return self.inner._answer_point(index)


@dataclass(frozen=True)
class CostAwareResult:
    """A Group-Coverage result plus the dollar accounting that chose it."""

    chosen_n: int
    predicted_cost_bound: float
    dollars_spent: float
    result: GroupCoverageResult


def cost_aware_group_coverage(
    oracle: Oracle,
    predicate: GroupPredicate,
    tau: int,
    pricing: SizeDependentPricing,
    *,
    view: np.ndarray | None = None,
    dataset_size: int | None = None,
    n_max: int = 400,
) -> CostAwareResult:
    """Pick the dollar-optimal ``n`` for the pricing model, then run
    Algorithm 1 with dollar accounting.

    Returns the chosen ``n``, the worst-case dollar bound that selected
    it, the dollars actually spent, and the inner coverage result.
    """
    if view is None:
        if dataset_size is None:
            raise InvalidParameterError("provide either view or dataset_size")
        total = dataset_size
    else:
        view = np.asarray(view, dtype=np.int64)
        total = len(view)
    chosen = choose_set_size(total, tau, pricing, n_max=n_max)
    spending = SpendingOracle(oracle, pricing)
    result = group_coverage(
        spending, predicate, tau, n=chosen, view=view, dataset_size=dataset_size
    )
    return CostAwareResult(
        chosen_n=chosen,
        predicted_cost_bound=dollar_cost_upper_bound(total, chosen, tau, pricing),
        dollars_spent=spending.dollars_spent,
        result=result,
    )
