"""Theoretical task-count bounds (§3.2 of the paper).

* **Upper bound** (Lemma 3.3): Group-Coverage issues at most
  ``Θ(N/n + τ·log n)`` set queries — ``N/n`` level-1 chunks plus, for each
  of at most ``τ`` "yes" leaves, a root-to-leaf path of length ``log n``.
* **Lower bound**: any algorithm needs ``N/n`` set queries to certify an
  *uncovered* group (every object must appear in some query).
* **Tightness** (Theorem 3.2): with ``τ - 1`` members spread uniformly the
  tree degenerates into ``τ - 1`` isolation paths of depth ``log(n/τ)``.

Log base
--------
The asymptotic statements use ``log₂`` (binary splitting), but the
concrete "upper-bound #HITs" the paper reports (Table 1: 115 for
``N=1522, n=τ=50``; the UpperBound series of Figure 7) is only consistent
with ``N/n + τ·log₁₀ n``. We default to base 10 so our tables line up with
the paper's, and expose the base for callers who want the binary version.
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError

__all__ = [
    "upper_bound_tasks",
    "lower_bound_tasks",
    "single_tree_upper_bound",
    "adversarial_tree_size",
]


def _validate(N: int, n: int, tau: int) -> None:
    if N < 0:
        raise InvalidParameterError(f"N must be >= 0, got {N}")
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if tau < 0:
        raise InvalidParameterError(f"tau must be >= 0, got {tau}")


def upper_bound_tasks(N: int, n: int, tau: int, *, log_base: float = 10.0) -> float:
    """The paper's reported bound ``N/n + τ·log(n)`` (Lemma 3.3).

    >>> round(upper_bound_tasks(1522, 50, 50))   # Table 1's 115
    115
    """
    _validate(N, n, tau)
    if log_base <= 1.0:
        raise InvalidParameterError(f"log_base must exceed 1, got {log_base}")
    log_term = math.log(n, log_base) if n > 1 else 0.0
    return N / n + tau * log_term


def lower_bound_tasks(N: int, n: int) -> int:
    """``⌈N/n⌉``: tasks any algorithm needs to touch every object once."""
    _validate(N, n, 0)
    return math.ceil(N / n) if N else 0


def single_tree_upper_bound(n: int, tau: int) -> int:
    """Exact worst-case node count of one execution tree (``N = n``).

    Case I of §3.2: when every set query answers "yes" the tree is binary
    with at most ``τ`` leaves → ``2τ - 1`` nodes; each leaf additionally
    pays at most ``⌈log₂ n⌉`` isolation levels with ≤2 nodes per level.
    This is the concrete (not asymptotic) form used by property tests as a
    hard ceiling.
    """
    _validate(n, n, tau)
    if tau == 0:
        return 1
    depth = math.ceil(math.log2(n)) if n > 1 else 0
    return 2 * tau - 1 + 2 * tau * depth


def adversarial_tree_size(n: int, tau: int) -> float:
    """The tightness construction's node count ``Θ(τ·log(n/τ))``
    (Theorem 3.2's adversarial example, used by the tightness bench)."""
    _validate(n, n, tau)
    if tau <= 1 or n <= tau:
        return float(max(2 * tau - 1, 1))
    return (2 * tau - 3) + (tau - 1) * 2 * math.log2(n / tau)
