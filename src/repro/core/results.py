"""Result types returned by the coverage algorithms.

Every algorithm reports, alongside its verdicts, the number of crowd tasks
it consumed — the paper's cost measure (fixed pricing makes #tasks the
cost). Task counts are measured by snapshotting the oracle's ledger around
the run, so nested algorithm calls attribute consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal, Mapping

from repro.data.groups import Group, GroupPredicate, SuperGroup
from repro.patterns.combiner import PatternCoverageReport

if TYPE_CHECKING:  # avoid a runtime core -> engine import cycle
    from repro.engine.stats import EngineStats

__all__ = [
    "TaskUsage",
    "LedgerWindow",
    "GroupCoverageResult",
    "GroupEntry",
    "MultipleCoverageReport",
    "IntersectionalCoverageReport",
    "ClassifierCoverageResult",
]


@dataclass(frozen=True)
class TaskUsage:
    """Tasks consumed by one algorithm run, by query type.

    ``n_rounds`` counts oracle round-trips (one per single ask, one per
    batch): the latency cost, as opposed to the paper's dollar cost of
    ``total`` tasks. Sequential runs have ``n_rounds == total``; engine
    runs strictly fewer.
    """

    n_set_queries: int = 0
    n_point_queries: int = 0
    n_rounds: int = 0

    @property
    def total(self) -> int:
        return self.n_set_queries + self.n_point_queries

    def __add__(self, other: "TaskUsage") -> "TaskUsage":
        return TaskUsage(
            self.n_set_queries + other.n_set_queries,
            self.n_point_queries + other.n_point_queries,
            self.n_rounds + other.n_rounds,
        )


class LedgerWindow:
    """Snapshot of a ledger's counters; :meth:`usage` is the delta since.

    The standard way a run attributes its crowd cost: open a window on
    the oracle's :class:`~repro.crowd.oracle.TaskLedger` before the
    work, read ``usage()`` after. Shared by every algorithm executor and
    by :class:`~repro.audit.AuditSession`, so a new :class:`TaskUsage`
    counter only has to be wired up once.
    """

    __slots__ = ("_ledger", "_sets", "_points", "_rounds")

    def __init__(self, ledger) -> None:
        self._ledger = ledger
        self._sets = ledger.n_set_queries
        self._points = ledger.n_point_queries
        self._rounds = ledger.n_rounds

    def usage(self) -> TaskUsage:
        return TaskUsage(
            self._ledger.n_set_queries - self._sets,
            self._ledger.n_point_queries - self._points,
            self._ledger.n_rounds - self._rounds,
        )


@dataclass(frozen=True)
class GroupCoverageResult:
    """Outcome of one Group-Coverage (or Base-Coverage) run.

    Attributes
    ----------
    predicate:
        The group (or super-group) that was tested.
    covered:
        ``True`` iff at least ``tau`` members were certified.
    count:
        The count lower bound at stop time. For an *uncovered* group this
        is the **exact** member count (Lemma 3.1 / §3.3.2); for a covered
        group it equals the threshold the run was started with.
    tau:
        The threshold the run used (callers may have reduced the global
        threshold by already-labeled members).
    tasks:
        Tasks consumed by this run.
    discovered_indices:
        Dataset indices of members this run *individually isolated*
        (size-1 "yes" nodes). For uncovered groups this is every member in
        the searched view; for covered groups it is whatever had been
        isolated before early stop.
    engine_stats:
        Batching/caching statistics when the run went through a
        :class:`repro.engine.QueryEngine`; ``None`` for sequential runs.
    """

    predicate: GroupPredicate
    covered: bool
    count: int
    tau: int
    tasks: TaskUsage
    discovered_indices: tuple[int, ...] = ()
    engine_stats: "EngineStats | None" = None

    def describe(self) -> str:
        status = "covered" if self.covered else "UNCOVERED"
        return (
            f"{self.predicate.describe()}: {status} "
            f"(count {'≥' if self.covered else '='} {self.count}, "
            f"tau={self.tau}, tasks={self.tasks.total})"
        )


@dataclass(frozen=True)
class GroupEntry:
    """Per-group verdict inside a multi-group report.

    ``count`` is exact when ``count_is_exact``; otherwise it is a lower
    bound (e.g. a member of an uncovered super-group whose individual
    members were not attributed).
    """

    group: Group
    covered: bool
    count: int
    count_is_exact: bool
    via_supergroup: SuperGroup | None = None

    def describe(self) -> str:
        status = "covered" if self.covered else "UNCOVERED"
        bound = "=" if self.count_is_exact else ">="
        via = (
            f" [via super-group {self.via_supergroup.describe()}]"
            if self.via_supergroup is not None and len(self.via_supergroup) > 1
            else ""
        )
        return f"{self.group.describe()}: {status} (count {bound} {self.count}){via}"


@dataclass(frozen=True)
class MultipleCoverageReport:
    """Outcome of Multiple-Coverage (Algorithm 2).

    Attributes
    ----------
    entries:
        One verdict per requested group, in input order.
    super_groups:
        The aggregation Algorithm 6 chose (singletons included).
    sampled_counts:
        Per-group counts observed in the sampling phase.
    tasks:
        Total tasks including the sampling phase.
    engine_stats:
        Batching/caching statistics when run through a
        :class:`repro.engine.QueryEngine`; ``None`` for sequential runs.
    """

    entries: tuple[GroupEntry, ...]
    super_groups: tuple[SuperGroup, ...]
    sampled_counts: Mapping[Group, int]
    tasks: TaskUsage
    engine_stats: "EngineStats | None" = None

    def entry_for(self, group: Group) -> GroupEntry:
        for entry in self.entries:
            if entry.group == group:
                return entry
        raise KeyError(f"no entry for group {group.describe()}")

    @property
    def uncovered_groups(self) -> tuple[Group, ...]:
        return tuple(entry.group for entry in self.entries if not entry.covered)

    def describe(self) -> str:
        lines = [f"multiple-coverage report ({self.tasks.total} tasks):"]
        lines.extend(f"  {entry.describe()}" for entry in self.entries)
        return "\n".join(lines)


@dataclass(frozen=True)
class IntersectionalCoverageReport:
    """Outcome of Intersectional-Coverage (Algorithm 3).

    Combines the leaf-level report (fully-specified subgroups) with the
    pattern-graph roll-up, including the MUPs.
    """

    leaf_report: MultipleCoverageReport
    pattern_report: PatternCoverageReport
    tasks: TaskUsage
    engine_stats: "EngineStats | None" = None

    @property
    def mups(self):
        return self.pattern_report.mups

    def describe(self) -> str:
        mups = ", ".join(p.describe() for p in self.mups) or "(none)"
        return (
            f"intersectional-coverage report ({self.tasks.total} tasks)\n"
            f"MUPs: {mups}\n" + self.pattern_report.describe()
        )


@dataclass(frozen=True)
class ClassifierCoverageResult:
    """Outcome of Classifier-Coverage (Algorithm 4).

    Attributes
    ----------
    strategy:
        Which false-positive elimination strategy the precision estimate
        selected: ``"partition"`` (reverse set queries) or ``"label"``
        (point queries). ``"none"`` when the classifier predicted nothing
        positive and the algorithm fell straight through to Group-Coverage.
    precision_estimate:
        Estimated precision of the classifier on the target group, from
        the 10 % sample.
    verified_count:
        Members of the target group certified inside the predicted set.
    fallback:
        The Group-Coverage run over the complement (``None`` when the
        predicted set alone certified coverage).
    """

    group: Group
    covered: bool
    count: int
    tau: int
    strategy: Literal["partition", "label", "none"]
    precision_estimate: float
    verified_count: int
    tasks: TaskUsage
    fallback: GroupCoverageResult | None = None
    sample_size: int = 0

    def describe(self) -> str:
        status = "covered" if self.covered else "UNCOVERED"
        return (
            f"{self.group.describe()}: {status} via classifier-coverage "
            f"(strategy={self.strategy}, est. precision "
            f"{self.precision_estimate:.1%}, tasks={self.tasks.total})"
        )
