"""Coverage resolution: acquiring the missing samples.

Detecting a coverage gap is half the story — the coverage literature the
paper builds on ([4], and our §6.4 reproduction) *resolves* gaps by
acquiring more samples of the uncovered groups. This module closes the
loop for the crowdsourced setting:

* :func:`acquisition_plan` reads a multi-group report and computes each
  uncovered group's deficit (``tau - certified count``),
* :func:`find_members` locates ``k`` members of a group inside an
  *unlabeled acquisition pool*. Mirroring Algorithm 4's partition/label
  decision, it first estimates the group's density from a small point
  sample and then either **scans** (point queries — cheaper for dense
  groups, ≈ ``k / density`` tasks) or **searches** (the same
  divide-and-conquer set queries Algorithm 1 uses — cheaper for rare
  groups, ≈ ``k · 2·log₂ n`` plus pruned chunks),
* :func:`resolve_coverage` executes a plan against a pool and returns the
  acquired indices per group plus the crowd cost.

Together with :mod:`repro.downstream`, this reproduces the paper's
§6.4 storyline end to end: detect the gap, buy the missing samples,
retrain, and watch the disparity close.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.results import MultipleCoverageReport, TaskUsage
from repro.core.tree import PrunableQueue, TreeNode
from repro.core.views import resolve_view
from repro.crowd.oracle import Oracle
from repro.data.groups import Group, GroupPredicate
from repro.errors import InvalidParameterError

__all__ = ["AcquisitionPlan", "acquisition_plan", "find_members", "resolve_coverage"]


@dataclass(frozen=True)
class AcquisitionPlan:
    """How many samples each uncovered group still needs."""

    tau: int
    deficits: Mapping[Group, int]

    @property
    def total_needed(self) -> int:
        return sum(self.deficits.values())

    def describe(self) -> str:
        if not self.deficits:
            return "nothing to acquire: every group is covered"
        lines = [f"acquisition plan (tau={self.tau}):"]
        lines.extend(
            f"  {group.describe()}: need {deficit} more"
            for group, deficit in self.deficits.items()
        )
        return "\n".join(lines)


def acquisition_plan(report: MultipleCoverageReport, tau: int) -> AcquisitionPlan:
    """Deficits of every uncovered group in a Multiple-Coverage report.

    Uses each entry's certified count (exact for uncovered groups when the
    report was produced with member attribution; otherwise a lower bound,
    making the plan conservative — it may over-acquire, never under).
    """
    if tau <= 0:
        raise InvalidParameterError(f"tau must be positive, got {tau}")
    deficits = {
        entry.group: tau - entry.count
        for entry in report.entries
        if not entry.covered
    }
    return AcquisitionPlan(tau=tau, deficits=deficits)


def find_members(
    oracle: Oracle,
    predicate: GroupPredicate,
    k: int,
    *,
    view: np.ndarray | None = None,
    pool_size: int | None = None,
    n: int = 50,
    strategy: str = "auto",
    density_sample_size: int = 20,
    rng: np.random.Generator | None = None,
) -> tuple[list[int], TaskUsage]:
    """Locate up to ``k`` members of ``predicate`` in an unlabeled pool.

    Parameters
    ----------
    strategy:
        ``"search"`` — divide-and-conquer set queries (chunk the pool,
        prune "no" ranges, split "yes" ranges down to singletons); best
        for rare groups.
        ``"scan"`` — point-label the pool in order until ``k`` members
        appear; best for dense groups (``k / density`` expected tasks).
        ``"auto"`` (default) — spend ``density_sample_size`` point queries
        estimating the density, then pick: scan iff the estimated density
        exceeds ``1 / (2·log₂ n)``, the break-even of the two cost models.
        Sampled members count toward ``k`` and are never re-asked.

    Returns
    -------
    (members, usage)
        Member indices found (fewer than ``k`` if the pool runs dry) and
        the tasks consumed (including any density sample).

    >>> import numpy as np
    >>> from repro.crowd import GroundTruthOracle
    >>> from repro.data import binary_dataset, group
    >>> pool = binary_dataset(1000, 40, rng=np.random.default_rng(2))
    >>> found, usage = find_members(
    ...     GroundTruthOracle(pool), group(gender="female"), 5,
    ...     pool_size=len(pool), strategy="search")
    >>> len(found), all(pool.matches(i, group(gender="female")) for i in found)
    (5, True)
    """
    if k < 0:
        raise InvalidParameterError(f"k must be >= 0, got {k}")
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if strategy not in ("auto", "search", "scan"):
        raise InvalidParameterError(f"unknown strategy {strategy!r}")
    if view is None and pool_size is None:
        raise InvalidParameterError("provide either view or pool_size")
    view = resolve_view(view, pool_size)

    ledger = oracle.ledger
    start_sets, start_points, start_rounds = (
        ledger.n_set_queries,
        ledger.n_point_queries,
        ledger.n_rounds,
    )

    def usage() -> TaskUsage:
        return TaskUsage(
            ledger.n_set_queries - start_sets,
            ledger.n_point_queries - start_points,
            ledger.n_rounds - start_rounds,
        )

    found: list[int] = []
    if k == 0 or len(view) == 0:
        return found, usage()

    if strategy == "auto":
        sample_size = min(density_sample_size, len(view))
        rng = rng or np.random.default_rng(0)
        sample_positions = rng.choice(len(view), size=sample_size, replace=False)
        hits = 0
        for position in sample_positions:
            index = int(view[position])
            if oracle.ask_point_membership(index, predicate):
                hits += 1
                found.append(index)
        density = hits / sample_size
        keep = np.ones(len(view), dtype=bool)
        keep[sample_positions] = False
        view = view[keep]
        break_even = 1.0 / (2.0 * max(math.log2(n), 1.0))
        strategy = "scan" if density >= break_even else "search"
        if len(found) >= k:
            return found[:k], usage()

    if strategy == "scan":
        for index in view:
            if oracle.ask_point_membership(int(index), predicate):
                found.append(int(index))
                if len(found) >= k:
                    break
        return found, usage()

    queue = PrunableQueue()
    for begin in range(0, len(view), n):
        queue.add(TreeNode(begin, min(begin + n, len(view)) - 1))
    while queue and len(found) < k:
        node = queue.pop()
        if not oracle.ask_set(view[node.b_index : node.e_index + 1], predicate):
            continue
        if node.size == 1:
            found.append(int(view[node.b_index]))
            continue
        left, right = node.split()
        queue.add(left)
        queue.add(right)
    return found, usage()


def resolve_coverage(
    oracle: Oracle,
    plan: AcquisitionPlan,
    *,
    pool_size: int,
    n: int = 50,
    strategy: str = "auto",
    rng: np.random.Generator | None = None,
) -> tuple[dict[Group, list[int]], TaskUsage]:
    """Execute an acquisition plan against an unlabeled pool.

    ``oracle`` must answer queries about the *pool*. Returns the acquired
    pool indices per group and the total crowd cost. Groups whose deficit
    cannot be met (pool runs dry) simply return fewer indices — callers
    should check lengths against the plan.
    """
    acquired: dict[Group, list[int]] = {}
    total = TaskUsage()
    remaining = np.arange(pool_size, dtype=np.int64)
    for group, deficit in plan.deficits.items():
        found, usage = find_members(
            oracle, group, deficit, view=remaining, n=n,
            strategy=strategy, rng=rng,
        )
        acquired[group] = found
        total = total + usage
        if found:
            # Objects acquired for one group leave the pool.
            remaining = remaining[~np.isin(remaining, np.asarray(found))]
    return acquired, total
