"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while letting programming errors (``TypeError``,
``KeyError`` from misuse of third-party objects, ...) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "SchemaError",
    "UnknownGroupError",
    "BudgetExceededError",
    "CheckpointVersionError",
    "JobFailedError",
    "OracleError",
    "ShardExecutionError",
    "PlatformError",
    "NoEligibleWorkersError",
    "InfeasibleProfileError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter is out of its documented domain.

    Examples: a non-positive coverage threshold ``tau``, a set-query size
    bound ``n`` smaller than one, or a sampling constant ``c`` below zero.
    """


class SchemaError(ReproError, ValueError):
    """A schema definition is malformed.

    Raised for duplicate attribute names, attributes with fewer than two
    values, duplicate values within an attribute, or empty schemas.
    """


class UnknownGroupError(ReproError, KeyError):
    """A group predicate references an attribute or value not in the schema."""


class BudgetExceededError(ReproError, RuntimeError):
    """An oracle exhausted its task budget before the algorithm finished.

    The partially collected state is intentionally *not* attached: a budget
    violation means the requested audit is not answerable at the configured
    cost, and callers should either raise the budget or shrink the audit.
    """


class CheckpointVersionError(InvalidParameterError):
    """A checkpoint (session string, service answer log, or job record)
    carries a version this build cannot read, or entries that do not
    match their declared version's shape.

    Raised by :meth:`~repro.audit.AuditSession.resume` and
    :meth:`~repro.service.AuditService.resume` instead of a bare
    ``KeyError`` so callers can tell "written by an incompatible build"
    apart from programming errors. Subclasses
    :class:`InvalidParameterError`, so existing ``except`` clauses keep
    working.
    """


class JobFailedError(ReproError, RuntimeError):
    """An :class:`~repro.service.AuditService` job reached a terminal
    state without a result: its audit raised, or it was cancelled.

    Raised when the job's result is *requested*; the originating error
    message is carried in the text (and the job's event trail)."""


class OracleError(ReproError, RuntimeError):
    """An oracle received a query it cannot answer (e.g. out-of-range index)."""


class ShardExecutionError(ReproError, RuntimeError):
    """A shard-parallel map lost a pool worker mid-flight.

    Raised by :meth:`~repro.data.sharded.ShardExecutor.map` in
    ``processes`` mode when a worker dies (SIGKILL, OOM killer, hard
    crash) instead of surfacing a bare
    :class:`concurrent.futures.process.BrokenProcessPool` or hanging.
    The broken pool is discarded before raising; because every kernel in
    :mod:`repro.data.kernels` is deterministic, retrying the build on a
    fresh :class:`~repro.data.sharded.ShardExecutor` is bit-identical.
    """


class PlatformError(ReproError, RuntimeError):
    """The crowd platform could not process a HIT."""


class NoEligibleWorkersError(PlatformError):
    """Quality-control screening left fewer workers than required per HIT."""


class InfeasibleProfileError(ReproError, ValueError):
    """A requested classifier profile (accuracy, precision) is not achievable
    on the given dataset composition.

    The confusion-matrix solver in :mod:`repro.classifiers.simulated` raises
    this when no non-negative integer confusion matrix reproduces the target
    metrics within tolerance.
    """
