"""Tabular coverage: the classic fully-labeled setting.

When labels are known for every object (a structured/tabular dataset),
coverage and MUPs can be computed by pure counting — this is the setting
of the prior work ([4]) the paper generalizes away from. We implement it
for two purposes:

* it is the **correctness reference** for the crowdsourced algorithms in
  tests (the crowdsourced pipeline must reach the same verdicts), and
* it is the second stage of the paper's strawman baseline ("ask the crowd
  to label all images, then apply off-the-shelf coverage identification").
"""

from __future__ import annotations

from repro.data.dataset import LabeledDataset
from repro.errors import InvalidParameterError
from repro.patterns.combiner import PatternCoverageReport, PatternVerdict
from repro.patterns.graph import PatternGraph
from repro.patterns.pattern import Pattern

__all__ = ["pattern_count", "assess_tabular_coverage"]


def pattern_count(dataset: LabeledDataset, pattern: Pattern) -> int:
    """Exact number of objects matching ``pattern``."""
    if pattern.is_root:
        return len(dataset)
    return dataset.count(pattern.to_group())


def assess_tabular_coverage(
    dataset: LabeledDataset,
    tau: int,
    *,
    graph: PatternGraph | None = None,
) -> PatternCoverageReport:
    """Exact coverage verdicts and MUPs from fully-known labels.

    All counts are exact, so every verdict has ``count_is_exact=True``.

    >>> import numpy as np
    >>> from repro.data import Schema, intersectional_dataset
    >>> schema = Schema.from_dict(
    ...     {"gender": ["male", "female"], "race": ["white", "black"]})
    >>> ds = intersectional_dataset(
    ...     schema,
    ...     {("male", "white"): 100, ("female", "white"): 60,
    ...      ("male", "black"): 55, ("female", "black"): 3},
    ...     shuffle=False)
    >>> report = assess_tabular_coverage(ds, tau=50)
    >>> [m.describe() for m in report.mups]
    ['female-black']
    """
    if tau <= 0:
        raise InvalidParameterError(f"tau must be positive, got {tau}")
    graph = graph or PatternGraph(dataset.schema)
    if graph.schema != dataset.schema:
        raise InvalidParameterError("graph schema does not match dataset schema")

    # Count the leaves once; every other pattern is a disjoint union of
    # leaves, so its count is a sum.
    leaf_counts = {leaf: pattern_count(dataset, leaf) for leaf in graph.leaves()}
    verdicts: dict[Pattern, PatternVerdict] = {}
    for pattern in graph:
        total = sum(
            leaf_counts[leaf] for leaf in graph.matching_leaves(pattern)
        )
        verdicts[pattern] = PatternVerdict(
            pattern=pattern,
            covered=total >= tau,
            count_lower_bound=total,
            count_is_exact=True,
        )
    mups = tuple(
        pattern
        for pattern in graph
        if not verdicts[pattern].covered
        and all(verdicts[parent].covered for parent in graph.parents(pattern))
    )
    return PatternCoverageReport(tau=tau, verdicts=verdicts, mups=mups)
