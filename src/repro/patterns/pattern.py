"""Patterns: the subgroup description language of the coverage literature.

A *pattern* over a schema with attributes ``x1..xd`` assigns each attribute
either a concrete value or the wildcard ``X`` ("unspecified"). The pattern
``X-black`` over (gender, race) describes all objects with ``race=black``
regardless of gender. Following the paper (§2.2):

* ``P`` is a **parent** of ``P'`` if they differ on exactly one attribute
  ``xi``, where ``P[i] = X`` and ``P'`` specifies a value — so a parent is
  strictly more general, by one attribute.
* A pattern's **level** is its number of specified attributes; level ``d``
  patterns are the *fully-specified subgroups*.
* A **maximal uncovered pattern (MUP)** is an uncovered pattern all of
  whose parents are covered.

Patterns are immutable, hashable, and schema-bound (two patterns compare
equal only under the same schema).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.data.groups import Group
from repro.data.schema import Schema
from repro.errors import InvalidParameterError, UnknownGroupError

__all__ = ["WILDCARD", "Pattern"]

#: Rendered form of an unspecified position.
WILDCARD = "X"


@dataclass(frozen=True)
class Pattern:
    """A pattern over a schema: one optional value per attribute.

    Parameters
    ----------
    schema:
        The attribute universe.
    values:
        A tuple aligned with ``schema.attributes``; ``None`` means
        unspecified (rendered as ``X``).
    """

    schema: Schema
    values: tuple[str | None, ...]

    def __post_init__(self) -> None:
        if len(self.values) != self.schema.n_attributes:
            raise InvalidParameterError(
                f"pattern arity {len(self.values)} does not match schema arity "
                f"{self.schema.n_attributes}"
            )
        for attribute, value in zip(self.schema, self.values):
            if value is not None:
                attribute.code_of(value)  # raises UnknownGroupError if invalid

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def root(cls, schema: Schema) -> "Pattern":
        """The all-wildcard pattern (the whole dataset)."""
        return cls(schema, (None,) * schema.n_attributes)

    @classmethod
    def from_group(cls, schema: Schema, group: Group) -> "Pattern":
        """The pattern equivalent to a conjunctive group predicate."""
        values: list[str | None] = []
        for attribute in schema:
            values.append(
                group.value_of(attribute.name) if group.constrains(attribute.name) else None
            )
        return cls(schema, tuple(values))

    @classmethod
    def from_mapping(cls, schema: Schema, conditions: Mapping[str, str]) -> "Pattern":
        """Build from ``{attribute: value}``; unmentioned attributes are X."""
        unknown = set(conditions) - set(schema.names)
        if unknown:
            raise UnknownGroupError(f"attributes {sorted(unknown)!r} not in schema")
        return cls(
            schema,
            tuple(conditions.get(attribute.name) for attribute in schema),
        )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """Number of specified attributes."""
        return sum(1 for value in self.values if value is not None)

    @property
    def is_root(self) -> bool:
        return self.level == 0

    @property
    def is_fully_specified(self) -> bool:
        return self.level == self.schema.n_attributes

    def parents(self) -> Iterator["Pattern"]:
        """All patterns obtained by un-specifying exactly one attribute."""
        for i, value in enumerate(self.values):
            if value is not None:
                relaxed = list(self.values)
                relaxed[i] = None
                yield Pattern(self.schema, tuple(relaxed))

    def children(self) -> Iterator["Pattern"]:
        """All patterns obtained by specifying exactly one wildcard."""
        for i, value in enumerate(self.values):
            if value is None:
                for candidate in self.schema.attributes[i].values:
                    specialized = list(self.values)
                    specialized[i] = candidate
                    yield Pattern(self.schema, tuple(specialized))

    def is_parent_of(self, other: "Pattern") -> bool:
        """Exactly the paper's parent relation (one attribute more general)."""
        if self.schema != other.schema:
            return False
        difference_at: int | None = None
        for i, (mine, theirs) in enumerate(zip(self.values, other.values)):
            if mine == theirs:
                continue
            if difference_at is not None:
                return False
            difference_at = i
        return (
            difference_at is not None
            and self.values[difference_at] is None
            and other.values[difference_at] is not None
        )

    def generalizes(self, other: "Pattern") -> bool:
        """True if every object matching ``other`` also matches ``self``
        (reflexive)."""
        if self.schema != other.schema:
            return False
        return all(
            mine is None or mine == theirs
            for mine, theirs in zip(self.values, other.values)
        )

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def matches_row(self, row: Mapping[str, str]) -> bool:
        return all(
            value is None or row.get(attribute.name) == value
            for attribute, value in zip(self.schema, self.values)
        )

    def to_group(self) -> Group:
        """The equivalent conjunctive :class:`~repro.data.groups.Group`.

        Raises
        ------
        InvalidParameterError
            For the root pattern (a Group needs >= 1 condition).
        """
        conditions = {
            attribute.name: value
            for attribute, value in zip(self.schema, self.values)
            if value is not None
        }
        if not conditions:
            raise InvalidParameterError("the root pattern has no group equivalent")
        return Group(conditions)

    def describe(self) -> str:
        """The paper's rendering, e.g. ``female-X`` or ``X-black``."""
        return "-".join(value if value is not None else WILDCARD for value in self.values)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.describe()
