"""Pattern-Combiner: roll leaf coverage up the pattern graph.

The paper reduces intersectional coverage to the *fully-specified*
subgroups (the pattern-graph leaves), then combines their results upward
(§3.3.2, §4), following the Pattern-Combiner idea of Asudeh et al. [4]:

* the objects matching any pattern are the **disjoint union** of the
  objects matching its fully-specified specializations;
* for an *uncovered* leaf, Group-Coverage reports the **exact** count;
* for a *covered* leaf we only hold a certificate "count >= tau" — but
  that is enough, because any pattern generalizing a covered leaf is
  itself covered.

Therefore every pattern's verdict is computable with **zero additional
crowd tasks**:

    covered(P)  <=>  (some matching leaf is covered)
                     or (sum of exact counts of matching leaves >= tau)

and the MUPs are the uncovered patterns all of whose parents are covered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import InvalidParameterError
from repro.patterns.graph import PatternGraph
from repro.patterns.pattern import Pattern

__all__ = ["LeafCoverage", "PatternVerdict", "PatternCoverageReport", "combine_leaf_coverage"]


@dataclass(frozen=True)
class LeafCoverage:
    """What Group-Coverage learned about one fully-specified subgroup.

    Attributes
    ----------
    covered:
        The coverage verdict.
    count:
        Exact object count when ``covered`` is ``False`` (Group-Coverage
        explores everything before concluding uncovered); when ``covered``
        is ``True`` this is only the lower bound at which the algorithm
        stopped (usually ``tau``).
    """

    covered: bool
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise InvalidParameterError(f"negative leaf count: {self.count}")


@dataclass(frozen=True)
class PatternVerdict:
    """Combined verdict for one pattern.

    ``count_lower_bound`` sums exact counts of uncovered matching leaves
    and the stop-bounds of covered ones; it equals the true count exactly
    when ``count_is_exact`` (no matching leaf was covered).
    """

    pattern: Pattern
    covered: bool
    count_lower_bound: int
    count_is_exact: bool


@dataclass(frozen=True)
class PatternCoverageReport:
    """Verdicts for every pattern plus the extracted MUPs."""

    tau: int
    verdicts: Mapping[Pattern, PatternVerdict]
    mups: tuple[Pattern, ...]

    @property
    def uncovered(self) -> tuple[Pattern, ...]:
        return tuple(p for p, v in self.verdicts.items() if not v.covered)

    @property
    def covered(self) -> tuple[Pattern, ...]:
        return tuple(p for p, v in self.verdicts.items() if v.covered)

    def verdict(self, pattern: Pattern) -> PatternVerdict:
        return self.verdicts[pattern]

    def describe(self) -> str:
        lines = [f"coverage report (tau={self.tau}):"]
        for pattern in sorted(self.verdicts, key=lambda p: (p.level, p.describe())):
            verdict = self.verdicts[pattern]
            status = "covered" if verdict.covered else "UNCOVERED"
            exactness = "=" if verdict.count_is_exact else ">="
            mup_marker = "  <-- MUP" if pattern in self.mups else ""
            lines.append(
                f"  {pattern.describe():<24} {status:<10} "
                f"count {exactness} {verdict.count_lower_bound}{mup_marker}"
            )
        return "\n".join(lines)


def combine_leaf_coverage(
    graph: PatternGraph,
    leaf_results: Mapping[Pattern, LeafCoverage],
    tau: int,
) -> PatternCoverageReport:
    """Compute every pattern's verdict and the MUP set from leaf results.

    Parameters
    ----------
    graph:
        The pattern graph over the schema.
    leaf_results:
        One :class:`LeafCoverage` per fully-specified pattern. Every leaf
        must be present — Algorithm 3 guarantees this.
    tau:
        The coverage threshold.

    Raises
    ------
    InvalidParameterError
        If a leaf is missing, a non-leaf key is supplied, or a "covered"
        leaf carries a count below ``tau`` (an inconsistent certificate).
    """
    if tau <= 0:
        raise InvalidParameterError(f"tau must be positive, got {tau}")
    leaves = set(graph.leaves())
    missing = leaves - set(leaf_results)
    if missing:
        raise InvalidParameterError(
            f"missing leaf results for {sorted(p.describe() for p in missing)}"
        )
    extras = set(leaf_results) - leaves
    if extras:
        raise InvalidParameterError(
            f"non-leaf keys in leaf_results: {sorted(p.describe() for p in extras)}"
        )
    for leaf, result in leaf_results.items():
        if result.covered and result.count < tau:
            raise InvalidParameterError(
                f"leaf {leaf.describe()} marked covered but count "
                f"{result.count} < tau {tau}"
            )
        if not result.covered and result.count >= tau:
            raise InvalidParameterError(
                f"leaf {leaf.describe()} marked uncovered but count "
                f"{result.count} >= tau {tau}"
            )

    verdicts: dict[Pattern, PatternVerdict] = {}
    for pattern in graph:
        matching = graph.matching_leaves(pattern)
        any_covered_leaf = any(leaf_results[leaf].covered for leaf in matching)
        total = sum(leaf_results[leaf].count for leaf in matching)
        covered = any_covered_leaf or total >= tau
        verdicts[pattern] = PatternVerdict(
            pattern=pattern,
            covered=covered,
            count_lower_bound=total,
            count_is_exact=not any_covered_leaf,
        )

    mups = tuple(
        pattern
        for pattern in graph
        if not verdicts[pattern].covered
        and all(verdicts[parent].covered for parent in graph.parents(pattern))
    )
    return PatternCoverageReport(tau=tau, verdicts=verdicts, mups=mups)
