"""Pattern / MUP machinery (the tabular-coverage substrate the paper builds on)."""

from repro.patterns.combiner import (
    LeafCoverage,
    PatternCoverageReport,
    PatternVerdict,
    combine_leaf_coverage,
)
from repro.patterns.graph import PatternGraph
from repro.patterns.pattern import WILDCARD, Pattern
from repro.patterns.search import MupSearchResult, find_mups_levelwise
from repro.patterns.tabular import assess_tabular_coverage, pattern_count

__all__ = [
    "Pattern",
    "WILDCARD",
    "PatternGraph",
    "LeafCoverage",
    "PatternVerdict",
    "PatternCoverageReport",
    "combine_leaf_coverage",
    "assess_tabular_coverage",
    "pattern_count",
    "MupSearchResult",
    "find_mups_levelwise",
]
