"""The pattern graph (Figure 5 of the paper).

Nodes are all patterns over a schema — ``prod_i (sigma_i + 1)`` of them —
arranged in levels by number of specified attributes, with edges from each
pattern to its children (one more attribute specified). The graph is tiny
for the low-cardinality sensitive attributes the paper targets, so we
materialize it eagerly.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.data.schema import Schema
from repro.errors import InvalidParameterError
from repro.patterns.pattern import Pattern

__all__ = ["PatternGraph"]


class PatternGraph:
    """All patterns over a schema with parent/child adjacency.

    >>> from repro.data.schema import Schema
    >>> graph = PatternGraph(Schema.from_dict(
    ...     {"gender": ["male", "female"],
    ...      "race": ["white", "black", "asian"]}))
    >>> graph.n_patterns          # (2+1) * (3+1)
    12
    >>> len(graph.leaves())       # fully specified subgroups
    6
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        choices = [(None, *attribute.values) for attribute in schema]
        self._patterns = tuple(
            Pattern(schema, combo) for combo in product(*choices)
        )
        self._by_level: dict[int, list[Pattern]] = {}
        for pattern in self._patterns:
            self._by_level.setdefault(pattern.level, []).append(pattern)
        self._children: dict[Pattern, tuple[Pattern, ...]] = {
            pattern: tuple(pattern.children()) for pattern in self._patterns
        }
        self._parents: dict[Pattern, tuple[Pattern, ...]] = {
            pattern: tuple(pattern.parents()) for pattern in self._patterns
        }

    # ------------------------------------------------------------------
    @property
    def n_patterns(self) -> int:
        return len(self._patterns)

    @property
    def max_level(self) -> int:
        return self.schema.n_attributes

    @property
    def root(self) -> Pattern:
        return Pattern.root(self.schema)

    def patterns(self) -> tuple[Pattern, ...]:
        """All patterns, in no particular order."""
        return self._patterns

    def at_level(self, level: int) -> tuple[Pattern, ...]:
        """Patterns with exactly ``level`` specified attributes."""
        if not 0 <= level <= self.max_level:
            raise InvalidParameterError(
                f"level must be in [0, {self.max_level}], got {level}"
            )
        return tuple(self._by_level.get(level, ()))

    def leaves(self) -> tuple[Pattern, ...]:
        """The fully-specified subgroups (maximum level)."""
        return self.at_level(self.max_level)

    def children(self, pattern: Pattern) -> tuple[Pattern, ...]:
        return self._children[pattern]

    def parents(self, pattern: Pattern) -> tuple[Pattern, ...]:
        return self._parents[pattern]

    def ancestors(self, pattern: Pattern) -> Iterator[Pattern]:
        """All strict generalizations of ``pattern`` (deduplicated)."""
        seen: set[Pattern] = set()
        frontier = list(self.parents(pattern))
        while frontier:
            candidate = frontier.pop()
            if candidate in seen:
                continue
            seen.add(candidate)
            frontier.extend(self.parents(candidate))
            yield candidate

    def matching_leaves(self, pattern: Pattern) -> tuple[Pattern, ...]:
        """All fully-specified patterns that ``pattern`` generalizes.

        The objects matching ``pattern`` are exactly the disjoint union of
        the objects matching these leaves — the identity the
        Pattern-Combiner roll-up rests on.
        """
        return tuple(leaf for leaf in self.leaves() if pattern.generalizes(leaf))

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)
