"""Level-wise MUP search over fully-labeled data.

:func:`repro.patterns.tabular.assess_tabular_coverage` enumerates the
whole pattern graph — fine for the low-cardinality sensitive attributes
the paper targets, but wasteful when large parts of the graph are
uncovered: every descendant of an uncovered pattern is uncovered too and
need never be counted. The coverage literature ([4]'s Pattern-Breaker
family) therefore searches top-down with pruning. We implement the
level-wise (Apriori-style) variant:

1. start from the root pattern,
2. at each level, count only the *candidate* patterns — children of
   covered patterns whose every parent is covered,
3. uncovered candidates are exactly the MUPs (their parents are covered
   by construction); covered candidates seed the next level.

The search touches only covered patterns plus the MUP frontier — on
datasets whose uncovered region is large this counts a small fraction of
the graph. Results are identical to the exhaustive reference; tests and
the search bench enforce both the equality and the pruning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import LabeledDataset
from repro.errors import InvalidParameterError
from repro.patterns.graph import PatternGraph
from repro.patterns.pattern import Pattern
from repro.patterns.tabular import pattern_count

__all__ = ["MupSearchResult", "find_mups_levelwise"]


@dataclass(frozen=True)
class MupSearchResult:
    """MUPs plus search-cost accounting.

    Attributes
    ----------
    mups:
        The maximal uncovered patterns, in traversal order.
    n_patterns_counted:
        How many patterns the search actually counted — the pruning
        metric (the exhaustive reference counts ``graph.n_patterns``).
    counts:
        Exact counts of every pattern the search touched.
    """

    tau: int
    mups: tuple[Pattern, ...]
    n_patterns_counted: int
    counts: dict[Pattern, int]

    def is_covered(self, pattern: Pattern) -> bool:
        """Coverage verdict for any pattern (derivable without further
        counting: uncovered iff some MUP generalizes it ... or it is below
        an uncovered ancestor)."""
        if pattern in self.counts:
            return self.counts[pattern] >= self.tau
        # Not counted => it lies under some uncovered ancestor.
        return False


def find_mups_levelwise(
    dataset: LabeledDataset,
    tau: int,
    *,
    graph: PatternGraph | None = None,
) -> MupSearchResult:
    """Find all MUPs top-down with covered-parent pruning.

    >>> import numpy as np
    >>> from repro.data import Schema, intersectional_dataset
    >>> schema = Schema.from_dict(
    ...     {"gender": ["male", "female"], "race": ["white", "black"]})
    >>> ds = intersectional_dataset(
    ...     schema,
    ...     {("male", "white"): 100, ("female", "white"): 60,
    ...      ("male", "black"): 55, ("female", "black"): 3},
    ...     shuffle=False)
    >>> result = find_mups_levelwise(ds, tau=50)
    >>> [m.describe() for m in result.mups]
    ['female-black']
    >>> result.n_patterns_counted <= 9
    True
    """
    if tau <= 0:
        raise InvalidParameterError(f"tau must be positive, got {tau}")
    graph = graph or PatternGraph(dataset.schema)
    if graph.schema != dataset.schema:
        raise InvalidParameterError("graph schema does not match dataset schema")

    counts: dict[Pattern, int] = {}
    covered: set[Pattern] = set()
    mups: list[Pattern] = []

    def count(pattern: Pattern) -> int:
        if pattern not in counts:
            counts[pattern] = pattern_count(dataset, pattern)
        return counts[pattern]

    root = graph.root
    if count(root) < tau:
        # The whole dataset is below threshold: the root is the one MUP.
        return MupSearchResult(
            tau=tau, mups=(root,), n_patterns_counted=len(counts), counts=counts
        )
    covered.add(root)

    frontier: list[Pattern] = [root]
    for _ in range(graph.max_level):
        candidates: list[Pattern] = []
        seen: set[Pattern] = set()
        for pattern in frontier:
            for child in graph.children(pattern):
                if child in seen:
                    continue
                seen.add(child)
                # A child is worth counting only if every parent is
                # covered (otherwise it sits under an uncovered ancestor
                # and is not maximal).
                if all(parent in covered for parent in graph.parents(child)):
                    candidates.append(child)
        next_frontier: list[Pattern] = []
        for candidate in candidates:
            if count(candidate) >= tau:
                covered.add(candidate)
                next_frontier.append(candidate)
            else:
                mups.append(candidate)
        frontier = next_frontier
        if not frontier:
            break

    return MupSearchResult(
        tau=tau,
        mups=tuple(mups),
        n_patterns_counted=len(counts),
        counts=counts,
    )
