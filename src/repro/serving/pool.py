"""Subprocess worker pool: real OS processes, really killable.

Workers are separate Python processes (``python -m
repro.serving.worker``) rather than threads or forked children, for two
reasons: audits scale across cores without the GIL, and the chaos suite
needs a worker it can SIGKILL dead — no atexit handlers, no cleanup —
to prove the lease/checkpoint protocol survives it.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Sequence

__all__ = ["WorkerPool"]


def _worker_env() -> dict[str, str]:
    """The child's environment: inherit ours, make sure ``repro`` is
    importable even when the parent set it up via ``sys.path``."""
    import repro

    package_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


class WorkerPool:
    """Manage N worker subprocesses over one serving root.

    Examples
    --------
    >>> import tempfile
    >>> from repro.serving.config import ServingConfig, init_serving_root
    >>> root = init_serving_root(tempfile.mkdtemp(), ServingConfig(
    ...     recipe={"kind": "synthetic-binary", "n": 100,
    ...             "n_minority": 20, "dataset_seed": 0}))
    >>> with WorkerPool(root, n_workers=1) as pool:
    ...     pool.alive_count()
    1
    """

    def __init__(
        self,
        root,
        *,
        n_workers: int = 2,
        extra_args: Sequence[str] = (),
    ) -> None:
        """Spawn ``n_workers`` subprocesses serving ``root``.

        ``extra_args`` is passed through to every worker CLI (e.g.
        ``["--max-jobs", "5"]`` or ``["--idle-timeout", "2"]``)."""
        self.root = Path(root)
        self.extra_args = list(extra_args)
        self.workers: list[subprocess.Popen] = []
        self._next_id = 0
        for _ in range(n_workers):
            self.spawn()

    def spawn(self, *cli_args: str) -> subprocess.Popen:
        """Start one more worker; returns its ``Popen`` handle."""
        worker_id = f"pool-w{self._next_id}"
        self._next_id += 1
        command = [
            sys.executable,
            "-m",
            "repro.serving.worker",
            "--root",
            str(self.root),
            "--worker-id",
            worker_id,
            *self.extra_args,
            *cli_args,
        ]
        process = subprocess.Popen(
            command,
            env=_worker_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self.workers.append(process)
        return process

    def alive_count(self) -> int:
        """How many workers are currently running."""
        return sum(1 for process in self.workers if process.poll() is None)

    def kill_one(self) -> subprocess.Popen | None:
        """SIGKILL the first live worker (chaos testing); returns its
        handle, or ``None`` when none is alive. SIGKILL cannot be
        caught: the worker dies mid-instruction, exactly the crash the
        lease takeover protocol must absorb."""
        for process in self.workers:
            if process.poll() is None:
                process.send_signal(signal.SIGKILL)
                process.wait(timeout=10)
                return process
        return None

    def wait(self, timeout: float | None = None) -> bool:
        """Wait for every worker to exit on its own (``--max-jobs`` /
        ``--idle-timeout`` runs); True when all did within ``timeout``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for process in self.workers:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                return False
        return True

    def stop(self, timeout: float = 10.0) -> None:
        """Terminate every live worker (SIGTERM, then SIGKILL)."""
        for process in self.workers:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + timeout
        for process in self.workers:
            try:
                process.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5)

    def __enter__(self) -> "WorkerPool":
        """Context-manager entry; workers are already running."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: stops every worker."""
        self.stop()
