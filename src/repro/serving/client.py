"""Thin stdlib HTTP client for the serving gateway.

One class, :class:`ServingClient`, mapping each protocol route to a
method and each error status to the typed exception in-process callers
already handle: ``400`` → :class:`~repro.errors.InvalidParameterError`,
``404`` → the same (unknown job id), ``409`` →
:class:`~repro.errors.JobFailedError`, ``429`` →
:class:`~repro.serving.protocol.ServerBusyError` carrying the server's
``Retry-After``. Every call opens its own connection, so one client may
be shared across threads.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator, Mapping

from repro.audit.specs import AuditSpec
from repro.errors import InvalidParameterError, JobFailedError, ReproError
from repro.serving.protocol import ServerBusyError

__all__ = ["ServingClient"]


class ServingClient:
    """Client for one gateway at ``host:port``.

    Examples
    --------
    >>> client = ServingClient("127.0.0.1", 8080)
    >>> client.base
    '127.0.0.1:8080'

    (Live round-trips are exercised by ``tests/serving/``; see
    ``docs/guide/serving.md`` for an end-to-end walkthrough.)
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        """Remember the gateway address; nothing connects until a call."""
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    @property
    def base(self) -> str:
        """``host:port`` of the gateway this client talks to."""
        return f"{self.host}:{self.port}"

    # -- plumbing ---------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            return self._decode(response.status, response.headers, raw)
        finally:
            connection.close()

    @staticmethod
    def _decode(status: int, headers, raw: bytes) -> dict[str, Any]:
        try:
            record = json.loads(raw) if raw else {}
        except json.JSONDecodeError as error:
            raise ReproError(
                f"gateway returned non-JSON body (HTTP {status}): {error}"
            )
        if status in (200, 201, 202):
            record["http_status"] = status
            return record
        message = record.get("error", f"HTTP {status}")
        if status == 429:
            retry_after = float(
                record.get("retry_after")
                or headers.get("Retry-After")
                or 1.0
            )
            raise ServerBusyError(message, retry_after=retry_after)
        if status in (400, 404):
            raise InvalidParameterError(message)
        if status == 409:
            raise JobFailedError(message)
        raise ReproError(f"gateway error (HTTP {status}): {message}")

    # -- protocol methods -------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /v1/healthz`` — liveness plus the board's job tally."""
        return self._request("GET", "/v1/healthz")

    def submit(
        self,
        spec: "AuditSpec | Mapping[str, Any]",
        *,
        tenant: str = "default",
        seed: int | None = None,
        priority: int = 0,
    ) -> dict[str, Any]:
        """``POST /v1/jobs`` — submit an audit (idempotently).

        Accepts a frozen spec or its ``to_dict`` form. Returns
        ``{"job_id", "created", "status", ...}``; ``created`` is False
        when an identical submission already exists (same job). Raises
        :class:`~repro.serving.protocol.ServerBusyError` on 429."""
        spec_dict = spec if isinstance(spec, Mapping) else spec.to_dict()
        return self._request(
            "POST",
            "/v1/jobs",
            {
                "spec": dict(spec_dict),
                "tenant": tenant,
                "seed": seed,
                "priority": priority,
            },
        )

    def status(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/<id>`` — the job's full state record."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def events(
        self, job_id: str, *, cursor: int = 0, wait: float | None = None
    ) -> dict[str, Any]:
        """``GET /v1/jobs/<id>/events`` — events past ``cursor``.

        With ``wait``, the gateway long-polls up to that many seconds
        for news. The reply's ``cursor`` is the next value to pass."""
        path = f"/v1/jobs/{job_id}/events?cursor={int(cursor)}"
        if wait is not None:
            path += f"&wait={float(wait):g}"
        return self._request("GET", path)

    def stream_events(
        self, job_id: str, *, cursor: int = 0
    ) -> Iterator[dict[str, Any]]:
        """``GET /v1/jobs/<id>/events?stream=1`` — yield events as they
        happen, ending when the job reaches a terminal status.

        Each yielded record carries ``cursor``; on a dropped connection,
        call again with the last seen cursor to resume the stream."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET", f"/v1/jobs/{job_id}/events?stream=1&cursor={int(cursor)}"
            )
            response = connection.getresponse()
            if response.status != 200:
                self._decode(response.status, response.headers, response.read())
                raise ReproError(f"stream refused (HTTP {response.status})")
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    def result(
        self,
        job_id: str,
        *,
        timeout: float = 120.0,
        poll_interval: float = 0.05,
    ) -> dict[str, Any]:
        """``GET /v1/jobs/<id>/result`` — block until the report is in.

        Polls while the gateway answers ``202`` (honouring its
        ``Retry-After`` but never sleeping longer than
        ``poll_interval``); raises
        :class:`~repro.errors.JobFailedError` for failed or cancelled
        jobs and :class:`~repro.errors.ReproError` on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            record = self._request("GET", f"/v1/jobs/{job_id}/result")
            if record["http_status"] == 200:
                return record
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"job {job_id} still {record.get('status')!r} after "
                    f"{timeout:g}s"
                )
            advertised = float(record.get("retry_after") or poll_interval)
            time.sleep(min(advertised, poll_interval))

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``POST /v1/jobs/<id>/cancel`` — request cancellation.

        Queued unclaimed jobs cancel immediately; running jobs are
        cancelled by their worker at the next scheduler step. Returns
        the job's status after the request."""
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")
