"""The worker process: lease jobs off the board, run them to the end.

A worker is a plain loop over :class:`~repro.serving.board.JobBoard`:
scan for claimable jobs, :meth:`~repro.serving.board.JobBoard.try_claim`
one, run the audit inside a private per-job
:class:`~repro.service.AuditService` with its own
:class:`~repro.service.DirectoryJobStore`, heartbeat the lease while
stepping, and write the final state record before releasing.

Crash safety is entirely structural — a worker holds no state another
process cannot reconstruct:

* the job's answers are checkpointed every ``checkpoint_every``
  scheduler rounds (1 by default for serving), so a SIGKILL at any
  instruction loses at most the answers of the current in-flight round;
* the lease's heartbeat goes stale after the TTL, at which point any
  other worker takes the job over with
  :meth:`~repro.service.AuditService.resume` — recorded answers replay
  for free, so nothing already paid for is re-asked;
* per-job seeds are recorded at first claim (derived from the
  submission hash when the client didn't pick one), so rng-dependent
  audits re-draw identical samples whoever finishes them.

Run one from the command line against a shared serving root::

    python -m repro.serving.worker --root /var/run/audits

or in-process (tests, notebooks) via :func:`run_worker` with a
``stop_event``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, TextIO

from repro.audit.serialization import set_answer_to_dict
from repro.engine.requests import set_query_key
from repro.errors import InvalidParameterError, JobFailedError, ReproError
from repro.service import AuditService, DirectoryJobStore
from repro.serving.board import (
    TERMINAL_STATUSES,
    JobBoard,
    Lease,
    LeaseLostError,
)
from repro.serving.config import ServingConfig, load_serving_config
from repro.serving.protocol import Submission

__all__ = ["run_worker", "QueryLoggingOracle"]


class QueryLoggingOracle:
    """Transparent oracle wrapper that logs every *paid* query.

    Sits between the replay proxy and the real oracle, so replayed
    (already checkpointed) answers never reach it — every line in the
    log is a query that was actually charged to the crowd in this
    process. The chaos suite uses this to prove a resumed worker
    re-asks **nothing** that was durable before the kill.

    Each log line is one JSON object: set queries in the same shape as
    checkpointed set answers (``predicate`` + ``run``/``indices``),
    point queries as ``{"kind": "point", "index": i}``.

    Examples
    --------
    >>> import io
    >>> import numpy as np
    >>> from repro.crowd.oracle import GroundTruthOracle
    >>> from repro.data.groups import group
    >>> from repro.data.synthetic import binary_dataset
    >>> dataset = binary_dataset(50, 5, rng=np.random.default_rng(0))
    >>> log = io.StringIO()
    >>> oracle = QueryLoggingOracle(GroundTruthOracle(dataset), log)
    >>> _ = oracle.ask_set(np.arange(10), group(gender="female"))
    >>> json.loads(log.getvalue())["kind"]
    'set'
    """

    def __init__(self, inner, log: TextIO) -> None:
        self._inner = inner
        self._log = log

    def _write(self, entry: dict[str, Any]) -> None:
        self._log.write(json.dumps(entry) + "\n")
        self._log.flush()

    def _log_set(self, indices, predicate, key) -> None:
        if key is None:
            key = set_query_key(indices, predicate)
        entry = set_answer_to_dict(key[0], key[1], True)
        entry.pop("answer", None)
        entry["kind"] = "set"
        self._write(entry)

    def ask_set(self, indices, predicate, *, key=None) -> bool:
        """Forward one set query to the real oracle, logging it."""
        self._log_set(indices, predicate, key)
        return self._inner.ask_set(indices, predicate, key=key)

    def ask_set_batch(self, queries, *, keys=None) -> list:
        """Forward a set-query batch, logging every member."""
        for position, (indices, predicate) in enumerate(queries):
            key = None if keys is None else keys[position]
            self._log_set(indices, predicate, key)
        return self._inner.ask_set_batch(queries, keys=keys)

    def ask_point(self, index: int) -> dict[str, str]:
        """Forward one point query, logging it."""
        self._write({"kind": "point", "index": int(index)})
        return self._inner.ask_point(index)

    def ask_point_batch(self, indices) -> list:
        """Forward a point-query batch, logging every member."""
        for index in indices:
            self._write({"kind": "point", "index": int(index)})
        return self._inner.ask_point_batch(indices)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def _derived_seed(submission: Submission) -> int:
    """The seed a seedless submission audits under — a pure function of
    the idempotency digest, so every worker (first claimer or any
    re-claimer before the first checkpoint landed) derives the same
    one."""
    return int(submission.digest[:12], 16)


def _mirror_events(
    state: dict[str, Any],
    events,
    mirrored: int,
    worker: str,
    baseline: int,
) -> int:
    """Append inner service events past ``mirrored`` to the outer state
    record; returns the new high-water mark."""
    for event in events[mirrored:]:
        state["events"].append(
            {
                "stage": event.stage,
                "detail": event.detail,
                "tasks": baseline + event.tasks,
                "worker": worker,
            }
        )
    return len(events)


def _run_leased_job(
    board: JobBoard,
    config: ServingConfig,
    lease: Lease,
    *,
    stop_event: threading.Event | None,
    query_log: TextIO | None,
) -> str | None:
    """Run one claimed job to a terminal state; returns the final outer
    status, or ``None`` when the run was abandoned (lease lost, stop
    requested) and the job is left for another worker."""
    job_id = lease.job_id
    submission = board.read_submission(job_id)
    if submission is None:
        board.release(lease)
        return None  # raced a submitter mid-creation; retry next scan
    state = board.read_state(job_id)
    if state["status"] in TERMINAL_STATUSES:
        board.release(lease)
        return state["status"]

    oracle = config.build_oracle()
    if query_log is not None:
        oracle = QueryLoggingOracle(oracle, query_log)
    store = DirectoryJobStore(board.job_dir(job_id) / "store")
    checkpoint = store.load_answers()
    resumed = checkpoint is not None
    # Answers durable before this claim. Fresh asks replay free on the
    # next resume, so cumulative spend = baseline + this ledger.
    baseline = 0
    if resumed:
        baseline = len(checkpoint.get("set_answers") or []) + len(
            checkpoint.get("point_answers") or []
        )
        service = AuditService.resume(
            store, oracle, checkpoint_every=config.checkpoint_every
        )
    else:
        service = AuditService(
            oracle,
            batch_size=config.batch_size,
            speculation=config.speculation,
            job_store=store,
            checkpoint_every=config.checkpoint_every,
        )
        seed = submission.seed
        service.submit(
            submission.spec(),
            tenant=submission.tenant,
            priority=submission.priority,
            seed=seed if seed is not None else _derived_seed(submission),
        )
        # Make the submission durable before any query is paid for:
        # from here on, every claimer resumes instead of re-submitting.
        service.checkpoint()
    handle = service.jobs()[0]
    mirrored = len(handle.events())

    state["worker"] = lease.worker
    state["status"] = "running" if not handle.status.terminal else state["status"]
    state["events"].append(
        {
            "stage": "resumed" if resumed else "claimed",
            "detail": f"worker={lease.worker}",
            "tasks": baseline,
            "worker": lease.worker,
        }
    )
    board.write_state(job_id, state)

    heartbeat_period = config.lease_ttl_seconds / 3.0
    last_beat = time.time()
    try:
        while not handle.status.terminal:
            if stop_event is not None and stop_event.is_set():
                service.checkpoint()
                service.close()
                board.release(lease)
                return None
            if board.cancel_requested(job_id):
                handle.cancel()
                if handle.status.terminal:
                    break
            service.step()
            now = time.time()
            if now - last_beat >= heartbeat_period:
                board.heartbeat(lease)
                last_beat = now
                mirrored = _mirror_events(
                    state, handle.events(), mirrored, lease.worker, baseline
                )
                state["tasks_paid"] = baseline + oracle.ledger.total
                board.write_state(job_id, state)
            if config.step_delay_seconds:
                time.sleep(config.step_delay_seconds)
    except LeaseLostError:
        # The job belongs to someone else now; stop touching its state.
        service.close()
        return None

    service.checkpoint()
    status = handle.status.value
    result = None
    error = None
    if status == "succeeded":
        result = handle.result(drain=False).to_dict()
    elif status == "failed":
        try:
            handle.result(drain=False)
        except JobFailedError as failure:
            error = str(failure)
    mirrored = _mirror_events(
        state, handle.events(), mirrored, lease.worker, baseline
    )
    state["status"] = status
    state["result"] = result
    state["error"] = error
    state["tasks_paid"] = baseline + oracle.ledger.total
    board.write_state(job_id, state)
    board.release(lease)
    service.close()
    return status


def run_worker(
    root: str | os.PathLike,
    worker_id: str | None = None,
    *,
    max_jobs: int | None = None,
    stop_event: threading.Event | None = None,
    poll_interval: float = 0.05,
    idle_timeout: float | None = None,
    query_log: TextIO | None = None,
) -> int:
    """Serve jobs from ``root`` until stopped; returns jobs finished.

    The loop scans the board for claimable jobs (no live lease, not
    terminal), claims them one at a time, and runs each to completion.
    Scan order is a per-worker hash shuffle, so a pool of workers
    spreads claim attempts instead of stampeding the same directory.

    Stops when ``max_jobs`` jobs have finished, when ``stop_event`` is
    set, or when the board has offered no claimable work for
    ``idle_timeout`` seconds (``None`` = serve forever).

    Examples
    --------
    >>> import tempfile
    >>> from repro.audit import GroupAuditSpec
    >>> from repro.data.groups import group
    >>> from repro.serving.board import JobBoard
    >>> from repro.serving.config import ServingConfig, init_serving_root
    >>> root = init_serving_root(tempfile.mkdtemp(), ServingConfig(
    ...     recipe={"kind": "synthetic-binary", "n": 100,
    ...             "n_minority": 20, "dataset_seed": 0}))
    >>> board = JobBoard(root)
    >>> spec = GroupAuditSpec(predicate=group(gender="female"), tau=10)
    >>> job_id, _ = board.submit(Submission.from_spec(spec, tenant="t"))
    >>> run_worker(root, "w-doc", max_jobs=1, idle_timeout=0.2)
    1
    >>> board.read_state(job_id)["status"]
    'succeeded'
    """
    root = Path(root)
    config = load_serving_config(root)
    board = JobBoard(root)
    if worker_id is None:
        worker_id = f"worker-{os.getpid()}"
    completed = 0
    known_terminal: set[str] = set()
    idle_since = time.time()
    while True:
        if max_jobs is not None and completed >= max_jobs:
            break
        if stop_event is not None and stop_event.is_set():
            break
        claimed_any = False
        candidates = [
            job_id for job_id in board.job_ids() if job_id not in known_terminal
        ]
        # Per-worker shuffle: workers walk the board in different orders.
        candidates.sort(
            key=lambda job_id: hashlib.sha256(
                (job_id + worker_id).encode("utf-8")
            ).hexdigest()
        )
        for job_id in candidates:
            if stop_event is not None and stop_event.is_set():
                break
            if max_jobs is not None and completed >= max_jobs:
                break
            try:
                status = board.read_state(job_id).get("status")
            except InvalidParameterError:
                continue  # directory exists, submit.json still in flight
            if status in TERMINAL_STATUSES:
                known_terminal.add(job_id)
                continue
            info = board.lease_info(job_id)
            if info is not None and not board.lease_is_stale(
                info, config.lease_ttl_seconds
            ):
                continue
            lease = board.try_claim(
                job_id, worker_id, ttl=config.lease_ttl_seconds
            )
            if lease is None:
                continue
            claimed_any = True
            outcome = _run_leased_job(
                board,
                config,
                lease,
                stop_event=stop_event,
                query_log=query_log,
            )
            if outcome is not None:
                completed += 1
                known_terminal.add(job_id)
        if claimed_any:
            idle_since = time.time()
        else:
            if (
                idle_timeout is not None
                and time.time() - idle_since >= idle_timeout
            ):
                break
            time.sleep(poll_interval)
    return completed


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.serving.worker --root DIR``.

    Examples
    --------
    >>> parser_help_runs = main  # exercised end-to-end by tests/serving
    >>> callable(parser_help_runs)
    True
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.worker",
        description="Serve audit jobs from a shared serving root.",
    )
    parser.add_argument("--root", required=True, help="serving root directory")
    parser.add_argument(
        "--worker-id", default=None, help="stable worker name (default: pid)"
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after finishing this many jobs",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many seconds with no claimable work",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        help="sleep between empty board scans (seconds)",
    )
    parser.add_argument(
        "--query-log",
        default=None,
        help="append every paid query to this NDJSON file (chaos tests)",
    )
    options = parser.parse_args(argv)
    log_handle: TextIO | None = None
    try:
        if options.query_log is not None:
            log_handle = open(options.query_log, "a", encoding="utf-8")
        completed = run_worker(
            options.root,
            options.worker_id,
            max_jobs=options.max_jobs,
            idle_timeout=options.idle_timeout,
            poll_interval=options.poll_interval,
            query_log=log_handle,
        )
    except ReproError as error:
        print(f"worker error: {error}")
        return 1
    finally:
        if log_handle is not None:
            log_handle.close()
    print(f"worker finished {completed} job(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
