"""The HTTP/JSON gateway in front of a serving root.

Stdlib-only (``http.server`` + ``socketserver`` threading mixin): one
thread per connection, no framework. The gateway holds **no job
state** — every request is answered off the filesystem job board, so
any number of gateways can front the same root and a gateway restart
loses nothing.

Protocol (all bodies JSON)::

    POST /v1/jobs                     submit; idempotent by spec hash
         -> 201 created / 200 duplicate {job_id, created, status}
         -> 429 + Retry-After when the tenant's queue is full
    GET  /v1/jobs/<id>                full state record
    GET  /v1/jobs/<id>/events         ?cursor=N  events past the cursor
                                      &wait=S    long-poll up to S secs
                                      &stream=1  NDJSON until terminal
    GET  /v1/jobs/<id>/result         200 report | 202 not done (+
                                      Retry-After) | 409 failed/cancelled
    POST /v1/jobs/<id>/cancel         marker (+ direct cancel if unclaimed)
    GET  /v1/healthz                  liveness + job tally

Admission control is explicit backpressure, not queueing theory: a
tenant may hold at most ``max_queued_per_tenant`` *unfinished* jobs;
beyond that, submits get ``429`` with a ``Retry-After`` header and a
typed :class:`~repro.serving.protocol.ServerBusyError` on the client.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.errors import InvalidParameterError
from repro.serving.board import TERMINAL_STATUSES, JobBoard
from repro.serving.config import ServingConfig, load_serving_config
from repro.serving.protocol import ServerBusyError, Submission

__all__ = ["ServingGateway"]

#: Valid job ids: ``j`` + 16 hex digits (see protocol.job_id_for).
_JOB_ID = re.compile(r"^j[0-9a-f]{16}$")

#: Route shapes.
_JOB_PATH = re.compile(r"^/v1/jobs/([^/]+)$")
_JOB_SUBPATH = re.compile(r"^/v1/jobs/([^/]+)/(events|result|cancel)$")

_STREAM_POLL_SECONDS = 0.02


class ServingGateway(ThreadingHTTPServer):
    """Threaded HTTP server over one serving root.

    Start it on an ephemeral port, point clients at :attr:`url`, stop
    it with :meth:`stop`. Pairs with worker processes watching the same
    root (:mod:`repro.serving.worker`) — the gateway itself never runs
    audits.

    Examples
    --------
    >>> import tempfile
    >>> from repro.serving.config import ServingConfig, init_serving_root
    >>> root = init_serving_root(tempfile.mkdtemp(), ServingConfig(
    ...     recipe={"kind": "synthetic-binary", "n": 100,
    ...             "n_minority": 20, "dataset_seed": 0}))
    >>> gateway = ServingGateway(root)
    >>> gateway.start()
    >>> gateway.url.startswith("http://127.0.0.1:")
    True
    >>> gateway.stop()
    """

    daemon_threads = True

    def __init__(
        self,
        root,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        config: ServingConfig | None = None,
    ) -> None:
        """Bind the gateway (port 0 = ephemeral) over ``root``."""
        self.board = JobBoard(root)
        self.config = config if config is not None else load_serving_config(root)
        self._queued: dict[str, set[str]] = {}
        self._admission_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        super().__init__(address, _GatewayHandler)

    # -- lifecycle --------------------------------------------------------
    @property
    def port(self) -> int:
        """The TCP port the gateway is bound to (0 picks a free one)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients talk to."""
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> None:
        """Serve requests on a background thread until :meth:`stop`."""
        self._thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serving-gateway",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and release the socket."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ServingGateway":
        """Context-manager entry: starts serving."""
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: stops serving."""
        self.stop()

    # -- admission control ------------------------------------------------
    def admit(self, submission: Submission) -> None:
        """Admission gate for one submit: raises
        :class:`~repro.serving.protocol.ServerBusyError` when the tenant
        already holds ``max_queued_per_tenant`` unfinished jobs.

        Tracking is optimistic: accepted job ids are remembered per
        tenant, and the set is reconciled against on-disk state only
        when it reaches the limit — the scan cost is paid exactly when
        backpressure is plausible."""
        limit = self.config.max_queued_per_tenant
        with self._admission_lock:
            held = self._queued.setdefault(submission.tenant, set())
            if submission.job_id in held:
                return  # duplicate submit never counts twice
            if len(held) >= limit:
                for job_id in list(held):
                    try:
                        state = self.board.read_state(job_id)
                    except InvalidParameterError:
                        held.discard(job_id)
                        continue
                    if state.get("status") in TERMINAL_STATUSES:
                        held.discard(job_id)
            if len(held) >= limit:
                raise ServerBusyError(
                    f"tenant {submission.tenant!r} already has {len(held)} "
                    f"unfinished jobs (limit {limit})",
                    retry_after=self.config.retry_after_seconds,
                )
            held.add(submission.job_id)


class _GatewayHandler(BaseHTTPRequestHandler):
    """Per-connection request handler; all logic delegates to the
    gateway's board."""

    protocol_version = "HTTP/1.1"
    server: ServingGateway

    # -- plumbing ---------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # tests and benchmarks drive thousands of requests

    def _send_json(
        self,
        status: int,
        payload: Mapping[str, Any],
        *,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise InvalidParameterError(f"request body is not JSON: {error}")

    def _job_id(self, raw: str) -> str:
        if not _JOB_ID.match(raw):
            raise InvalidParameterError(f"malformed job id {raw!r}")
        return raw

    # -- verbs ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route_get()
        except InvalidParameterError as error:
            status = 404 if "unknown job id" in str(error) else 400
            self._send_json(status, {"error": str(error)})
        except BrokenPipeError:
            pass  # client went away mid-stream
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route_post()
        except ServerBusyError as error:
            self._send_json(
                429,
                {"error": str(error), "retry_after": error.retry_after},
                headers={"Retry-After": f"{error.retry_after:g}"},
            )
        except InvalidParameterError as error:
            status = 404 if "unknown job id" in str(error) else 400
            self._send_json(status, {"error": str(error)})
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})

    # -- GET routes -------------------------------------------------------
    def _route_get(self) -> None:
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        if parts.path == "/v1/healthz":
            self._send_json(
                200, {"ok": True, "counts": self.server.board.counts()}
            )
            return
        match = _JOB_PATH.match(parts.path)
        if match:
            job_id = self._job_id(match.group(1))
            self._send_json(200, self.server.board.read_state(job_id))
            return
        match = _JOB_SUBPATH.match(parts.path)
        if match and match.group(2) == "events":
            self._events(self._job_id(match.group(1)), query)
            return
        if match and match.group(2) == "result":
            self._result(self._job_id(match.group(1)))
            return
        raise InvalidParameterError(f"no such route GET {parts.path}")

    def _events(self, job_id: str, query: Mapping[str, list[str]]) -> None:
        cursor = int((query.get("cursor") or ["0"])[0])
        if cursor < 0:
            raise InvalidParameterError(f"cursor must be >= 0, got {cursor}")
        if (query.get("stream") or ["0"])[0] in ("1", "true"):
            self._stream_events(job_id, cursor)
            return
        wait = float((query.get("wait") or ["0"])[0])
        deadline = time.monotonic() + wait
        while True:
            state = self.server.board.read_state(job_id)
            events = state["events"]
            done = state["status"] in TERMINAL_STATUSES
            if len(events) > cursor or done or time.monotonic() >= deadline:
                self._send_json(
                    200,
                    {
                        "job_id": job_id,
                        "status": state["status"],
                        "cursor": len(events),
                        "events": events[cursor:],
                    },
                )
                return
            time.sleep(_STREAM_POLL_SECONDS)

    def _stream_events(self, job_id: str, cursor: int) -> None:
        """Chunk-free streaming: NDJSON terminated by connection close.

        One JSON object per line, each carrying its cursor, so a client
        that loses the connection resumes with ``?cursor=<last + 1>``.
        The stream ends (server closes) once the job is terminal."""
        self.server.board.read_state(job_id)  # 404 before headers go out
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        while True:
            state = self.server.board.read_state(job_id)
            events = state["events"]
            for position in range(cursor, len(events)):
                record = dict(events[position])
                record["cursor"] = position + 1
                record["status"] = state["status"]
                self.wfile.write((json.dumps(record) + "\n").encode("utf-8"))
            cursor = max(cursor, len(events))
            self.wfile.flush()
            if state["status"] in TERMINAL_STATUSES:
                return
            time.sleep(_STREAM_POLL_SECONDS)

    def _result(self, job_id: str) -> None:
        state = self.server.board.read_state(job_id)
        status = state["status"]
        if status == "succeeded":
            self._send_json(
                200,
                {
                    "job_id": job_id,
                    "status": status,
                    "report": state["result"],
                    "tasks_paid": state.get("tasks_paid", 0),
                },
            )
        elif status in TERMINAL_STATUSES:
            self._send_json(
                409,
                {
                    "job_id": job_id,
                    "status": status,
                    "error": state.get("error") or f"job {status}",
                },
            )
        else:
            retry = self.server.config.retry_after_seconds
            self._send_json(
                202,
                {"job_id": job_id, "status": status, "retry_after": retry},
                headers={"Retry-After": f"{retry:g}"},
            )

    # -- POST routes ------------------------------------------------------
    def _route_post(self) -> None:
        parts = urlsplit(self.path)
        if parts.path == "/v1/jobs":
            self._submit()
            return
        match = _JOB_SUBPATH.match(parts.path)
        if match and match.group(2) == "cancel":
            self._cancel(self._job_id(match.group(1)))
            return
        raise InvalidParameterError(f"no such route POST {parts.path}")

    def _submit(self) -> None:
        submission = Submission.from_payload(self._read_body())
        self.server.admit(submission)
        job_id, created = self.server.board.submit(submission)
        state = self.server.board.read_state(job_id)
        self._send_json(
            201 if created else 200,
            {
                "job_id": job_id,
                "created": created,
                "status": state["status"],
                "spec_hash": submission.digest,
            },
        )

    def _cancel(self, job_id: str) -> None:
        board = self.server.board
        board.request_cancel(job_id)
        state = board.read_state(job_id)
        # Unclaimed queued jobs have no worker to honour the marker;
        # cancel them directly. A worker claiming concurrently still
        # sees the marker and converges on "cancelled".
        if (
            state["status"] == "queued"
            and board.lease_info(job_id) is None
        ):
            state["status"] = "cancelled"
            state["events"].append(
                {
                    "stage": "cancelled",
                    "detail": "cancelled while queued (gateway)",
                    "tasks": state.get("tasks_paid", 0),
                    "worker": None,
                }
            )
            board.write_state(job_id, state)
        self._send_json(
            200, {"job_id": job_id, "status": state["status"]}
        )
