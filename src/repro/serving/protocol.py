"""Wire-level building blocks of the serving surface.

Everything the HTTP front-end and the workers agree on lives here: the
**canonical JSON** form (sorted keys, no whitespace — byte-identical for
equal payloads), the **spec hash** that makes submits idempotent, the
derived **job id**, and validation of the submission payload a client
POSTs to ``/v1/jobs``.

The idempotency key covers everything that affects a job's *answers*:
the frozen spec (already losslessly serializable), the tenant it is
billed to, and the rng seed. Two submissions that agree on those three
are the same job — the board hands back the same job id and the audit
runs (and charges the crowd) exactly once. ``priority`` is scheduling
advice, not identity, so it is deliberately excluded.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.audit.specs import AuditSpec, spec_from_dict
from repro.errors import CheckpointVersionError, InvalidParameterError, ReproError

#: Format of the persisted ``submit.json`` record.
_SUBMISSION_VERSION = 1

__all__ = [
    "ServerBusyError",
    "Submission",
    "canonical_json",
    "spec_hash",
    "job_id_for",
]

#: Job ids are ``j`` + the first 16 hex digits of the submission hash.
_JOB_ID_HEX_DIGITS = 16

#: Tenants travel in JSON and in log lines; keep them printable and short.
_MAX_TENANT_LENGTH = 100


class ServerBusyError(ReproError):
    """The gateway refused a submit with ``429 Too Many Requests``.

    Carries the server's requested back-off so clients can honour the
    ``Retry-After`` header without parsing it themselves.

    Examples
    --------
    >>> error = ServerBusyError("tenant queue full", retry_after=1.5)
    >>> error.retry_after
    1.5
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, minimal separators.

    Equal payloads (up to dict ordering) serialize to byte-identical
    strings, which is what makes hashing them meaningful.

    Examples
    --------
    >>> canonical_json({"b": 1, "a": [1, 2]})
    '{"a":[1,2],"b":1}'
    >>> canonical_json({"a": [1, 2], "b": 1})
    '{"a":[1,2],"b":1}'
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_hash(spec: "AuditSpec | Mapping[str, Any]", *, tenant: str = "default",
              seed: int | None = None) -> str:
    """SHA-256 over the canonical submission identity (spec, tenant, seed).

    Accepts a frozen spec or its ``to_dict`` form — both hash the same.

    Examples
    --------
    >>> from repro.audit import GroupAuditSpec
    >>> from repro.data.groups import group
    >>> spec = GroupAuditSpec(predicate=group(gender="female"), tau=50)
    >>> a = spec_hash(spec, tenant="team-a")
    >>> b = spec_hash(spec.to_dict(), tenant="team-a")
    >>> a == b and len(a) == 64
    True
    >>> spec_hash(spec, tenant="team-b") == a       # tenant is identity
    False
    """
    spec_dict = spec if isinstance(spec, Mapping) else spec.to_dict()
    identity = canonical_json(
        {"spec": spec_dict, "tenant": tenant, "seed": seed}
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()


def job_id_for(digest: str) -> str:
    """The job id derived from a :func:`spec_hash` digest.

    Examples
    --------
    >>> job_id_for("ab" * 32)
    'jabababababababab'
    """
    return "j" + digest[:_JOB_ID_HEX_DIGITS]


def _validate_tenant(tenant: Any) -> str:
    if not isinstance(tenant, str) or not tenant:
        raise InvalidParameterError(
            f"tenant must be a non-empty string, got {tenant!r}"
        )
    if len(tenant) > _MAX_TENANT_LENGTH:
        raise InvalidParameterError(
            f"tenant must be at most {_MAX_TENANT_LENGTH} characters, "
            f"got {len(tenant)}"
        )
    if not tenant.isprintable():
        raise InvalidParameterError(
            "tenant must contain printable characters only"
        )
    return tenant


@dataclass(frozen=True)
class Submission:
    """One validated submit request: the unit the board persists.

    Build it with :meth:`from_payload` (wire dicts) or
    :meth:`from_spec` (in-process callers); both compute the
    idempotency hash and job id once, at construction.

    Examples
    --------
    >>> from repro.audit import GroupAuditSpec
    >>> from repro.data.groups import group
    >>> spec = GroupAuditSpec(predicate=group(gender="female"), tau=50)
    >>> submission = Submission.from_spec(spec, tenant="fairness")
    >>> wire = Submission.from_payload({"spec": spec.to_dict(),
    ...                                 "tenant": "fairness"})
    >>> submission.job_id == wire.job_id
    True
    >>> submission.job_id == Submission.from_spec(spec, tenant="other").job_id
    False
    """

    spec_dict: Mapping[str, Any]
    tenant: str
    seed: int | None
    priority: int
    digest: str
    job_id: str

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Submission":
        """Validate a wire payload ``{"spec": ..., "tenant": ...,
        "seed": ..., "priority": ...}`` into a :class:`Submission`.
        Raises :class:`~repro.errors.InvalidParameterError` for missing
        or malformed fields (including unknown spec kinds)."""
        if not isinstance(payload, Mapping):
            raise InvalidParameterError(
                f"submission payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        spec_dict = payload.get("spec")
        if not isinstance(spec_dict, Mapping):
            raise InvalidParameterError(
                "submission payload is missing its 'spec' object"
            )
        # Round-trip through the typed spec: rejects unknown kinds and
        # malformed fields, and normalizes the dict we persist/hash.
        try:
            spec = spec_from_dict(spec_dict)
        except InvalidParameterError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            # The spec codecs expect their own to_dict output; a
            # hand-written wire spec missing a field must read as a bad
            # request, not a server error.
            raise InvalidParameterError(
                f"malformed spec: {error.__class__.__name__}: {error}"
            ) from error
        tenant = _validate_tenant(payload.get("tenant", "default"))
        seed = payload.get("seed")
        if seed is not None:
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise InvalidParameterError(
                    f"seed must be an integer or null, got {seed!r}"
                )
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise InvalidParameterError(
                f"priority must be an integer, got {priority!r}"
            )
        return cls.from_spec(spec, tenant=tenant, seed=seed, priority=priority)

    @classmethod
    def from_spec(
        cls,
        spec: AuditSpec,
        *,
        tenant: str = "default",
        seed: int | None = None,
        priority: int = 0,
    ) -> "Submission":
        """Build a submission from a frozen spec (in-process callers)."""
        _validate_tenant(tenant)
        spec_dict = spec.to_dict()
        digest = spec_hash(spec_dict, tenant=tenant, seed=seed)
        return cls(
            spec_dict=spec_dict,
            tenant=tenant,
            seed=None if seed is None else int(seed),
            priority=int(priority),
            digest=digest,
            job_id=job_id_for(digest),
        )

    def spec(self) -> AuditSpec:
        """The typed frozen spec this submission carries."""
        return spec_from_dict(self.spec_dict)

    def to_dict(self) -> dict[str, Any]:
        """The JSON record the board persists as ``submit.json``."""
        return {
            "version": _SUBMISSION_VERSION,
            "job_id": self.job_id,
            "spec": dict(self.spec_dict),
            "tenant": self.tenant,
            "seed": self.seed,
            "priority": self.priority,
            "spec_hash": self.digest,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "Submission":
        """Rebuild a submission from its persisted :meth:`to_dict` form."""
        version = record.get("version")
        if version != _SUBMISSION_VERSION:
            raise CheckpointVersionError(
                f"unsupported submission record version {version!r} "
                f"(this build reads version {_SUBMISSION_VERSION})"
            )
        try:
            return cls(
                spec_dict=record["spec"],
                tenant=str(record["tenant"]),
                seed=record["seed"],
                priority=int(record["priority"]),
                digest=str(record["spec_hash"]),
                job_id=str(record["job_id"]),
            )
        except KeyError as error:
            raise CheckpointVersionError(
                f"submission record is missing field {error.args[0]!r}"
            ) from error
