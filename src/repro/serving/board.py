"""The on-disk job board gateway and workers coordinate through.

One directory per job under ``<root>/jobs/``, named by the submission's
idempotency hash::

    jobs/<job_id>/
      submit.json     immutable submission record (spec, tenant, seed)
      state.json      mutable status/events/result — atomic replace
      lease.json      live worker claim (worker id, token, heartbeat)
      cancel          cancellation request marker
      store/          the job's private DirectoryJobStore (checkpoints)

Three invariants carry the whole serving design:

* **Idempotent creation.** ``submit.json`` is born via hard-link from a
  fully written temp file, so it is atomic *and* exclusive: exactly one
  of any number of concurrent submitters of the same spec hash creates
  the job; everyone else observes it already exists and gets the same
  job id back. A partially written submission is never visible.
* **Atomic claims.** A lease is claimed the same way (exclusive link).
  Stale leases (heartbeat older than the TTL) are taken over by first
  renaming the stale file aside — ``os.rename`` of one source path
  succeeds for exactly one racer — so two workers can never both win a
  takeover.
* **Torn-read-free state.** Every ``state.json`` write is temp file +
  ``os.replace``, the same contract :class:`~repro.service.DirectoryJobStore`
  pins for checkpoints: readers see the old record or the new one,
  never a hybrid.

The board is deliberately dumb — no daemon, no locks held across calls
— so any process that can see the filesystem can act as gateway or
worker, and a SIGKILL at any instruction leaves a directory some other
process can pick up.
"""

from __future__ import annotations

import json
import os
import secrets
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.errors import CheckpointVersionError, InvalidParameterError, ReproError
from repro.serving.protocol import Submission

__all__ = ["LeaseLostError", "Lease", "JobBoard", "TERMINAL_STATUSES"]

#: Outer job statuses with no further transitions.
TERMINAL_STATUSES = frozenset({"succeeded", "failed", "cancelled"})

_STATE_VERSION = 1


class LeaseLostError(ReproError):
    """The worker's lease was taken over (or released) under it.

    Raised by :meth:`JobBoard.heartbeat` when the lease file no longer
    carries the caller's token: the job now belongs to someone else and
    the caller must stop touching its state.

    Examples
    --------
    >>> issubclass(LeaseLostError, ReproError)
    True
    """


@dataclass(frozen=True)
class Lease:
    """A worker's claim on one job: identity plus the proof token.

    Examples
    --------
    >>> lease = Lease(job_id="j" + "0" * 16, worker="w1", token="ab12")
    >>> lease.worker
    'w1'
    """

    job_id: str
    worker: str
    token: str


def _write_atomic(path: Path, payload: Mapping[str, Any]) -> None:
    scratch = path.with_name(path.name + f".tmp-{secrets.token_hex(4)}")
    scratch.write_text(json.dumps(payload))
    os.replace(scratch, path)


def _link_exclusive(path: Path, payload: Mapping[str, Any]) -> bool:
    """Create ``path`` with ``payload`` atomically and exclusively:
    the file appears fully written or not at all, and exactly one of
    any number of racers succeeds. Returns False for the losers."""
    scratch = path.with_name(path.name + f".link-{secrets.token_hex(4)}")
    scratch.write_text(json.dumps(payload))
    try:
        os.link(scratch, path)
        return True
    except FileExistsError:
        return False
    finally:
        os.unlink(scratch)


def _read_json(path: Path) -> dict[str, Any] | None:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        return None


class JobBoard:
    """Filesystem job board over one serving root.

    Examples
    --------
    >>> import tempfile
    >>> from repro.audit import GroupAuditSpec
    >>> from repro.data.groups import group
    >>> from repro.serving.protocol import Submission
    >>> board = JobBoard(tempfile.mkdtemp())
    >>> spec = GroupAuditSpec(predicate=group(gender="female"), tau=5)
    >>> submission = Submission.from_spec(spec, tenant="team-a")
    >>> job_id, created = board.submit(submission)
    >>> _, again = board.submit(submission)      # idempotent
    >>> (created, again, board.read_state(job_id)["status"])
    (True, False, 'queued')
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    # -- submission -------------------------------------------------------
    def submit(self, submission: Submission) -> tuple[str, bool]:
        """Create the job (idempotently); returns ``(job_id, created)``.

        Concurrent submits of the same idempotency hash race on an
        exclusive link: one creates, the rest observe — all get the
        same id, the audit runs once.
        """
        job_dir = self.jobs_dir / submission.job_id
        job_dir.mkdir(exist_ok=True)
        created = _link_exclusive(job_dir / "submit.json", submission.to_dict())
        if created:
            self.write_state(
                submission.job_id,
                self._initial_state(submission),
            )
        return submission.job_id, created

    def _initial_state(self, submission: Submission) -> dict[str, Any]:
        return {
            "version": _STATE_VERSION,
            "job_id": submission.job_id,
            "tenant": submission.tenant,
            "status": "queued",
            "events": [
                {
                    "stage": "submitted",
                    "detail": f"tenant={submission.tenant} "
                    f"priority={submission.priority}",
                    "tasks": 0,
                    "worker": None,
                }
            ],
            "result": None,
            "error": None,
            "worker": None,
            "tasks_paid": 0,
        }

    # -- reading ----------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        """The job's directory under the root (existing or not)."""
        return self.jobs_dir / job_id

    def job_ids(self) -> list[str]:
        """Every job directory name, sorted (= stable scan order)."""
        try:
            return sorted(
                entry.name
                for entry in os.scandir(self.jobs_dir)
                if entry.is_dir()
            )
        except FileNotFoundError:
            return []

    def read_submission(self, job_id: str) -> Submission | None:
        """The job's immutable submission record, or ``None`` before the
        winning submitter finished creating it."""
        record = _read_json(self.job_dir(job_id) / "submit.json")
        return None if record is None else Submission.from_dict(record)

    def read_state(self, job_id: str) -> dict[str, Any]:
        """The job's current state record. A job whose ``state.json`` is
        not (yet) on disk reports a synthesized ``queued`` state, so the
        submit path never blocks on the initial state write; raises
        :class:`~repro.errors.InvalidParameterError` for unknown ids."""
        state = _read_json(self.job_dir(job_id) / "state.json")
        if state is not None:
            version = state.get("version")
            if version != _STATE_VERSION:
                raise CheckpointVersionError(
                    f"unsupported job state version {version!r} for job "
                    f"{job_id!r} (this build reads version {_STATE_VERSION})"
                )
            return state
        submission = self.read_submission(job_id)
        if submission is None:
            raise InvalidParameterError(f"unknown job id {job_id!r}")
        return self._initial_state(submission)

    def write_state(self, job_id: str, state: Mapping[str, Any]) -> None:
        """Atomically replace the job's state record."""
        _write_atomic(self.job_dir(job_id) / "state.json", state)

    def states(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """Iterate ``(job_id, state)`` over every job with a submission."""
        for job_id in self.job_ids():
            try:
                yield job_id, self.read_state(job_id)
            except InvalidParameterError:
                continue  # directory exists, submit.json not linked yet

    # -- cancellation -----------------------------------------------------
    def request_cancel(self, job_id: str) -> None:
        """Leave a cancellation marker for the job's worker (or for the
        gateway to act on directly while the job is unclaimed)."""
        if self.read_submission(job_id) is None:
            raise InvalidParameterError(f"unknown job id {job_id!r}")
        (self.job_dir(job_id) / "cancel").touch()

    def cancel_requested(self, job_id: str) -> bool:
        """True when a cancellation marker exists for the job."""
        return (self.job_dir(job_id) / "cancel").exists()

    # -- leases -----------------------------------------------------------
    def _lease_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "lease.json"

    def lease_info(self, job_id: str) -> dict[str, Any] | None:
        """The current lease record, or ``None`` when unclaimed."""
        return _read_json(self._lease_path(job_id))

    def lease_is_stale(self, info: Mapping[str, Any], ttl: float) -> bool:
        """Whether a lease record's heartbeat is older than ``ttl``."""
        return (time.time() - float(info.get("heartbeat", 0.0))) > ttl

    def try_claim(self, job_id: str, worker: str, *, ttl: float) -> Lease | None:
        """Attempt to claim the job for ``worker``; ``None`` when someone
        else holds a live lease (or wins the race).

        A stale lease (heartbeat older than ``ttl``) is taken over: the
        stale file is renamed aside — an atomic step exactly one racer
        can perform — and a fresh lease is created exclusively.
        """
        token = secrets.token_hex(8)
        path = self._lease_path(job_id)
        info = _read_json(path)
        if info is not None:
            if not self.lease_is_stale(info, ttl):
                return None
            aside = path.with_name(f"lease.stale-{token}")
            try:
                os.rename(path, aside)
            except FileNotFoundError:
                return None  # another claimer already took it aside
            os.unlink(aside)
        now = time.time()
        lease = Lease(job_id=job_id, worker=worker, token=token)
        created = _link_exclusive(
            path,
            {
                "worker": worker,
                "token": token,
                "heartbeat": now,
                "claimed_at": now,
            },
        )
        return lease if created else None

    def heartbeat(self, lease: Lease) -> None:
        """Refresh the lease's heartbeat; raises :class:`LeaseLostError`
        when the lease no longer carries the caller's token."""
        path = self._lease_path(lease.job_id)
        info = _read_json(path)
        if info is None or info.get("token") != lease.token:
            raise LeaseLostError(
                f"lease on {lease.job_id} no longer belongs to "
                f"{lease.worker}"
            )
        info["heartbeat"] = time.time()
        _write_atomic(path, info)
        # Verify the write stuck: a takeover racing the refresh must
        # leave exactly one owner, and the loser must find out here.
        info = _read_json(path)
        if info is None or info.get("token") != lease.token:
            raise LeaseLostError(
                f"lease on {lease.job_id} was taken over during refresh"
            )

    def release(self, lease: Lease) -> None:
        """Drop the lease (after the final state write). A lease already
        taken over is left alone."""
        path = self._lease_path(lease.job_id)
        info = _read_json(path)
        if info is not None and info.get("token") == lease.token:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

    # -- worker scanning --------------------------------------------------
    def claimable(self, job_id: str, *, ttl: float) -> bool:
        """Cheap pre-claim filter: the job has a submission, is not
        terminal, and carries no live lease."""
        state = _read_json(self.job_dir(job_id) / "state.json")
        if state is not None and state.get("status") in TERMINAL_STATUSES:
            return False
        if state is None and self.read_submission(job_id) is None:
            return False
        info = self.lease_info(job_id)
        return info is None or self.lease_is_stale(info, ttl)

    # -- tallies ----------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Job tally by outer status (scans every job — ops/debugging)."""
        tally: dict[str, int] = {}
        for _, state in self.states():
            status = state.get("status", "queued")
            tally[status] = tally.get(status, 0) + 1
        return tally
