"""Deployment configuration of one serving root.

A serving root is a directory every process of the deployment — the
HTTP gateway and any number of worker processes, possibly on different
machines sharing a filesystem — agrees on. ``serving.json`` at its top
records the two things they must agree on *exactly*:

* the **oracle recipe** — how a worker rebuilds the answer source
  (dataset + oracle) in its own process. Audits are deterministic given
  the oracle and the per-job seed, so identical recipes are what makes
  a job resumable by *any* worker with bit-identical verdicts;
* the **engine and scheduling knobs** — batch size, speculation, lease
  TTL, admission limits — so a re-leased job replays under the same
  batching it started with.

Recipes cover the synthetic generators the paper's experiments use
(§6.5); a deployment over real data registers its own builder under a
new kind via :func:`register_recipe`.
"""

from __future__ import annotations

import json
import os
import secrets
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro.crowd.oracle import GroundTruthOracle, Oracle
from repro.data.synthetic import binary_dataset, single_attribute_dataset
from repro.errors import InvalidParameterError

__all__ = [
    "ServingConfig",
    "build_oracle",
    "register_recipe",
    "init_serving_root",
    "load_serving_config",
]

_CONFIG_NAME = "serving.json"
_CONFIG_VERSION = 1

#: kind -> builder(recipe_dict) -> Oracle
_RECIPES: dict[str, Callable[[Mapping[str, Any]], Oracle]] = {}


def register_recipe(kind: str, builder: Callable[[Mapping[str, Any]], Oracle]) -> None:
    """Register an oracle builder for recipe ``kind``.

    Every worker process must register the same builder before it can
    serve jobs from a root whose recipe uses it.

    Examples
    --------
    >>> register_recipe("null-for-doc", lambda recipe: None)
    >>> "null-for-doc" in _RECIPES
    True
    """
    _RECIPES[str(kind)] = builder


def _binary_recipe(recipe: Mapping[str, Any]) -> Oracle:
    dataset = binary_dataset(
        int(recipe["n"]),
        int(recipe["n_minority"]),
        rng=np.random.default_rng(int(recipe["dataset_seed"])),
    )
    return GroundTruthOracle(dataset)


def _single_attribute_recipe(recipe: Mapping[str, Any]) -> Oracle:
    counts = {str(k): int(v) for k, v in recipe["counts"].items()}
    dataset = single_attribute_dataset(
        counts, rng=np.random.default_rng(int(recipe["dataset_seed"]))
    )
    return GroundTruthOracle(dataset)


register_recipe("synthetic-binary", _binary_recipe)
register_recipe("synthetic-single-attribute", _single_attribute_recipe)


def build_oracle(recipe: Mapping[str, Any]) -> Oracle:
    """Build the deployment's oracle from its recipe dict.

    Examples
    --------
    >>> oracle = build_oracle({"kind": "synthetic-binary", "n": 100,
    ...                        "n_minority": 10, "dataset_seed": 0})
    >>> len(oracle.dataset)
    100
    """
    kind = recipe.get("kind")
    builder = _RECIPES.get(kind)
    if builder is None:
        raise InvalidParameterError(
            f"unknown oracle recipe kind {kind!r}; registered: "
            f"{sorted(_RECIPES)}"
        )
    return builder(recipe)


@dataclass(frozen=True)
class ServingConfig:
    """Everything a gateway or worker needs to serve one root.

    Attributes
    ----------
    recipe:
        Oracle recipe dict (see :func:`build_oracle`).
    batch_size / speculation:
        Engine knobs every worker runs jobs under (identical batching is
        part of what makes re-leased jobs bit-identical).
    lease_ttl_seconds:
        A lease whose heartbeat is older than this is *stale*: any
        worker may take the job over. Live workers heartbeat at a third
        of this.
    checkpoint_every:
        Scheduler-step period of per-job durable checkpoints. 1 means
        every paid round is durable before the next is asked — the
        zero-re-asked-queries setting the chaos suite pins.
    max_queued_per_tenant:
        Admission ceiling: submits beyond this many *queued* (unclaimed)
        jobs for one tenant are refused with 429 + Retry-After.
    retry_after_seconds:
        The back-off a refused submit advertises.
    step_delay_seconds:
        Optional worker-side sleep between scheduler steps — simulates
        crowd latency in tests and keeps chaos kills mid-job.

    Examples
    --------
    >>> config = ServingConfig(recipe={"kind": "synthetic-binary", "n": 100,
    ...                                "n_minority": 10, "dataset_seed": 0})
    >>> ServingConfig.from_dict(config.to_dict()) == config
    True
    """

    recipe: Mapping[str, Any] = field(default_factory=dict)
    batch_size: int = 32
    speculation: int | None = None
    lease_ttl_seconds: float = 5.0
    checkpoint_every: int = 1
    max_queued_per_tenant: int = 1024
    retry_after_seconds: float = 1.0
    step_delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise InvalidParameterError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.checkpoint_every < 1:
            raise InvalidParameterError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.lease_ttl_seconds <= 0:
            raise InvalidParameterError(
                f"lease_ttl_seconds must be positive, got {self.lease_ttl_seconds}"
            )
        if self.max_queued_per_tenant < 1:
            raise InvalidParameterError(
                "max_queued_per_tenant must be >= 1, got "
                f"{self.max_queued_per_tenant}"
            )
        # Freeze the recipe so equal configs compare equal.
        object.__setattr__(self, "recipe", dict(self.recipe))

    def to_dict(self) -> dict[str, Any]:
        """JSON form persisted as ``serving.json``."""
        return {
            "version": _CONFIG_VERSION,
            "recipe": dict(self.recipe),
            "batch_size": self.batch_size,
            "speculation": self.speculation,
            "lease_ttl_seconds": self.lease_ttl_seconds,
            "checkpoint_every": self.checkpoint_every,
            "max_queued_per_tenant": self.max_queued_per_tenant,
            "retry_after_seconds": self.retry_after_seconds,
            "step_delay_seconds": self.step_delay_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingConfig":
        """Rebuild a config from its :meth:`to_dict` form."""
        version = data.get("version")
        if version != _CONFIG_VERSION:
            raise InvalidParameterError(
                f"unsupported serving config version {version!r} "
                f"(this build reads version {_CONFIG_VERSION})"
            )
        try:
            return cls(
                recipe=data["recipe"],
                batch_size=int(data["batch_size"]),
                speculation=data["speculation"],
                lease_ttl_seconds=float(data["lease_ttl_seconds"]),
                checkpoint_every=int(data["checkpoint_every"]),
                max_queued_per_tenant=int(data["max_queued_per_tenant"]),
                retry_after_seconds=float(data["retry_after_seconds"]),
                step_delay_seconds=float(data["step_delay_seconds"]),
            )
        except KeyError as error:
            raise InvalidParameterError(
                f"serving config payload is missing field {error.args[0]!r}"
            ) from error

    def build_oracle(self) -> Oracle:
        """A fresh oracle from this config's recipe (one per job run,
        so per-process ledgers attribute spend to exactly one job)."""
        return build_oracle(self.recipe)


def init_serving_root(root: str | os.PathLike[str], config: ServingConfig) -> Path:
    """Create (or validate) a serving root: writes ``serving.json`` and
    the ``jobs/`` directory; idempotent when the existing config matches,
    and refuses to silently re-purpose a root whose config differs.

    Examples
    --------
    >>> import tempfile
    >>> config = ServingConfig(recipe={"kind": "synthetic-binary", "n": 100,
    ...                                "n_minority": 10, "dataset_seed": 0})
    >>> root = init_serving_root(tempfile.mkdtemp(), config)
    >>> load_serving_config(root) == config
    True
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    (root / "jobs").mkdir(exist_ok=True)
    config_path = root / _CONFIG_NAME
    # try/except instead of exists(): a concurrent initialiser may publish
    # serving.json between the check and the read.
    try:
        existing = ServingConfig.from_dict(json.loads(config_path.read_text()))
    except FileNotFoundError:
        existing = None
    if existing is not None:
        if existing != config:
            raise InvalidParameterError(
                f"serving root {root} is already initialised with a "
                "different config; refusing to overwrite it"
            )
        return root
    # Unique scratch name: two processes initialising the same root must
    # not rename each other's half-written config (the PR 6 store race).
    scratch = config_path.with_suffix(
        f".json.tmp-{os.getpid()}-{secrets.token_hex(4)}"
    )
    try:
        scratch.write_text(json.dumps(config.to_dict(), indent=2, sort_keys=True))
        os.replace(scratch, config_path)
    except BaseException:
        scratch.unlink(missing_ok=True)
        raise
    return root


def load_serving_config(root: str | os.PathLike[str]) -> ServingConfig:
    """Read the root's ``serving.json``.

    Examples
    --------
    >>> import tempfile
    >>> config = ServingConfig(recipe={"kind": "synthetic-binary", "n": 50,
    ...                                "n_minority": 5, "dataset_seed": 1})
    >>> root = init_serving_root(tempfile.mkdtemp(), config)
    >>> load_serving_config(root).batch_size
    32
    """
    path = Path(root) / _CONFIG_NAME
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise InvalidParameterError(
            f"{path} does not exist; initialise the root with "
            "init_serving_root first"
        ) from None
    return ServingConfig.from_dict(payload)
