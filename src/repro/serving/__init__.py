"""Network-facing serving surface over the audit service.

The in-process :class:`~repro.service.AuditService` (PR 4) becomes a
deployable system here: a stdlib-only HTTP/JSON gateway
(:class:`ServingGateway` / :class:`ServingClient`), a filesystem job
board (:class:`JobBoard`) any number of processes coordinate through,
and killable worker processes (:func:`run_worker`,
:class:`WorkerPool`) that lease jobs, checkpoint every paid round, and
pick up each other's work after a crash with zero re-asked paid
queries.

Submits are **idempotent**: the job id is derived from the hash of the
frozen spec + tenant + seed (:func:`spec_hash`), so duplicate submits —
concurrent or retried — converge on one job and one bill. Tenants get
explicit **backpressure**: beyond ``max_queued_per_tenant`` unfinished
jobs, submits are refused with HTTP 429 and a typed
:class:`ServerBusyError`.

See ``docs/guide/serving.md`` for the protocol walkthrough and the
failure/recovery semantics, and ``tests/serving/`` for the
conformance/chaos suite that pins them.
"""

from repro.serving.board import (
    TERMINAL_STATUSES,
    JobBoard,
    Lease,
    LeaseLostError,
)
from repro.serving.client import ServingClient
from repro.serving.config import (
    ServingConfig,
    build_oracle,
    init_serving_root,
    load_serving_config,
    register_recipe,
)
from repro.serving.pool import WorkerPool
from repro.serving.protocol import (
    ServerBusyError,
    Submission,
    canonical_json,
    job_id_for,
    spec_hash,
)
from repro.serving.server import ServingGateway
from repro.serving.worker import QueryLoggingOracle, run_worker

__all__ = [
    "JobBoard",
    "Lease",
    "LeaseLostError",
    "QueryLoggingOracle",
    "ServerBusyError",
    "ServingClient",
    "ServingConfig",
    "ServingGateway",
    "Submission",
    "TERMINAL_STATUSES",
    "WorkerPool",
    "build_oracle",
    "canonical_json",
    "init_serving_root",
    "job_id_for",
    "load_serving_config",
    "register_recipe",
    "run_worker",
    "spec_hash",
]
