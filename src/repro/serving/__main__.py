"""Boot a whole deployment: gateway + worker pool over one root.

::

    python -m repro.serving --root /var/run/audits --workers 2 --port 8321

The root must already be initialised (see
:func:`repro.serving.config.init_serving_root`), or pass ``--demo`` to
initialise it with the paper's synthetic binary dataset recipe.
Ctrl-C stops the gateway and terminates the workers.
"""

from __future__ import annotations

import argparse
import time

from repro.errors import ReproError
from repro.serving.config import ServingConfig, init_serving_root
from repro.serving.pool import WorkerPool
from repro.serving.server import ServingGateway


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro.serving``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Serve audit jobs over HTTP with a pool of workers.",
    )
    parser.add_argument("--root", required=True, help="serving root directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--demo",
        action="store_true",
        help="initialise the root with a synthetic demo recipe if empty",
    )
    options = parser.parse_args(argv)
    if options.demo:
        init_serving_root(
            options.root,
            ServingConfig(
                recipe={
                    "kind": "synthetic-binary",
                    "n": 10_000,
                    "n_minority": 500,
                    "dataset_seed": 0,
                }
            ),
        )
    try:
        gateway = ServingGateway(options.root, (options.host, options.port))
    except ReproError as error:
        print(f"cannot start gateway: {error}")
        return 1
    gateway.start()
    print(f"gateway listening on {gateway.url} (root {options.root})")
    with WorkerPool(options.root, n_workers=options.workers):
        print(f"{options.workers} worker(s) running; Ctrl-C to stop")
        try:
            while True:
                time.sleep(1)
        except KeyboardInterrupt:
            print("stopping")
        finally:
            gateway.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
