"""Downstream-task disparity experiments (§6.4 / Figure 6)."""

from repro.downstream.experiments import (
    DisparityCurve,
    DisparityPoint,
    drowsiness_experiment,
    gender_experiment,
    run_disparity_experiment,
)

__all__ = [
    "DisparityCurve",
    "DisparityPoint",
    "run_disparity_experiment",
    "drowsiness_experiment",
    "gender_experiment",
]
