"""Downstream-task consequences of coverage gaps (§6.4, Figure 6).

The paper demonstrates that lack of coverage *causes* model-performance
disparity, and that resolving it (re-adding samples from the uncovered
group) shrinks the disparity:

* **Drowsiness detection** (Fig 6a): an eye open/closed CNN trained with
  spectacled subjects excluded loses ~10 accuracy points on spectacled
  test subjects; adding 20..100 spectacled images per class closes the
  gap.
* **Gender detection** (Fig 6b): a gender CNN trained on Caucasian-only
  faces shows ~1 % disparity on Black subjects, likewise resolved.

:func:`run_disparity_experiment` implements the shared protocol —
train with the uncovered group excluded, measure accuracy/loss disparity
between a randomly-drawn test set and an uncovered-only test set, re-add
``k`` uncovered samples *per target class* and repeat, averaging over
independent repetitions — and the two paper experiments are thin
configurations of it over the synthetic corpora.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.classifiers.nn import MLPClassifier
from repro.data.corpora import mrl_eye_pool, utkface_gender_pool
from repro.data.dataset import LabeledDataset
from repro.data.groups import Group, group
from repro.errors import InvalidParameterError

__all__ = [
    "DisparityPoint",
    "DisparityCurve",
    "run_disparity_experiment",
    "drowsiness_experiment",
    "gender_experiment",
]


@dataclass(frozen=True)
class DisparityPoint:
    """Mean metrics after re-adding ``n_added`` uncovered samples per class."""

    n_added: int
    accuracy_disparity: float
    loss_disparity: float
    random_test_accuracy: float
    uncovered_test_accuracy: float


@dataclass(frozen=True)
class DisparityCurve:
    """The Figure 6 series: disparity as a function of re-added samples."""

    experiment: str
    points: tuple[DisparityPoint, ...]

    @property
    def n_added_values(self) -> tuple[int, ...]:
        return tuple(point.n_added for point in self.points)

    @property
    def accuracy_disparities(self) -> tuple[float, ...]:
        return tuple(point.accuracy_disparity for point in self.points)

    @property
    def loss_disparities(self) -> tuple[float, ...]:
        return tuple(point.loss_disparity for point in self.points)

    def is_monotonically_improving(self, slack: float = 0.0) -> bool:
        """Does accuracy disparity shrink from first to last point?"""
        return (
            self.points[-1].accuracy_disparity
            <= self.points[0].accuracy_disparity + slack
        )

    def describe(self) -> str:
        lines = [f"{self.experiment}: disparity vs re-added uncovered samples"]
        lines.append(f"  {'added':>6} {'acc disparity':>14} {'loss disparity':>15}")
        for point in self.points:
            lines.append(
                f"  {point.n_added:>6} {point.accuracy_disparity:>14.4f} "
                f"{point.loss_disparity:>15.4f}"
            )
        return "\n".join(lines)


def _stratified_take(
    rng: np.random.Generator,
    candidates: np.ndarray,
    labels: np.ndarray,
    per_class: int,
    n_classes: int,
) -> np.ndarray:
    """``per_class`` random indices from ``candidates`` for each label class."""
    taken: list[np.ndarray] = []
    for cls in range(n_classes):
        members = candidates[labels[candidates] == cls]
        count = min(per_class, len(members))
        if count:
            taken.append(rng.choice(members, size=count, replace=False))
    return np.concatenate(taken) if taken else np.empty(0, dtype=np.int64)


def run_disparity_experiment(
    pool: LabeledDataset,
    target_attribute: str,
    uncovered_group: Group,
    *,
    additions: Sequence[int] = (0, 20, 40, 60, 80, 100),
    n_repeats: int = 10,
    rng: np.random.Generator,
    test_fraction: float = 0.2,
    uncovered_test_size: int = 400,
    max_train_size: int | None = None,
    experiment_name: str = "disparity",
    n_hidden: int = 32,
    n_epochs: int = 8,
) -> DisparityCurve:
    """The §6.4 protocol on an arbitrary pool.

    Parameters
    ----------
    pool:
        The full world, images attached. Must contain both covered and
        uncovered objects.
    target_attribute:
        The label the model predicts (e.g. ``eye_state``).
    uncovered_group:
        The group excluded from training (e.g. ``spectacled=yes``).
    additions:
        Numbers of uncovered samples re-added *per target class*.
    n_repeats:
        Independent train/test resamplings averaged per point (the paper
        repeats 10 times).
    max_train_size:
        Optional cap on the covered training set (for fast test runs).

    Returns
    -------
    DisparityCurve
    """
    if pool.features is None:
        raise InvalidParameterError("pool must carry feature vectors (attach_images)")
    if n_repeats < 1:
        raise InvalidParameterError("n_repeats must be >= 1")
    if not additions:
        raise InvalidParameterError("additions must be non-empty")

    target = pool.schema.attribute(target_attribute)
    labels = pool.column(target_attribute).astype(np.int64)
    features = pool.features
    uncovered_mask = pool.mask(uncovered_group)
    covered_indices = np.flatnonzero(~uncovered_mask)
    uncovered_indices = np.flatnonzero(uncovered_mask)
    if len(covered_indices) == 0 or len(uncovered_indices) == 0:
        raise InvalidParameterError(
            "pool must contain both covered and uncovered objects"
        )

    sums = {
        k: {"acc_disp": 0.0, "loss_disp": 0.0, "rand_acc": 0.0, "unc_acc": 0.0}
        for k in additions
    }
    for _ in range(n_repeats):
        covered_shuffled = rng.permutation(covered_indices)
        n_test_covered = max(1, int(len(covered_shuffled) * test_fraction))
        test_covered = covered_shuffled[:n_test_covered]
        train_covered = covered_shuffled[n_test_covered:]
        if max_train_size is not None:
            train_covered = train_covered[:max_train_size]

        uncovered_shuffled = rng.permutation(uncovered_indices)
        n_test_uncovered = min(uncovered_test_size, max(1, len(uncovered_shuffled) // 2))
        test_uncovered = uncovered_shuffled[:n_test_uncovered]
        addition_pool = uncovered_shuffled[n_test_uncovered:]

        # The "randomly sampled test set": covered/uncovered held-out data
        # mixed at the world's own proportions.
        world_uncovered_share = len(uncovered_indices) / len(pool)
        n_random_uncovered = int(round(len(test_covered) * world_uncovered_share))
        test_random = np.concatenate(
            [test_covered, test_uncovered[: max(n_random_uncovered, 0)]]
        )

        for n_added in additions:
            added = _stratified_take(
                rng, addition_pool, labels, n_added, target.cardinality
            )
            train = (
                np.concatenate([train_covered, added]) if len(added) else train_covered
            )
            model = MLPClassifier(
                n_features=features.shape[1],
                n_classes=target.cardinality,
                n_hidden=n_hidden,
                n_epochs=n_epochs,
                rng=rng,
            )
            model.fit(features[train], labels[train])
            random_accuracy = model.accuracy(features[test_random], labels[test_random])
            uncovered_accuracy = model.accuracy(
                features[test_uncovered], labels[test_uncovered]
            )
            random_loss = model.log_loss(features[test_random], labels[test_random])
            uncovered_loss = model.log_loss(
                features[test_uncovered], labels[test_uncovered]
            )
            bucket = sums[n_added]
            bucket["acc_disp"] += random_accuracy - uncovered_accuracy
            bucket["loss_disp"] += uncovered_loss - random_loss
            bucket["rand_acc"] += random_accuracy
            bucket["unc_acc"] += uncovered_accuracy

    points = tuple(
        DisparityPoint(
            n_added=k,
            accuracy_disparity=sums[k]["acc_disp"] / n_repeats,
            loss_disparity=sums[k]["loss_disp"] / n_repeats,
            random_test_accuracy=sums[k]["rand_acc"] / n_repeats,
            uncovered_test_accuracy=sums[k]["unc_acc"] / n_repeats,
        )
        for k in additions
    )
    return DisparityCurve(experiment=experiment_name, points=points)


def drowsiness_experiment(
    rng: np.random.Generator,
    *,
    n_repeats: int = 10,
    max_train_size: int | None = None,
    additions: Sequence[int] = (0, 20, 40, 60, 80, 100),
) -> DisparityCurve:
    """Figure 6a: eye open/closed detection with spectacled subjects
    uncovered (MRL-eye protocol)."""
    pool = mrl_eye_pool(rng)
    return run_disparity_experiment(
        pool,
        target_attribute="eye_state",
        uncovered_group=group(spectacled="yes"),
        additions=additions,
        n_repeats=n_repeats,
        rng=rng,
        max_train_size=max_train_size,
        experiment_name="drowsiness detection (Fig 6a)",
    )


def gender_experiment(
    rng: np.random.Generator,
    *,
    n_repeats: int = 10,
    max_train_size: int | None = None,
    additions: Sequence[int] = (0, 20, 40, 60, 80, 100),
) -> DisparityCurve:
    """Figure 6b: gender detection trained Caucasian-only with Black
    subjects uncovered (UTKFace protocol)."""
    pool = utkface_gender_pool(rng)
    return run_disparity_experiment(
        pool,
        target_attribute="gender",
        uncovered_group=group(race="black"),
        additions=additions,
        n_repeats=n_repeats,
        rng=rng,
        max_train_size=max_train_size,
        experiment_name="gender detection (Fig 6b)",
    )
