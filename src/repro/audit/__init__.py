"""The blessed auditing API: sessions, specs, and report envelopes.

One entry point (:class:`AuditSession`), declarative frozen specs for
every algorithm in the paper, a uniform serializable
:class:`AuditReport`, and checkpoint/resume built on the resumable
:class:`~repro.core.group_coverage.GroupCoverageStepper`. The legacy
function forms in :mod:`repro.core` are thin wrappers over this layer.
"""

from repro.audit.report import AuditEntry, AuditReport
from repro.audit.runners import run_spec
from repro.audit.serialization import (
    predicate_from_dict,
    predicate_to_dict,
    result_from_dict,
    result_to_dict,
    schema_from_dict,
    schema_to_dict,
)
from repro.audit.session import AuditProgress, AuditSession
from repro.audit.specs import (
    AuditSpec,
    BaseAuditSpec,
    ClassifierAuditSpec,
    GroupAuditSpec,
    IntersectionalAuditSpec,
    MultipleAuditSpec,
    spec_from_dict,
)

__all__ = [
    "AuditSession",
    "AuditProgress",
    "AuditReport",
    "AuditEntry",
    "AuditSpec",
    "GroupAuditSpec",
    "BaseAuditSpec",
    "MultipleAuditSpec",
    "IntersectionalAuditSpec",
    "ClassifierAuditSpec",
    "spec_from_dict",
    "run_spec",
    "result_to_dict",
    "result_from_dict",
    "predicate_to_dict",
    "predicate_from_dict",
    "schema_to_dict",
    "schema_from_dict",
]
