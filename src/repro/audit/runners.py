"""Spec dispatch: one executable entry point per audit spec kind.

:func:`run_spec` is the single seam between the declarative layer
(:mod:`repro.audit.specs`) and the algorithm executors in
:mod:`repro.core`. Both the blessed :class:`~repro.audit.session.AuditSession`
and the legacy function forms (``group_coverage`` & friends) funnel
through it, which is what makes ``session.run(spec)`` bit-identical to
the function call: same executor, same validation order, same oracle
call sequence, same ledger charging.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.audit.specs import (
    AuditSpec,
    BaseAuditSpec,
    ClassifierAuditSpec,
    GroupAuditSpec,
    IntersectionalAuditSpec,
    MultipleAuditSpec,
)
from repro.core.base_coverage import execute_base_coverage
from repro.core.classifier_coverage import execute_classifier_coverage
from repro.core.group_coverage import GroupCoverageStepper, execute_group_coverage
from repro.core.intersectional_coverage import execute_intersectional_coverage
from repro.core.multiple_coverage import execute_multiple_coverage
from repro.core.views import resolve_view
from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro.crowd.oracle import Oracle
    from repro.engine.scheduler import QueryEngine

__all__ = ["run_spec", "make_group_stepper"]


def _require_rng(spec: AuditSpec, rng: np.random.Generator | None) -> np.random.Generator:
    if rng is None:
        raise InvalidParameterError(
            f"{type(spec).__name__} needs a random generator; construct the "
            "AuditSession with seed=... or rng=... (or pass rng= to the "
            "legacy function form)"
        )
    return rng


def run_spec(
    oracle: "Oracle",
    spec: AuditSpec,
    *,
    engine: "QueryEngine | None" = None,
    rng: np.random.Generator | None = None,
    dataset_size: int | None = None,
    on_round: Callable[[], None] | None = None,
) -> Any:
    """Execute ``spec`` against ``oracle`` and return its result dataclass.

    ``engine``/``rng``/``dataset_size`` are the execution bindings a
    session holds; the legacy wrappers pass exactly their own keyword
    arguments through, so validation and behavior match the pre-spec
    functions call for call.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.audit import GroupAuditSpec, run_spec
    >>> from repro.crowd.oracle import GroundTruthOracle
    >>> from repro.data.groups import group
    >>> from repro.data.synthetic import binary_dataset
    >>> ds = binary_dataset(500, 10, rng=np.random.default_rng(0))
    >>> result = run_spec(GroundTruthOracle(ds),
    ...                   GroupAuditSpec(predicate=group(gender="female"), tau=5),
    ...                   dataset_size=len(ds))
    >>> result.covered
    True
    """
    if isinstance(spec, GroupAuditSpec):
        return execute_group_coverage(
            oracle,
            spec.predicate,
            spec.tau,
            n=spec.n,
            view=spec.view_array(),
            dataset_size=dataset_size,
            engine=engine,
            on_round=on_round,
        )
    if isinstance(spec, BaseAuditSpec):
        return execute_base_coverage(
            oracle,
            spec.predicate,
            spec.tau,
            view=spec.view_array(),
            dataset_size=dataset_size,
            on_round=on_round,
        )
    if isinstance(spec, MultipleAuditSpec):
        return execute_multiple_coverage(
            oracle,
            spec.groups,
            spec.tau,
            n=spec.n,
            c=spec.c,
            rng=_require_rng(spec, rng),
            view=spec.view_array(),
            dataset_size=dataset_size,
            multi=spec.multi,
            attribute_supergroup_members=spec.attribute_supergroup_members,
            engine=engine,
            on_round=on_round,
        )
    if isinstance(spec, IntersectionalAuditSpec):
        return execute_intersectional_coverage(
            oracle,
            spec.schema,
            spec.tau,
            n=spec.n,
            c=spec.c,
            rng=_require_rng(spec, rng),
            view=spec.view_array(),
            dataset_size=dataset_size,
            engine=engine,
            on_round=on_round,
        )
    if isinstance(spec, ClassifierAuditSpec):
        return execute_classifier_coverage(
            oracle,
            spec.group,
            spec.tau,
            spec.predicted_positive_array(),
            n=spec.n,
            sample_fraction=spec.sample_fraction,
            fp_threshold=spec.fp_threshold,
            rng=_require_rng(spec, rng),
            view=spec.view_array(),
            dataset_size=dataset_size,
            on_round=on_round,
        )
    raise InvalidParameterError(
        f"run_spec does not know how to execute {type(spec).__name__}"
    )


def make_group_stepper(
    spec: GroupAuditSpec,
    *,
    dataset_size: int | None = None,
    speculation: int = 0,
) -> GroupCoverageStepper:
    """The resumable stepper for a group spec — what ``run_many``
    schedules concurrently on one engine."""
    return GroupCoverageStepper(
        spec.predicate,
        spec.tau,
        n=spec.n,
        view=resolve_view(spec.view_array(), dataset_size),
        speculation=speculation,
    )
