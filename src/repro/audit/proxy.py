"""The recording/replaying oracle proxy sessions and services share.

Both :class:`~repro.audit.session.AuditSession` and
:class:`~repro.service.AuditService` wrap their oracle in a
:class:`RecordingOracleProxy` so that every answer the crowd was paid
for can be checkpointed, and answers loaded from a checkpoint replay for
free. The proxy shares the raw oracle's schema and ledger (charging is
unchanged) and is transparent when nothing is loaded: same calls, same
charges, same rounds, bit-identical results.
"""

from __future__ import annotations

import inspect

import numpy as np

from repro.crowd.oracle import Oracle
from repro.engine.requests import QueryKey, set_query_key

__all__ = ["RecordingOracleProxy"]


class RecordingOracleProxy(Oracle):
    """Records every paid answer; replays checkpointed ones for free.

    * **recording** — each answer the inner oracle produces is kept, so
      a checkpoint can persist everything the crowd was paid for, and
    * **replaying** — answers loaded from a checkpoint are returned
      without consulting (or charging) the inner oracle: the mechanism
      behind resume-without-re-asking.
    """

    def __init__(self, inner: Oracle) -> None:
        self._session_inner = inner
        self.schema = inner.schema
        self.ledger = inner.ledger
        self._set_seen: dict[QueryKey, bool] = {}
        self._point_seen: dict[int, dict[str, str]] = {}
        self._set_replay: dict[QueryKey, bool] = {}
        self._point_replay: dict[int, dict[str, str]] = {}

    def __getattr__(self, name: str):
        if name == "_session_inner":
            raise AttributeError(name)
        inner = self._session_inner
        try:
            return getattr(inner, name)
        except AttributeError as error:
            # Distinguish "the inner oracle has no such attribute" (a
            # genuine miss the proxy should report as its own) from "a
            # property on the inner oracle *raised* AttributeError while
            # computing" — swallowing the latter makes a real bug look
            # like a missing attribute (hasattr() returns False, getattr
            # defaults kick in) and hides the original traceback.
            if inspect.getattr_static(inner, name, _MISSING) is _MISSING:
                raise
            raise RuntimeError(
                f"accessing {type(inner).__name__}.{name} raised "
                f"AttributeError internally; re-raising so it is not "
                f"mistaken for a missing attribute"
            ) from error

    # -- replay loading --------------------------------------------------
    def load_set_answers(self, answers: dict[QueryKey, bool]) -> None:
        self._set_replay.update(answers)
        self._set_seen.update(answers)

    def load_point_answers(self, answers: dict[int, dict[str, str]]) -> None:
        self._point_replay.update(answers)
        self._point_seen.update(answers)

    # -- public oracle API ------------------------------------------------
    def ask_set(self, indices, predicate, *, key=None) -> bool:
        if key is None:
            key = set_query_key(np.asarray(indices, dtype=np.int64), predicate)
        if key in self._set_replay:
            return self._set_replay[key]
        answer = self._session_inner.ask_set(indices, predicate, key=key)
        self._set_seen[key] = answer
        return answer

    def ask_set_batch(self, queries, *, keys=None) -> list[bool]:
        prepared = [
            (np.asarray(indices, dtype=np.int64), predicate)
            for indices, predicate in queries
        ]
        if keys is None:
            keys = [
                set_query_key(indices, predicate) for indices, predicate in prepared
            ]
        fresh = [
            (position, query)
            for position, (key, query) in enumerate(zip(keys, prepared))
            if key not in self._set_replay
        ]
        answers: list[bool] = [False] * len(prepared)
        for position, key in enumerate(keys):
            if key in self._set_replay:
                answers[position] = self._set_replay[key]
        if fresh:
            fresh_answers = self._session_inner.ask_set_batch(
                [query for _, query in fresh],
                keys=[keys[position] for position, _ in fresh],
            )
            for (position, _), answer in zip(fresh, fresh_answers):
                answers[position] = answer
                self._set_seen[keys[position]] = answer
        return answers

    def ask_point(self, index: int) -> dict[str, str]:
        index = int(index)
        if index in self._point_replay:
            return dict(self._point_replay[index])
        labels = self._session_inner.ask_point(index)
        self._point_seen[index] = dict(labels)
        return labels

    def ask_point_batch(self, indices) -> list[dict[str, str]]:
        prepared = [int(index) for index in indices]
        fresh = [
            (position, index)
            for position, index in enumerate(prepared)
            if index not in self._point_replay
        ]
        answers: list[dict[str, str]] = [
            dict(self._point_replay[index]) if index in self._point_replay else {}
            for index in prepared
        ]
        if fresh:
            fresh_answers = self._session_inner.ask_point_batch(
                [index for _, index in fresh]
            )
            for (position, index), labels in zip(fresh, fresh_answers):
                answers[position] = labels
                self._point_seen[index] = dict(labels)
        return answers

    # -- implementation hooks (unused: public methods are overridden) -----
    def _answer_set(self, indices, predicate) -> bool:  # pragma: no cover
        return self._session_inner._answer_set(indices, predicate)

    def _answer_point(self, index: int) -> dict[str, str]:  # pragma: no cover
        return self._session_inner._answer_point(index)


_MISSING = object()
