"""Lossless JSON codecs for predicates, schemas, and result dataclasses.

The :mod:`repro.io` helpers flatten reports into *human/archival* JSON
(descriptions instead of structure) and deliberately do not round-trip.
The audit layer needs the opposite: a :class:`~repro.audit.report.AuditReport`
must cross a process boundary and come back **equal** to the original —
``from_dict(to_dict(x)) == x`` for every supported type. These codecs
therefore preserve structure: predicates keep their conditions, patterns
keep their schema, and every counter survives bit-for-bit.

Supported payloads:

* predicates — :class:`~repro.data.groups.Group`,
  :class:`~repro.data.groups.SuperGroup`, :class:`~repro.data.groups.Negation`
* :class:`~repro.data.schema.Schema` / :class:`~repro.data.schema.Attribute`
* :class:`~repro.core.results.TaskUsage`, :class:`~repro.engine.stats.EngineStats`
* every result dataclass in :mod:`repro.core.results`, plus
  :class:`~repro.patterns.combiner.PatternCoverageReport`
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.results import (
    ClassifierCoverageResult,
    GroupCoverageResult,
    GroupEntry,
    IntersectionalCoverageReport,
    MultipleCoverageReport,
    TaskUsage,
)
from repro.data.groups import Group, GroupPredicate, Negation, SuperGroup
from repro.data.schema import Attribute, Schema
from repro.engine.stats import EngineStats
from repro.errors import CheckpointVersionError, InvalidParameterError
from repro.patterns.combiner import PatternCoverageReport, PatternVerdict
from repro.patterns.pattern import Pattern

__all__ = [
    "predicate_to_dict",
    "predicate_from_dict",
    "schema_to_dict",
    "schema_from_dict",
    "task_usage_to_dict",
    "task_usage_from_dict",
    "engine_stats_to_dict",
    "engine_stats_from_dict",
    "result_to_dict",
    "result_from_dict",
    "set_answer_to_dict",
    "set_answers_from_list",
    "point_answers_to_list",
    "point_answers_from_list",
]


# -- paid crowd answers (checkpoint substrate) --------------------------
#
# Sessions and the multi-tenant service both persist "everything the
# crowd was paid for" — set answers keyed by (predicate, IndexKey),
# point answers keyed by object index. Contiguous-run index keys
# serialize as compact ``{"run": [start, stop]}`` endpoints instead of
# exhaustive index lists; scattered arrays spell their indices out.


def set_answer_to_dict(predicate, index_key, answer: bool) -> dict[str, Any]:
    """One checkpointed set answer; runs stay compact endpoints."""
    entry: dict[str, Any] = {
        "predicate": predicate_to_dict(predicate),
        "answer": bool(answer),
    }
    if index_key.is_run:
        entry["run"] = [index_key.start, index_key.stop]
    else:
        entry["indices"] = index_key.to_array().tolist()
    return entry


def _index_key_from_dict(entry: Mapping[str, Any]):
    """Rebuild the interned ``IndexKey`` of a checkpoint entry."""
    import numpy as np

    from repro.engine.requests import IndexKey

    run = entry.get("run")
    if run is not None:
        return IndexKey.of_run(int(run[0]), int(run[1]))
    indices = entry.get("indices")
    if indices is None:
        raise CheckpointVersionError(
            "checkpointed set answer carries neither 'run' endpoints nor an "
            "'indices' list — the entry was written by an incompatible "
            f"checkpoint version (keys: {sorted(entry)})"
        )
    return IndexKey.of(np.asarray(indices, dtype=np.int64))


def set_answers_from_list(entries) -> dict:
    """Invert a list of :func:`set_answer_to_dict` entries into the
    ``{QueryKey: bool}`` mapping replay proxies and caches consume."""
    try:
        return {
            (
                predicate_from_dict(entry["predicate"]),
                _index_key_from_dict(entry),
            ): bool(entry["answer"])
            for entry in entries
        }
    except CheckpointVersionError:
        raise
    except KeyError as error:
        raise CheckpointVersionError(
            f"checkpointed set answer is missing the {error.args[0]!r} "
            "field — written by an incompatible checkpoint version?"
        ) from error
    except (InvalidParameterError, ValueError) as error:
        # e.g. an unknown predicate type, or corrupt values, from a
        # newer build.
        raise CheckpointVersionError(
            f"checkpointed set answer is not readable by this build ({error})"
        ) from error


def point_answers_to_list(answers: Mapping[int, Mapping[str, str]]) -> list[dict]:
    return [
        {"index": index, "labels": dict(labels)}
        for index, labels in answers.items()
    ]


def point_answers_from_list(entries) -> dict[int, dict[str, str]]:
    try:
        return {int(entry["index"]): dict(entry["labels"]) for entry in entries}
    except (KeyError, ValueError, TypeError) as error:
        raise CheckpointVersionError(
            f"checkpointed point answer is not readable by this build "
            f"({error}) — written by an incompatible checkpoint version?"
        ) from error


# -- predicates ---------------------------------------------------------


def predicate_to_dict(predicate: GroupPredicate) -> dict[str, Any]:
    """Structure-preserving form of a group predicate.

    Examples
    --------
    >>> from repro.data.groups import group
    >>> predicate_to_dict(group(gender="female"))
    {'type': 'group', 'conditions': {'gender': 'female'}}
    """
    if isinstance(predicate, Group):
        return {"type": "group", "conditions": dict(predicate.conditions)}
    if isinstance(predicate, SuperGroup):
        return {
            "type": "supergroup",
            "members": [predicate_to_dict(member) for member in predicate.members],
        }
    if isinstance(predicate, Negation):
        return {"type": "negation", "inner": predicate_to_dict(predicate.inner)}
    raise InvalidParameterError(
        f"cannot serialize predicate of type {type(predicate).__name__}"
    )


def predicate_from_dict(data: Mapping[str, Any]) -> Group | SuperGroup | Negation:
    """Inverse of :func:`predicate_to_dict` — the rebuilt predicate
    compares (and hashes) equal to the original.

    Examples
    --------
    >>> from repro.data.groups import group
    >>> predicate_from_dict(predicate_to_dict(group(race="black"))) == group(race="black")
    True
    """
    kind = data.get("type")
    try:
        if kind == "group":
            return Group(data["conditions"])
        if kind == "supergroup":
            return SuperGroup(
                predicate_from_dict(member) for member in data["members"]
            )
        if kind == "negation":
            return Negation(predicate_from_dict(data["inner"]))
    except KeyError as error:
        raise InvalidParameterError(
            f"predicate payload of type {kind!r} is missing field "
            f"{error.args[0]!r}"
        ) from error
    raise InvalidParameterError(f"unknown predicate type {kind!r}")


# -- schema -------------------------------------------------------------


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """JSON-ready form of a schema: attribute names with ordered domains.

    Examples
    --------
    >>> from repro.data.schema import Schema
    >>> schema_to_dict(Schema.from_dict({"gender": ["male", "female"]}))
    {'attributes': [{'name': 'gender', 'values': ['male', 'female']}]}
    """
    return {
        "attributes": [
            {"name": attribute.name, "values": list(attribute.values)}
            for attribute in schema
        ]
    }


def schema_from_dict(data: Mapping[str, Any]) -> Schema:
    """Inverse of :func:`schema_to_dict`; the rebuilt schema compares equal.

    Examples
    --------
    >>> from repro.data.schema import Schema
    >>> schema = Schema.from_dict({"gender": ["male", "female"]})
    >>> schema_from_dict(schema_to_dict(schema)) == schema
    True
    """
    try:
        return Schema(
            Attribute(entry["name"], entry["values"]) for entry in data["attributes"]
        )
    except KeyError as error:
        raise InvalidParameterError(
            f"schema payload is missing field {error.args[0]!r}"
        ) from error


# -- counters -----------------------------------------------------------


def task_usage_to_dict(usage: TaskUsage) -> dict[str, int]:
    return {
        "n_set_queries": usage.n_set_queries,
        "n_point_queries": usage.n_point_queries,
        "n_rounds": usage.n_rounds,
    }


def task_usage_from_dict(data: Mapping[str, Any]) -> TaskUsage:
    try:
        return TaskUsage(
            n_set_queries=int(data["n_set_queries"]),
            n_point_queries=int(data["n_point_queries"]),
            n_rounds=int(data["n_rounds"]),
        )
    except KeyError as error:
        raise InvalidParameterError(
            f"task usage payload is missing field {error.args[0]!r}"
        ) from error


def engine_stats_to_dict(stats: EngineStats | None) -> dict[str, int] | None:
    if stats is None:
        return None
    return {
        "scheduler_rounds": stats.scheduler_rounds,
        "oracle_round_trips": stats.oracle_round_trips,
        "dispatched_queries": stats.dispatched_queries,
        "deduped_queries": stats.deduped_queries,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
    }


def engine_stats_from_dict(data: Mapping[str, Any] | None) -> EngineStats | None:
    if data is None:
        return None
    return EngineStats(**{key: int(value) for key, value in data.items()})


# -- results ------------------------------------------------------------


def _group_coverage_to_dict(result: GroupCoverageResult) -> dict[str, Any]:
    return {
        "kind": "group-coverage",
        "predicate": predicate_to_dict(result.predicate),
        "covered": result.covered,
        "count": result.count,
        "tau": result.tau,
        "tasks": task_usage_to_dict(result.tasks),
        "discovered_indices": list(result.discovered_indices),
        "engine_stats": engine_stats_to_dict(result.engine_stats),
    }


def _group_coverage_from_dict(data: Mapping[str, Any]) -> GroupCoverageResult:
    return GroupCoverageResult(
        predicate=predicate_from_dict(data["predicate"]),
        covered=bool(data["covered"]),
        count=int(data["count"]),
        tau=int(data["tau"]),
        tasks=task_usage_from_dict(data["tasks"]),
        discovered_indices=tuple(int(i) for i in data["discovered_indices"]),
        engine_stats=engine_stats_from_dict(data["engine_stats"]),
    )


def _entry_to_dict(entry: GroupEntry) -> dict[str, Any]:
    return {
        "group": predicate_to_dict(entry.group),
        "covered": entry.covered,
        "count": entry.count,
        "count_is_exact": entry.count_is_exact,
        "via_supergroup": (
            predicate_to_dict(entry.via_supergroup)
            if entry.via_supergroup is not None
            else None
        ),
    }


def _entry_from_dict(data: Mapping[str, Any]) -> GroupEntry:
    return GroupEntry(
        group=predicate_from_dict(data["group"]),
        covered=bool(data["covered"]),
        count=int(data["count"]),
        count_is_exact=bool(data["count_is_exact"]),
        via_supergroup=(
            predicate_from_dict(data["via_supergroup"])
            if data["via_supergroup"] is not None
            else None
        ),
    )


def _multiple_to_dict(report: MultipleCoverageReport) -> dict[str, Any]:
    return {
        "kind": "multiple-coverage",
        "entries": [_entry_to_dict(entry) for entry in report.entries],
        "super_groups": [predicate_to_dict(sg) for sg in report.super_groups],
        "sampled_counts": [
            [predicate_to_dict(group), count]
            for group, count in report.sampled_counts.items()
        ],
        "tasks": task_usage_to_dict(report.tasks),
        "engine_stats": engine_stats_to_dict(report.engine_stats),
    }


def _multiple_from_dict(data: Mapping[str, Any]) -> MultipleCoverageReport:
    return MultipleCoverageReport(
        entries=tuple(_entry_from_dict(entry) for entry in data["entries"]),
        super_groups=tuple(predicate_from_dict(sg) for sg in data["super_groups"]),
        sampled_counts={
            predicate_from_dict(group): int(count)
            for group, count in data["sampled_counts"]
        },
        tasks=task_usage_from_dict(data["tasks"]),
        engine_stats=engine_stats_from_dict(data["engine_stats"]),
    )


def _pattern_report_to_dict(report: PatternCoverageReport) -> dict[str, Any]:
    # Every pattern shares the report's schema; serialize it once and the
    # patterns as their value tuples (null = wildcard).
    schema = next(iter(report.verdicts)).schema
    return {
        "kind": "pattern-coverage",
        "tau": report.tau,
        "schema": schema_to_dict(schema),
        "verdicts": [
            {
                "values": list(pattern.values),
                "covered": verdict.covered,
                "count_lower_bound": verdict.count_lower_bound,
                "count_is_exact": verdict.count_is_exact,
            }
            for pattern, verdict in report.verdicts.items()
        ],
        "mups": [list(pattern.values) for pattern in report.mups],
    }


def _pattern_report_from_dict(data: Mapping[str, Any]) -> PatternCoverageReport:
    schema = schema_from_dict(data["schema"])

    def pattern_of(values: list[str | None]) -> Pattern:
        return Pattern(schema, tuple(values))

    verdicts: dict[Pattern, PatternVerdict] = {}
    for entry in data["verdicts"]:
        pattern = pattern_of(entry["values"])
        verdicts[pattern] = PatternVerdict(
            pattern=pattern,
            covered=bool(entry["covered"]),
            count_lower_bound=int(entry["count_lower_bound"]),
            count_is_exact=bool(entry["count_is_exact"]),
        )
    return PatternCoverageReport(
        tau=int(data["tau"]),
        verdicts=verdicts,
        mups=tuple(pattern_of(values) for values in data["mups"]),
    )


def _intersectional_to_dict(report: IntersectionalCoverageReport) -> dict[str, Any]:
    return {
        "kind": "intersectional-coverage",
        "leaf_report": _multiple_to_dict(report.leaf_report),
        "pattern_report": _pattern_report_to_dict(report.pattern_report),
        "tasks": task_usage_to_dict(report.tasks),
        "engine_stats": engine_stats_to_dict(report.engine_stats),
    }


def _intersectional_from_dict(data: Mapping[str, Any]) -> IntersectionalCoverageReport:
    return IntersectionalCoverageReport(
        leaf_report=_multiple_from_dict(data["leaf_report"]),
        pattern_report=_pattern_report_from_dict(data["pattern_report"]),
        tasks=task_usage_from_dict(data["tasks"]),
        engine_stats=engine_stats_from_dict(data["engine_stats"]),
    )


def _classifier_to_dict(result: ClassifierCoverageResult) -> dict[str, Any]:
    return {
        "kind": "classifier-coverage",
        "group": predicate_to_dict(result.group),
        "covered": result.covered,
        "count": result.count,
        "tau": result.tau,
        "strategy": result.strategy,
        "precision_estimate": result.precision_estimate,
        "verified_count": result.verified_count,
        "tasks": task_usage_to_dict(result.tasks),
        "fallback": (
            _group_coverage_to_dict(result.fallback)
            if result.fallback is not None
            else None
        ),
        "sample_size": result.sample_size,
    }


def _classifier_from_dict(data: Mapping[str, Any]) -> ClassifierCoverageResult:
    return ClassifierCoverageResult(
        group=predicate_from_dict(data["group"]),
        covered=bool(data["covered"]),
        count=int(data["count"]),
        tau=int(data["tau"]),
        strategy=data["strategy"],
        precision_estimate=float(data["precision_estimate"]),
        verified_count=int(data["verified_count"]),
        tasks=task_usage_from_dict(data["tasks"]),
        fallback=(
            _group_coverage_from_dict(data["fallback"])
            if data["fallback"] is not None
            else None
        ),
        sample_size=int(data["sample_size"]),
    )


_TO_DICT = {
    GroupCoverageResult: _group_coverage_to_dict,
    MultipleCoverageReport: _multiple_to_dict,
    IntersectionalCoverageReport: _intersectional_to_dict,
    ClassifierCoverageResult: _classifier_to_dict,
    PatternCoverageReport: _pattern_report_to_dict,
}

_FROM_DICT = {
    "group-coverage": _group_coverage_from_dict,
    "multiple-coverage": _multiple_from_dict,
    "intersectional-coverage": _intersectional_from_dict,
    "classifier-coverage": _classifier_from_dict,
    "pattern-coverage": _pattern_report_from_dict,
}


def result_to_dict(result: Any) -> dict[str, Any]:
    """Lossless dict form of any coverage result/report; tagged by ``kind``.

    Examples
    --------
    >>> from repro.core.results import GroupCoverageResult, TaskUsage
    >>> from repro.data.groups import group
    >>> result = GroupCoverageResult(predicate=group(gender="female"),
    ...                              covered=True, count=3, tau=3,
    ...                              tasks=TaskUsage(n_set_queries=5),
    ...                              discovered_indices=(1, 2, 9))
    >>> result_to_dict(result)["kind"]
    'group-coverage'
    """
    converter = _TO_DICT.get(type(result))
    if converter is None:
        raise InvalidParameterError(
            f"cannot serialize {type(result).__name__}; supported: "
            f"{sorted(t.__name__ for t in _TO_DICT)}"
        )
    return converter(result)


def result_from_dict(data: Mapping[str, Any]) -> Any:
    """Inverse of :func:`result_to_dict`: ``result_from_dict(result_to_dict(x)) == x``.

    Examples
    --------
    >>> from repro.core.results import GroupCoverageResult, TaskUsage
    >>> from repro.data.groups import group
    >>> result = GroupCoverageResult(predicate=group(gender="female"),
    ...                              covered=True, count=3, tau=3,
    ...                              tasks=TaskUsage(n_set_queries=5),
    ...                              discovered_indices=(1, 2, 9))
    >>> result_from_dict(result_to_dict(result)) == result
    True
    """
    converter = _FROM_DICT.get(data.get("kind"))
    if converter is None:
        raise InvalidParameterError(
            f"unknown result kind {data.get('kind')!r}; supported: "
            f"{sorted(_FROM_DICT)}"
        )
    return converter(data)
