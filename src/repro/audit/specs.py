"""Declarative audit specs: *what* to audit, frozen and serializable.

Each spec captures the parameters of one coverage question — the target
group(s), the threshold, the algorithm knobs — and nothing about *how* to
execute it. Execution state (oracle, engine, rng, budget) lives in the
:class:`~repro.audit.session.AuditSession` that runs the spec; the spec
itself is an immutable, hashable value object that can be stored, hashed
into experiment manifests, embedded in an
:class:`~repro.audit.report.AuditReport`, or shipped across a process
boundary via :meth:`to_dict`/:meth:`from_dict`.

Views are normalized to tuples of python ints at construction time (a
frozen dataclass cannot hold a mutable ndarray); ``view=None`` means the
session's whole dataset. Semantic validation (``tau`` ranges, view
bounds) happens at run time, in the exact order the legacy functions
validated, so ``session.run(spec)`` raises precisely what the function
form would have raised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Mapping, Sequence, Union, cast

import numpy as np
import numpy.typing as npt

from repro.audit.serialization import (
    predicate_from_dict,
    predicate_to_dict,
    schema_from_dict,
    schema_to_dict,
)
from repro.data.groups import Group, GroupPredicate
from repro.data.schema import Schema
from repro.errors import InvalidParameterError

__all__ = [
    "AuditSpec",
    "GroupAuditSpec",
    "BaseAuditSpec",
    "MultipleAuditSpec",
    "IntersectionalAuditSpec",
    "ClassifierAuditSpec",
    "spec_from_dict",
]


def _as_index_tuple(
    indices: Sequence[int] | npt.NDArray[np.int64] | None,
) -> tuple[int, ...] | None:
    """Normalize an index collection to a hashable tuple of python ints."""
    if indices is None:
        return None
    return tuple(
        int(index) for index in np.asarray(indices, dtype=np.int64).ravel()
    )


def _view_array(view: tuple[int, ...] | None) -> npt.NDArray[np.int64] | None:
    return None if view is None else np.asarray(view, dtype=np.int64)


def _missing_field(spec_type: type[object], error: KeyError) -> InvalidParameterError:
    """The error-contract translation of a missing payload field."""
    return InvalidParameterError(
        f"{spec_type.__name__} payload is missing field {error.args[0]!r}"
    )


@dataclass(frozen=True)
class GroupAuditSpec:
    """Audit one group with Group-Coverage (Algorithm 1).

    Attributes
    ----------
    predicate:
        The target group (a :class:`~repro.data.groups.Group`, a
        :class:`~repro.data.groups.SuperGroup`, or a
        :class:`~repro.data.groups.Negation`).
    tau:
        Coverage threshold.
    n:
        Set-query size bound.
    view:
        Dataset indices to search; ``None`` means the session's whole
        dataset.

    Examples
    --------
    >>> from repro.audit import GroupAuditSpec, spec_from_dict
    >>> from repro.data.groups import group
    >>> spec = GroupAuditSpec(predicate=group(gender="female"), tau=50)
    >>> spec.describe()
    'group-coverage(gender=female, tau=50)'
    >>> spec_from_dict(spec.to_dict()) == spec
    True
    """

    kind: ClassVar[str] = "group"

    predicate: GroupPredicate
    tau: int
    n: int = 50
    view: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "view", _as_index_tuple(self.view))

    def view_array(self) -> npt.NDArray[np.int64] | None:
        """The normalized view as an ``int64`` array (``None`` = whole dataset)."""
        return _view_array(self.view)

    def describe(self) -> str:
        """One-line human-readable summary of the audit question."""
        return f"group-coverage({self.predicate.describe()}, tau={self.tau})"

    def to_dict(self) -> dict[str, Any]:
        """Kind-tagged JSON form; :func:`spec_from_dict` inverts it losslessly."""
        return {
            "kind": self.kind,
            "predicate": predicate_to_dict(self.predicate),
            "tau": self.tau,
            "n": self.n,
            "view": list(self.view) if self.view is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GroupAuditSpec":
        """Rebuild the spec from its :meth:`to_dict` form."""
        try:
            return cls(
                predicate=predicate_from_dict(data["predicate"]),
                tau=int(data["tau"]),
                n=int(data["n"]),
                view=data["view"],
            )
        except KeyError as error:
            raise _missing_field(cls, error) from error


@dataclass(frozen=True)
class BaseAuditSpec:
    """Audit one group with the Base-Coverage baseline (Algorithm 7).

    Examples
    --------
    >>> from repro.audit import BaseAuditSpec
    >>> from repro.data.groups import group
    >>> BaseAuditSpec(predicate=group(gender="female"), tau=50).describe()
    'base-coverage(gender=female, tau=50)'
    """

    kind: ClassVar[str] = "base"

    predicate: GroupPredicate
    tau: int
    view: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "view", _as_index_tuple(self.view))

    def view_array(self) -> npt.NDArray[np.int64] | None:
        """The normalized view as an ``int64`` array (``None`` = whole dataset)."""
        return _view_array(self.view)

    def describe(self) -> str:
        """One-line human-readable summary of the audit question."""
        return f"base-coverage({self.predicate.describe()}, tau={self.tau})"

    def to_dict(self) -> dict[str, Any]:
        """Kind-tagged JSON form; :func:`spec_from_dict` inverts it losslessly."""
        return {
            "kind": self.kind,
            "predicate": predicate_to_dict(self.predicate),
            "tau": self.tau,
            "view": list(self.view) if self.view is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BaseAuditSpec":
        """Rebuild the spec from its :meth:`to_dict` form."""
        try:
            return cls(
                predicate=predicate_from_dict(data["predicate"]),
                tau=int(data["tau"]),
                view=data["view"],
            )
        except KeyError as error:
            raise _missing_field(cls, error) from error


@dataclass(frozen=True)
class MultipleAuditSpec:
    """Audit many non-intersectional groups with Algorithm 2.

    Requires the session to hold an rng (``AuditSession(..., seed=...)``
    or ``rng=...``) for the sampling phase.

    Examples
    --------
    >>> from repro.audit import MultipleAuditSpec
    >>> from repro.data.groups import group
    >>> spec = MultipleAuditSpec(
    ...     groups=(group(race="black"), group(race="asian")), tau=50)
    >>> spec.describe()
    'multiple-coverage(2 groups, tau=50)'
    """

    kind: ClassVar[str] = "multiple"

    groups: tuple[Group, ...]
    tau: int
    n: int = 50
    c: float = 2.0
    multi: bool = False
    attribute_supergroup_members: bool = False
    view: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "groups", tuple(self.groups))
        object.__setattr__(self, "view", _as_index_tuple(self.view))

    def view_array(self) -> npt.NDArray[np.int64] | None:
        """The normalized view as an ``int64`` array (``None`` = whole dataset)."""
        return _view_array(self.view)

    def describe(self) -> str:
        """One-line human-readable summary of the audit question."""
        return f"multiple-coverage({len(self.groups)} groups, tau={self.tau})"

    def to_dict(self) -> dict[str, Any]:
        """Kind-tagged JSON form; :func:`spec_from_dict` inverts it losslessly."""
        return {
            "kind": self.kind,
            "groups": [predicate_to_dict(group) for group in self.groups],
            "tau": self.tau,
            "n": self.n,
            "c": self.c,
            "multi": self.multi,
            "attribute_supergroup_members": self.attribute_supergroup_members,
            "view": list(self.view) if self.view is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MultipleAuditSpec":
        """Rebuild the spec from its :meth:`to_dict` form."""
        try:
            return cls(
                # The codec guarantees plain groups here (kind tag "group");
                # the cast records that, it does not re-validate.
                groups=tuple(
                    cast(Group, predicate_from_dict(group))
                    for group in data["groups"]
                ),
                tau=int(data["tau"]),
                n=int(data["n"]),
                c=float(data["c"]),
                multi=bool(data["multi"]),
                attribute_supergroup_members=bool(
                    data["attribute_supergroup_members"]
                ),
                view=data["view"],
            )
        except KeyError as error:
            raise _missing_field(cls, error) from error


@dataclass(frozen=True)
class IntersectionalAuditSpec:
    """Audit all attribute combinations of a schema with Algorithm 3.

    Requires a session rng (sampling phase of the leaf-level solve).

    Examples
    --------
    >>> from repro.audit import IntersectionalAuditSpec
    >>> from repro.data.schema import Schema
    >>> schema = Schema.from_dict(
    ...     {"gender": ["male", "female"], "race": ["white", "black"]})
    >>> IntersectionalAuditSpec(schema=schema, tau=50).describe()
    'intersectional-coverage(2x2, tau=50)'
    """

    kind: ClassVar[str] = "intersectional"

    schema: Schema
    tau: int
    n: int = 50
    c: float = 2.0
    view: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "view", _as_index_tuple(self.view))

    def view_array(self) -> npt.NDArray[np.int64] | None:
        """The normalized view as an ``int64`` array (``None`` = whole dataset)."""
        return _view_array(self.view)

    def describe(self) -> str:
        """One-line human-readable summary of the audit question."""
        return (
            f"intersectional-coverage({'x'.join(map(str, self.schema.cardinalities))}"
            f", tau={self.tau})"
        )

    def to_dict(self) -> dict[str, Any]:
        """Kind-tagged JSON form; :func:`spec_from_dict` inverts it losslessly."""
        return {
            "kind": self.kind,
            "schema": schema_to_dict(self.schema),
            "tau": self.tau,
            "n": self.n,
            "c": self.c,
            "view": list(self.view) if self.view is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IntersectionalAuditSpec":
        """Rebuild the spec from its :meth:`to_dict` form."""
        try:
            return cls(
                schema=schema_from_dict(data["schema"]),
                tau=int(data["tau"]),
                n=int(data["n"]),
                c=float(data["c"]),
                view=data["view"],
            )
        except KeyError as error:
            raise _missing_field(cls, error) from error


@dataclass(frozen=True)
class ClassifierAuditSpec:
    """Verify a classifier's predicted-positive set with Algorithm 4.

    Requires a session rng (the precision-estimation sample).

    Examples
    --------
    >>> from repro.audit import ClassifierAuditSpec
    >>> from repro.data.groups import group
    >>> spec = ClassifierAuditSpec(group=group(gender="female"), tau=50,
    ...                            predicted_positive=(3, 1, 4))
    >>> spec.describe()
    'classifier-coverage(gender=female, tau=50, |G|=3)'
    >>> spec.predicted_positive_array()
    array([3, 1, 4])
    """

    kind: ClassVar[str] = "classifier"

    group: Group
    tau: int
    predicted_positive: tuple[int, ...] = ()
    n: int = 50
    sample_fraction: float = 0.10
    fp_threshold: float = 0.25
    view: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "predicted_positive", _as_index_tuple(self.predicted_positive) or ()
        )
        object.__setattr__(self, "view", _as_index_tuple(self.view))

    def view_array(self) -> npt.NDArray[np.int64] | None:
        """The normalized view as an ``int64`` array (``None`` = whole dataset)."""
        return _view_array(self.view)

    def predicted_positive_array(self) -> npt.NDArray[np.int64]:
        """The classifier's predicted-positive set as an ``int64`` array."""
        return np.asarray(self.predicted_positive, dtype=np.int64)

    def describe(self) -> str:
        """One-line human-readable summary of the audit question."""
        return (
            f"classifier-coverage({self.group.describe()}, tau={self.tau}, "
            f"|G|={len(self.predicted_positive)})"
        )

    def to_dict(self) -> dict[str, Any]:
        """Kind-tagged JSON form; :func:`spec_from_dict` inverts it losslessly."""
        return {
            "kind": self.kind,
            "group": predicate_to_dict(self.group),
            "tau": self.tau,
            "predicted_positive": list(self.predicted_positive),
            "n": self.n,
            "sample_fraction": self.sample_fraction,
            "fp_threshold": self.fp_threshold,
            "view": list(self.view) if self.view is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClassifierAuditSpec":
        """Rebuild the spec from its :meth:`to_dict` form."""
        try:
            return cls(
                group=cast(Group, predicate_from_dict(data["group"])),
                tau=int(data["tau"]),
                predicted_positive=data["predicted_positive"],
                n=int(data["n"]),
                sample_fraction=float(data["sample_fraction"]),
                fp_threshold=float(data["fp_threshold"]),
                view=data["view"],
            )
        except KeyError as error:
            raise _missing_field(cls, error) from error


#: Anything :meth:`AuditSession.run` accepts.
AuditSpec = Union[
    GroupAuditSpec,
    BaseAuditSpec,
    MultipleAuditSpec,
    IntersectionalAuditSpec,
    ClassifierAuditSpec,
]

_SPEC_TYPES: dict[str, type[AuditSpec]] = {
    spec_type.kind: spec_type
    for spec_type in (
        GroupAuditSpec,
        BaseAuditSpec,
        MultipleAuditSpec,
        IntersectionalAuditSpec,
        ClassifierAuditSpec,
    )
}


def spec_from_dict(data: Mapping[str, Any]) -> AuditSpec:
    """Rebuild any spec from its :meth:`to_dict` form (kind-tagged).

    Examples
    --------
    >>> from repro.audit import GroupAuditSpec, spec_from_dict
    >>> from repro.data.groups import group
    >>> spec = GroupAuditSpec(predicate=group(gender="female"), tau=9)
    >>> spec_from_dict(spec.to_dict()) == spec
    True
    """
    spec_type = _SPEC_TYPES.get(data.get("kind"))
    if spec_type is None:
        raise InvalidParameterError(
            f"unknown audit spec kind {data.get('kind')!r}; "
            f"supported: {sorted(_SPEC_TYPES)}"
        )
    return spec_type.from_dict(data)
