"""The uniform report envelope every audit returns.

Whatever the spec kind, :meth:`AuditSession.run` and
:meth:`AuditSession.run_many` hand back one :class:`AuditReport`: the
spec(s) echoed verbatim, the verdict dataclass(es) the algorithm
produced, the window's :class:`~repro.core.results.TaskUsage` (dollar
cost) and :class:`~repro.engine.stats.EngineStats` (latency cost), and
wall-clock time. The envelope is the artifact that crosses process
boundaries: ``AuditReport.from_json(report.to_json())`` reconstructs an
object that compares **equal** to the original — specs, predicates,
pattern graphs, counters, everything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.audit.serialization import (
    engine_stats_from_dict,
    engine_stats_to_dict,
    result_from_dict,
    result_to_dict,
    task_usage_from_dict,
    task_usage_to_dict,
)
from repro.audit.specs import AuditSpec, spec_from_dict
from repro.core.results import TaskUsage
from repro.engine.stats import EngineStats
from repro.errors import CheckpointVersionError, InvalidParameterError

__all__ = ["AuditEntry", "AuditReport"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class AuditEntry:
    """One (spec, result) pair inside an :class:`AuditReport`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import AuditSession, GroundTruthOracle, GroupAuditSpec
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.groups import group
    >>> ds = binary_dataset(500, 10, rng=np.random.default_rng(0))
    >>> with AuditSession(GroundTruthOracle(ds)) as session:
    ...     report = session.run(GroupAuditSpec(predicate=group(gender="female"),
    ...                                         tau=5))
    >>> entry = report.entries[0]
    >>> entry.spec.tau, entry.result.covered
    (5, True)
    """

    spec: AuditSpec
    result: Any

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready pair; :meth:`from_dict` inverts it losslessly."""
        return {"spec": self.spec.to_dict(), "result": result_to_dict(self.result)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AuditEntry":
        """Rebuild one entry from its :meth:`to_dict` form."""
        try:
            return cls(
                spec=spec_from_dict(data["spec"]),
                result=result_from_dict(data["result"]),
            )
        except KeyError as error:
            raise InvalidParameterError(
                f"audit entry payload is missing field {error.args[0]!r}"
            ) from error


@dataclass(frozen=True)
class AuditReport:
    """Everything one :meth:`AuditSession.run`/:meth:`run_many` produced.

    Attributes
    ----------
    entries:
        ``(spec, result)`` pairs in input order — one for :meth:`run`,
        one per spec for :meth:`run_many`.
    tasks:
        Tasks the whole window consumed, measured by snapshotting the
        session's ledger around the run (so shared/cached work is counted
        once, however many specs profited from it).
    engine_stats:
        The engine-counter delta over the same window; ``None`` for
        sequential sessions.
    wall_clock_seconds:
        End-to-end wall-clock time of the window.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import AuditReport, AuditSession, GroundTruthOracle, GroupAuditSpec
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.groups import group
    >>> ds = binary_dataset(500, 10, rng=np.random.default_rng(0))
    >>> with AuditSession(GroundTruthOracle(ds)) as session:
    ...     report = session.run(GroupAuditSpec(predicate=group(gender="female"),
    ...                                         tau=5))
    >>> report.result.covered
    True
    >>> AuditReport.from_json(report.to_json()) == report
    True
    """

    entries: tuple[AuditEntry, ...]
    tasks: TaskUsage
    engine_stats: EngineStats | None
    wall_clock_seconds: float

    # -- single-entry conveniences ---------------------------------------
    @property
    def spec(self) -> AuditSpec:
        """The spec of a single-spec report (first spec otherwise)."""
        return self.entries[0].spec

    @property
    def result(self) -> Any:
        """The result of a single-spec report (first result otherwise)."""
        return self.entries[0].result

    @property
    def results(self) -> tuple[Any, ...]:
        """Every entry's result, in input order."""
        return tuple(entry.result for entry in self.entries)

    def describe(self) -> str:
        """Multi-line human-readable rendering of the whole envelope."""
        lines = [
            f"audit report ({len(self.entries)} spec"
            f"{'s' if len(self.entries) != 1 else ''}, "
            f"{self.tasks.total} tasks, {self.tasks.n_rounds} round-trips, "
            f"{self.wall_clock_seconds:.2f}s):"
        ]
        for entry in self.entries:
            lines.append(f"  {entry.spec.describe()}")
            for line in entry.result.describe().splitlines():
                lines.append(f"    {line}")
        if self.engine_stats is not None:
            lines.append(f"  {self.engine_stats.describe()}")
        return "\n".join(lines)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Version-stamped JSON-ready form; :meth:`from_dict` inverts it."""
        return {
            "version": _FORMAT_VERSION,
            "entries": [entry.to_dict() for entry in self.entries],
            "tasks": task_usage_to_dict(self.tasks),
            "engine_stats": engine_stats_to_dict(self.engine_stats),
            "wall_clock_seconds": self.wall_clock_seconds,
        }

    def to_json(self, *, indent: int | None = None) -> str:
        """Lossless JSON form; :meth:`from_json` inverts it exactly."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AuditReport":
        """Rebuild a report from :meth:`to_dict`; the result compares equal."""
        version = data.get("version")
        if version != _FORMAT_VERSION:
            raise CheckpointVersionError(
                f"unsupported audit report version {version!r} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        try:
            return cls(
                entries=tuple(
                    AuditEntry.from_dict(entry) for entry in data["entries"]
                ),
                tasks=task_usage_from_dict(data["tasks"]),
                engine_stats=engine_stats_from_dict(data["engine_stats"]),
                wall_clock_seconds=float(data["wall_clock_seconds"]),
            )
        except KeyError as error:
            raise InvalidParameterError(
                f"audit report payload is missing field {error.args[0]!r}"
            ) from error

    @classmethod
    # reprolint: disable=RPL005 (pure delegator: from_dict dispatches on the stamp)
    def from_json(cls, payload: str) -> "AuditReport":
        """Inverse of :meth:`to_json`: version-dispatched via :meth:`from_dict`."""
        return cls.from_dict(json.loads(payload))
