"""`AuditSession`: the one entry point for coverage auditing.

The paper frames coverage auditing as a workflow — pick target groups,
spend a crowd budget, get verdicts and MUPs. A session is that workflow
reified: it binds the *execution state* once (oracle, optional
:class:`~repro.engine.QueryEngine`, rng, task budget, dataset size) and
then runs any number of declarative :mod:`~repro.audit.specs` against
it::

    with AuditSession(oracle, engine=True, seed=7) as session:
        report = session.run(GroupAuditSpec(predicate=female, tau=50))
        batch = session.run_many([GroupAuditSpec(predicate=g, tau=50)
                                  for g in minorities])

Every run returns an :class:`~repro.audit.report.AuditReport` envelope
with lossless JSON round-tripping, and :meth:`run_many` schedules all
group specs as concurrent steppers on the session engine, so cross-spec
deduplication comes free through the shared answer cache.

Checkpoint / resume
-------------------
Crowd answers cost money; a session never forgets one. Every answer the
oracle produced — set queries via the engine's
:class:`~repro.engine.cache.AnswerCache` or the session's recording
proxy, point queries via the proxy — can be serialized with
:meth:`AuditSession.checkpoint` (typically after a
:class:`~repro.errors.BudgetExceededError`) and revived with
:meth:`AuditSession.resume`. A resumed session replays recorded answers
for free: re-running the interrupted spec fast-forwards through the paid
prefix without re-asking a single cached query and continues from the
frontier. Determinism makes this exact — the steppers re-issue the same
queries in the same order, and rng-dependent specs re-draw the same
samples because the checkpoint records the generator's exact stream
state as of the interrupted spec's start (however the rng was provided).

Legacy functions
----------------
The five function forms (``group_coverage`` & friends) are thin wrappers
over specs and share this module's execution path, so mixing them with
sessions is safe — but calling them with an *ad-hoc* ``engine=`` while a
session is active on the same oracle forfeits the session's cache and
batching; that pattern draws a one-shot :class:`DeprecationWarning` (see
:func:`warn_on_adhoc_engine`).
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.audit.proxy import RecordingOracleProxy
from repro.audit.report import AuditEntry, AuditReport
from repro.audit.runners import make_group_stepper, run_spec
from repro.audit.serialization import (
    point_answers_from_list,
    point_answers_to_list,
    set_answer_to_dict,
    set_answers_from_list,
)
from repro.audit.specs import AuditSpec, GroupAuditSpec, spec_from_dict
from repro.core.results import LedgerWindow, TaskUsage
from repro.crowd.oracle import Oracle
from repro.crowd.reliability.serialization import ReliabilitySnapshot
from repro.engine.requests import QueryKey
from repro.engine.scheduler import QueryEngine
from repro.errors import (
    BudgetExceededError,
    CheckpointVersionError,
    InvalidParameterError,
)

__all__ = [
    "AuditProgress",
    "AuditSession",
    "warn_on_adhoc_engine",
]

#: Version 2 serializes contiguous-run index keys as compact
#: ``{"run": [start, stop]}`` endpoints instead of exhaustive index
#: lists; version-1 checkpoints (always exhaustive lists) remain readable.
#: Version 3 adds the ``reliability`` section (its own versioned
#: :class:`~repro.crowd.reliability.ReliabilitySnapshot` payload, or
#: ``None`` for sessions without a reliability-enabled platform);
#: version-1/2 checkpoints remain readable.
_CHECKPOINT_VERSION = 3
_READABLE_CHECKPOINT_VERSIONS = frozenset({1, 2, 3})

#: Sessions currently inside their ``with`` block, for the legacy-path
#: DeprecationWarning. Module-level and identity-based; sessions
#: unregister on exit.
_ACTIVE_SESSIONS: list["AuditSession"] = []

ADHOC_ENGINE_WARNING = (
    "called with an ad-hoc engine= while an AuditSession is active on the "
    "same oracle; route the audit through session.run(spec) so queries "
    "share the session's engine and answer cache"
)


def warn_on_adhoc_engine(function_name: str, oracle: Oracle, engine: object) -> None:
    """Emit the legacy-path DeprecationWarning (once per session).

    Fires when a legacy function form is handed its own ``engine=`` while
    a session is active on the same oracle — the query stream then splits
    across two caches and the session's batching is bypassed. Passing the
    session's own engine is fine; so is sequential use (``engine=None``).
    The warning is a standard :class:`DeprecationWarning`, suppressible
    with the usual :mod:`warnings` filters.
    """
    if engine is None:
        return
    for session in _ACTIVE_SESSIONS:
        if session._covers_oracle(oracle) and session.engine is not engine:
            if not session._warned_adhoc_engine:
                session._warned_adhoc_engine = True
                warnings.warn(
                    f"{function_name}() {ADHOC_ENGINE_WARNING}",
                    DeprecationWarning,
                    stacklevel=3,
                )
            return


@dataclass(frozen=True)
class AuditProgress:
    """One progress event delivered to a session's callback.

    ``stage`` is ``"start"`` (spec about to execute), ``"round"`` (an
    oracle round-trip completed), or ``"finish"`` (spec done). ``tasks``
    and ``rounds`` count crowd work since the current run/batch started.
    ``spec`` is ``None`` for the ``"round"`` events of a ``run_many``
    batch's concurrent group phase, which serve every spec in the batch
    at once.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import AuditSession, GroundTruthOracle, GroupAuditSpec
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.groups import group
    >>> ds = binary_dataset(500, 10, rng=np.random.default_rng(0))
    >>> stages = []
    >>> with AuditSession(GroundTruthOracle(ds),
    ...                   progress=lambda p: stages.append(p.stage)) as session:
    ...     _ = session.run(GroupAuditSpec(predicate=group(gender="female"), tau=5))
    >>> stages[0], stages[-1], "round" in stages
    ('start', 'finish', True)
    """

    spec: AuditSpec | None
    stage: str
    tasks: int
    rounds: int


#: The recording/replaying proxy sessions wrap around their oracle now
#: lives in :mod:`repro.audit.proxy`, shared with the multi-tenant
#: :class:`~repro.service.AuditService`.
_SessionOracle = RecordingOracleProxy


def _infer_dataset_size(oracle: Oracle) -> int | None:
    """The dataset size behind an oracle, when it exposes one."""
    dataset = getattr(oracle, "dataset", None)
    if dataset is None:
        dataset = getattr(getattr(oracle, "platform", None), "dataset", None)
    return len(dataset) if dataset is not None else None


def _reliability_platform(oracle: Oracle):
    """The reliability-enabled :class:`~repro.crowd.platform.CrowdPlatform`
    behind an oracle (or oracle proxy), when there is one, else ``None``."""
    platform = getattr(oracle, "platform", None)
    if platform is not None and getattr(platform, "reliability", None) is not None:
        return platform
    return None


class AuditSession:
    """Shared execution state for a batch of coverage audits.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import AuditSession, GroundTruthOracle, GroupAuditSpec
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.groups import group
    >>> ds = binary_dataset(1_000, 30, rng=np.random.default_rng(0))
    >>> with AuditSession(GroundTruthOracle(ds), engine=True) as session:
    ...     report = session.run(GroupAuditSpec(predicate=group(gender="female"),
    ...                                         tau=50))
    >>> report.result.covered, report.result.count
    (False, 30)

    Parameters
    ----------
    oracle:
        The answer source every spec run is charged to.
    engine:
        ``None`` (default) runs specs sequentially — the paper's
        execution model, bit-identical to the legacy function forms.
        ``True`` creates a :class:`~repro.engine.QueryEngine` over the
        session's oracle (pass ``batch_size``/``speculation`` to tune
        it); an existing :class:`~repro.engine.QueryEngine` instance over
        the same oracle is adopted as-is.
    seed / rng:
        The randomness for sampling-based specs; at most one of the two.
        Checkpoints record the generator's exact stream state (not just
        the seed), so rng-dependent specs resume correctly either way.
    task_budget:
        Crowd-task ceiling, installed on the oracle's ledger for the
        session's lifetime (the previous budget is restored on
        :meth:`close`). Exhaustion raises
        :class:`~repro.errors.BudgetExceededError` mid-run; the answers
        already paid for survive in the session and can be checkpointed.
    dataset_size:
        Search-space size for specs with ``view=None``. Defaults to the
        size of the oracle's dataset when it exposes one.
    progress:
        Default progress callback (see :class:`AuditProgress`); a per-run
        ``on_progress=`` overrides it.
    """

    def __init__(
        self,
        oracle: Oracle,
        *,
        engine: "QueryEngine | bool | None" = None,
        batch_size: int | None = None,
        speculation: int | None = None,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        task_budget: int | None = None,
        dataset_size: int | None = None,
        progress: Callable[[AuditProgress], None] | None = None,
    ) -> None:
        self.oracle = oracle
        self._proxy = _SessionOracle(oracle)

        if isinstance(engine, QueryEngine):
            if batch_size is not None or speculation is not None:
                raise InvalidParameterError(
                    "pass batch_size/speculation only when the session builds "
                    "its own engine (engine=True), not alongside an instance"
                )
            engine.ensure_executes_for(self._proxy)
            self.engine: QueryEngine | None = engine
        elif engine is True:
            self.engine = QueryEngine(
                self._proxy,
                **{
                    key: value
                    for key, value in (
                        ("batch_size", batch_size),
                        ("speculation", speculation),
                    )
                    if value is not None
                },
            )
        elif engine in (None, False):
            if batch_size is not None or speculation is not None:
                raise InvalidParameterError(
                    "batch_size/speculation require engine=True"
                )
            self.engine = None
        else:
            raise InvalidParameterError(
                "engine must be None, True, or a QueryEngine instance"
            )

        if seed is not None and rng is not None:
            raise InvalidParameterError("pass either seed or rng, not both")
        if task_budget is not None and task_budget <= 0:
            raise InvalidParameterError(
                f"task_budget must be positive, got {task_budget}; a "
                "session with no budget ceiling is task_budget=None"
            )
        self.seed = seed
        self.rng = rng if rng is not None else (
            np.random.default_rng(seed) if seed is not None else None
        )

        self.dataset_size = (
            dataset_size if dataset_size is not None else _infer_dataset_size(oracle)
        )
        self.progress = progress

        self._previous_budget: int | None = None
        self.task_budget = task_budget
        if task_budget is not None:
            self._previous_budget = oracle.ledger.budget
            oracle.ledger.budget = task_budget

        self._unfinished: list[AuditSpec] = []
        #: rng state captured at the start of the spec currently executing
        #: (None when idle) — what a checkpoint must record so a resumed
        #: re-run of that spec re-draws the same samples.
        self._inflight_rng_state: dict | None = None
        self._warned_adhoc_engine = False
        self._closed = False

    def _rng_state(self) -> dict | None:
        """The bound generator's serializable state, or ``None``."""
        return None if self.rng is None else dict(self.rng.bit_generator.state)

    # -- lifecycle --------------------------------------------------------
    def __enter__(self) -> "AuditSession":
        if self._closed:
            raise InvalidParameterError("session is closed and cannot be re-entered")
        _ACTIVE_SESSIONS.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Leave the active registry and restore the ledger's budget."""
        if self._closed:
            return
        self._closed = True
        if self in _ACTIVE_SESSIONS:
            _ACTIVE_SESSIONS.remove(self)
        if self.task_budget is not None:
            self.oracle.ledger.budget = self._previous_budget

    def _covers_oracle(self, oracle: Oracle) -> bool:
        return oracle is self.oracle or oracle is self._proxy

    @property
    def membership_index(self):
        """The :class:`~repro.data.membership.GroupMembershipIndex` the
        session's oracle answers from, when it exposes one (simulated
        oracles and platform-backed oracles do), else ``None``. Audits
        the session runs share this single index however many specs and
        steppers are in flight."""
        index = getattr(self.oracle, "membership_index", None)
        if index is None:
            index = getattr(
                getattr(self.oracle, "platform", None), "membership_index", None
            )
        return index

    @property
    def pending_specs(self) -> tuple[AuditSpec, ...]:
        """Specs that started but have not finished — populated by a
        failed run (budget exhaustion) or restored by :meth:`resume`."""
        return tuple(self._unfinished)

    def _mark_finished(self, spec: AuditSpec) -> None:
        try:
            self._unfinished.remove(spec)
        except ValueError:
            pass  # duplicate specs in one batch share a single entry

    # -- execution --------------------------------------------------------
    def run(
        self,
        spec: AuditSpec,
        *,
        on_progress: Callable[[AuditProgress], None] | None = None,
    ) -> AuditReport:
        """Execute one spec and wrap the outcome in an :class:`AuditReport`.

        Raises whatever the algorithm raises (notably
        :class:`~repro.errors.BudgetExceededError`); the spec then stays
        in :attr:`pending_specs` so a checkpoint can resume it.
        """
        callback = on_progress if on_progress is not None else self.progress
        started = time.perf_counter()
        ledger = self.oracle.ledger
        window = LedgerWindow(ledger)
        engine_before = self.engine.snapshot() if self.engine is not None else None

        if spec not in self._unfinished:
            self._unfinished.append(spec)
        on_round = _round_emitter(callback, spec, window)
        if callback is not None:
            callback(AuditProgress(spec=spec, stage="start", tasks=0, rounds=0))

        self._inflight_rng_state = self._rng_state()
        try:
            result = run_spec(
                self._proxy,
                spec,
                engine=self.engine,
                rng=self.rng,
                dataset_size=self.dataset_size,
                on_round=on_round,
            )
        except BudgetExceededError:
            raise  # resumable: the spec stays pending for checkpoint()
        except BaseException:
            # Not resumable (validation errors, bugs): forget the spec so
            # it cannot poison a later checkpoint's pending list.
            self._mark_finished(spec)
            self._inflight_rng_state = None
            raise
        self._mark_finished(spec)
        self._inflight_rng_state = None

        tasks = window.usage()
        report = AuditReport(
            entries=(AuditEntry(spec=spec, result=result),),
            tasks=tasks,
            engine_stats=(
                self.engine.stats_since(engine_before)
                if self.engine is not None
                else None
            ),
            wall_clock_seconds=time.perf_counter() - started,
        )
        if callback is not None:
            callback(
                AuditProgress(
                    spec=spec,
                    stage="finish",
                    tasks=tasks.total,
                    rounds=tasks.n_rounds,
                )
            )
        return report

    def run_many(
        self,
        specs: Iterable[AuditSpec],
        *,
        on_progress: Callable[[AuditProgress], None] | None = None,
    ) -> AuditReport:
        """Execute several specs as one batch; one envelope, N entries.

        On an engine session every :class:`~repro.audit.GroupAuditSpec`
        becomes a stepper and they all advance **concurrently** on the
        session engine: the ready frontiers of every tree batch into
        shared oracle round-trips and identical questions across specs
        are paid once (in-flight dedup + shared answer cache). Each group
        entry's ``result.tasks`` then carries the set queries dispatched
        *on its behalf* (shared queries are billed to the spec that
        caused the dispatch; round-trips are batch-level and live in the
        envelope's ``tasks``). Remaining spec kinds run afterwards, in
        input order, still sharing the engine's cache. Sequential
        sessions run everything in input order.

        Entry order always matches input order. ``"round"`` progress
        events of the concurrent group phase serve the whole batch and
        carry ``spec=None``; per-spec rounds are only meaningful for the
        sequentially-executed specs.
        """
        specs = tuple(specs)
        callback = on_progress if on_progress is not None else self.progress
        started = time.perf_counter()
        ledger = self.oracle.ledger
        window = LedgerWindow(ledger)
        engine_before = self.engine.snapshot() if self.engine is not None else None

        for spec in specs:
            if spec not in self._unfinished:
                self._unfinished.append(spec)

        results: dict[int, Any] = {}
        self._inflight_rng_state = self._rng_state()
        try:
            if self.engine is not None:
                concurrent = [
                    (position, spec)
                    for position, spec in enumerate(specs)
                    if type(spec) is GroupAuditSpec
                ]
                if concurrent:
                    steppers = {
                        position: make_group_stepper(
                            spec,
                            dataset_size=self.dataset_size,
                            speculation=self.engine.speculation,
                        )
                        for position, spec in concurrent
                    }
                    dispatched = self.engine.run(
                        [steppers[position] for position, _ in concurrent],
                        on_round=_round_emitter(callback, None, window),
                    )
                    for position, spec in concurrent:
                        stepper = steppers[position]
                        results[position] = stepper.result(
                            tasks=TaskUsage(
                                n_set_queries=dispatched.get(stepper, 0)
                            )
                        )
                        self._mark_finished(spec)
            for position, spec in enumerate(specs):
                if position in results:
                    continue
                self._inflight_rng_state = self._rng_state()
                results[position] = run_spec(
                    self._proxy,
                    spec,
                    engine=self.engine,
                    rng=self.rng,
                    dataset_size=self.dataset_size,
                    on_round=_round_emitter(callback, spec, window),
                )
                self._mark_finished(spec)
        except BudgetExceededError:
            raise  # resumable: unfinished specs stay pending for checkpoint()
        except BaseException:
            for spec in specs:
                self._mark_finished(spec)
            self._inflight_rng_state = None
            raise
        self._inflight_rng_state = None

        tasks = window.usage()
        report = AuditReport(
            entries=tuple(
                AuditEntry(spec=spec, result=results[position])
                for position, spec in enumerate(specs)
            ),
            tasks=tasks,
            engine_stats=(
                self.engine.stats_since(engine_before)
                if self.engine is not None
                else None
            ),
            wall_clock_seconds=time.perf_counter() - started,
        )
        if callback is not None:
            for spec in specs:
                callback(
                    AuditProgress(
                        spec=spec,
                        stage="finish",
                        tasks=tasks.total,
                        rounds=tasks.n_rounds,
                    )
                )
        return report

    # -- checkpoint / resume ----------------------------------------------
    def checkpoint(self) -> str:
        """Serialize every crowd answer this session paid for, plus the
        session's configuration and unfinished specs, as a JSON string.

        Feed it to :meth:`AuditSession.resume` (in this process or
        another) to continue without re-asking a single recorded query.
        """
        set_answers: dict[QueryKey, bool] = dict(self._proxy._set_seen)
        if self.engine is not None:
            set_answers.update(dict(self.engine.cache.entries()))
        rng_state = (
            self._inflight_rng_state
            if self._inflight_rng_state is not None
            else self._rng_state()
        )
        return json.dumps(
            {
                "version": _CHECKPOINT_VERSION,
                "seed": self.seed,
                "rng_state": rng_state,
                "dataset_size": self.dataset_size,
                "engine": (
                    {
                        "batch_size": self.engine.batch_size,
                        "speculation": self.engine.speculation,
                    }
                    if self.engine is not None
                    else None
                ),
                "pending": [spec.to_dict() for spec in self._unfinished],
                "set_answers": [
                    set_answer_to_dict(predicate, index_key, answer)
                    for (predicate, index_key), answer in set_answers.items()
                ],
                "point_answers": point_answers_to_list(self._proxy._point_seen),
                "reliability": self._reliability_section(),
            }
        )

    def _reliability_section(self) -> dict | None:
        """The versioned reliability payload for :meth:`checkpoint`, or
        ``None`` when the oracle has no reliability-enabled platform."""
        platform = _reliability_platform(self.oracle)
        if platform is None:
            return None
        return ReliabilitySnapshot.capture(platform).to_dict()

    def reliability_report(self):
        """The reliability policy's current
        :class:`~repro.crowd.reliability.ReliabilityReport` (quarantine
        roster, spend counters), or ``None`` when the session's oracle
        has no reliability-enabled platform behind it."""
        platform = _reliability_platform(self.oracle)
        if platform is None:
            return None
        return platform.reliability.report()

    @classmethod
    def resume(
        cls,
        checkpoint: str,
        oracle: Oracle,
        *,
        task_budget: int | None = None,
        progress: Callable[[AuditProgress], None] | None = None,
    ) -> "AuditSession":
        """Revive a session from a :meth:`checkpoint` string.

        The new session is bound to ``oracle`` (typically the same one,
        possibly with a raised budget via ``task_budget``), re-creates
        the engine from the recorded configuration, preloads every
        recorded answer for free replay, and restores
        :attr:`pending_specs` — re-running those reaches the same
        verdicts while paying only for queries the original session never
        asked.
        """
        data = json.loads(checkpoint)
        version = data.get("version")
        if version not in _READABLE_CHECKPOINT_VERSIONS:
            raise CheckpointVersionError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads versions {sorted(_READABLE_CHECKPOINT_VERSIONS)})"
            )
        # Field extraction is wrapped narrowly so only the checkpoint's
        # own shape can produce a CheckpointVersionError — a KeyError
        # raised later by user code (oracle, progress callback) during
        # session construction must propagate untouched.
        try:
            engine_config = data["engine"]
            batch_size = (
                engine_config["batch_size"] if engine_config is not None else None
            )
            speculation = (
                engine_config["speculation"] if engine_config is not None else None
            )
            seed = data["seed"]
            dataset_size = data["dataset_size"]
            raw_set_answers = data["set_answers"]
            raw_point_answers = data["point_answers"]
            raw_pending = data["pending"]
            raw_reliability = data["reliability"] if version >= 3 else None
        except KeyError as error:
            raise CheckpointVersionError(
                f"checkpoint declares version {version} but is missing the "
                f"{error.args[0]!r} field that version requires"
            ) from error
        session = cls(
            oracle,
            engine=True if engine_config is not None else None,
            batch_size=batch_size,
            speculation=speculation,
            seed=seed,
            task_budget=task_budget,
            dataset_size=dataset_size,
            progress=progress,
        )
        rng_state = data.get("rng_state")
        if rng_state is not None:
            # Restore the generator to the exact stream position the
            # interrupted spec started from, so its sampling phase
            # re-draws identically on the resumed run. This works whether
            # the original session was built from seed= or a live rng.
            try:
                bit_generator = getattr(np.random, rng_state["bit_generator"])()
                bit_generator.state = rng_state
            except (KeyError, AttributeError, TypeError, ValueError) as error:
                raise CheckpointVersionError(
                    "checkpointed rng_state is not a bit-generator state "
                    "this build can restore — written by an incompatible "
                    f"version? ({error})"
                ) from error
            session.rng = np.random.Generator(bit_generator)
        set_answers = set_answers_from_list(raw_set_answers)
        session._proxy.load_set_answers(set_answers)
        if session.engine is not None:
            for key, answer in set_answers.items():
                session.engine.cache.store(key, answer)
        session._proxy.load_point_answers(
            point_answers_from_list(raw_point_answers)
        )
        try:
            session._unfinished = [spec_from_dict(spec) for spec in raw_pending]
        except CheckpointVersionError:
            raise
        except (KeyError, InvalidParameterError, ValueError) as error:
            # Missing fields, unknown spec kinds, and corrupt field
            # values alike mean "written by an incompatible build",
            # which is this error's contract.
            raise CheckpointVersionError(
                f"checkpointed pending spec is not readable by this build "
                f"({error}) — written by an incompatible checkpoint version?"
            ) from error
        if raw_reliability is not None:
            platform = _reliability_platform(oracle)
            if platform is None:
                raise CheckpointVersionError(
                    "checkpoint carries a reliability section but the "
                    "resuming oracle has no reliability-enabled platform — "
                    "resume with the same CrowdPlatform(reliability=...) "
                    "configuration the checkpoint was written under"
                )
            ReliabilitySnapshot.from_dict(raw_reliability).restore(platform)
        return session

    def run_pending(self) -> AuditReport:
        """Run everything :attr:`pending_specs` holds (after a resume)."""
        if not self._unfinished:
            raise InvalidParameterError("session has no pending specs to run")
        return self.run_many(tuple(self._unfinished))



def _round_emitter(
    callback: Callable[[AuditProgress], None] | None,
    spec: AuditSpec | None,
    window: LedgerWindow,
) -> Callable[[], None] | None:
    """A zero-arg hook emitting a ``"round"`` event with window totals."""
    if callback is None:
        return None

    def emit() -> None:
        usage = window.usage()
        callback(
            AuditProgress(
                spec=spec, stage="round", tasks=usage.total, rounds=usage.n_rounds
            )
        )

    return emit
