"""Quality-control policies (Table 1's three experiment settings).

The paper evaluates three quality-control configurations on MTurk:

1. *Majority vote* only (group assessment — always on in our platform).
2. *Qualification test* + majority vote: workers must pass a screening
   test "with a similar layout to the original HITs" before accessing them.
3. *Rating* + majority vote: only workers with
   ``PercentAssignmentsApproved >= 95`` and ``NumberHITsApproved >= 100``
   may work.

Policies are individual *screens*: they decide which workers are eligible.
Aggregation (majority vote / Dawid–Skene) is configured on the platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.crowd.workers import Worker
from repro.errors import InvalidParameterError

__all__ = [
    "ScreeningPolicy",
    "QualificationTest",
    "RatingPolicy",
    "screen_workers",
    "QC_MAJORITY_ONLY",
    "qc_with_qualification",
    "qc_with_rating",
]


@runtime_checkable
class ScreeningPolicy(Protocol):
    """Decides whether one worker is eligible to work on the HITs."""

    name: str

    def admits(self, worker: Worker, rng: np.random.Generator) -> bool: ...


@dataclass(frozen=True)
class QualificationTest:
    """A screening test the worker must pass before accessing HITs.

    The simulated worker answers ``n_questions`` questions, each correctly
    with probability ``worker.competence``, and is admitted if the correct
    fraction reaches ``pass_threshold``.
    """

    n_questions: int = 10
    pass_threshold: float = 0.8
    name: str = "qualification-test"

    def __post_init__(self) -> None:
        if self.n_questions <= 0:
            raise InvalidParameterError("n_questions must be positive")
        if not 0.0 < self.pass_threshold <= 1.0:
            raise InvalidParameterError("pass_threshold must be in (0, 1]")

    def admits(self, worker: Worker, rng: np.random.Generator) -> bool:
        score = worker.take_qualification_test(self.n_questions, rng)
        return score >= self.pass_threshold


@dataclass(frozen=True)
class RatingPolicy:
    """AMT reputation screening.

    The paper's exact criterion: ``PercentAssignmentsApproved >= 95`` and
    ``NumberHITsApproved >= 100``.
    """

    min_percent_approved: float = 95.0
    min_hits_approved: int = 100
    name: str = "rating"

    def admits(self, worker: Worker, rng: np.random.Generator) -> bool:
        return (
            worker.percent_assignments_approved >= self.min_percent_approved
            and worker.number_hits_approved >= self.min_hits_approved
        )


def screen_workers(
    workers: Sequence[Worker],
    policies: Sequence[ScreeningPolicy],
    rng: np.random.Generator,
) -> list[Worker]:
    """Workers admitted by *all* policies.

    An empty policy list admits everyone (the majority-vote-only setting).
    """
    eligible = list(workers)
    for policy in policies:
        eligible = [worker for worker in eligible if policy.admits(worker, rng)]
    return eligible


#: Table 1 row 1 — no individual assessment, majority vote only.
QC_MAJORITY_ONLY: tuple[ScreeningPolicy, ...] = ()


def qc_with_qualification(
    n_questions: int = 10, pass_threshold: float = 0.8
) -> tuple[ScreeningPolicy, ...]:
    """Table 1 row 2 — qualification test + majority vote."""
    return (QualificationTest(n_questions=n_questions, pass_threshold=pass_threshold),)


def qc_with_rating(
    min_percent_approved: float = 95.0, min_hits_approved: int = 100
) -> tuple[ScreeningPolicy, ...]:
    """Table 1 row 3 — rating screen + majority vote."""
    return (
        RatingPolicy(
            min_percent_approved=min_percent_approved,
            min_hits_approved=min_hits_approved,
        ),
    )
