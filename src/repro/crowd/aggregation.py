"""Truth inference: aggregating redundant worker answers.

The paper adopts majority vote (§2.3, quoting [63]) as its aggregation
model and cites the broader truth-inference literature (Dawid & Skene's EM
estimator [15], worker profiling [59, 60]). We implement both:

* :func:`majority_vote` / :func:`majority_point` — the paper's choice.
* :class:`DawidSkene` — the classic EM estimator of worker confusion
  matrices and task truths, usable as a drop-in aggregator for experiments
  with heterogeneous (spammy) pools. Used by the A2 ablation bench.

The *online* streaming variant (incremental EM, damped partial steps,
vote-by-vote posteriors) lives in :mod:`repro.crowd.reliability`.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Mapping, Sequence, TypeVar

import numpy as np
import numpy.typing as npt

from repro.errors import InvalidParameterError

__all__ = ["majority_vote", "majority_point", "tied_winners", "DawidSkene"]

AnswerT = TypeVar("AnswerT", bound=Hashable)


def majority_vote(
    answers: Sequence[AnswerT], *, rng: np.random.Generator | None = None
) -> AnswerT:
    """The most frequent answer; ties broken uniformly at random (or by
    first occurrence when no RNG is supplied).

    Tied winners are ordered by *first occurrence in the answer
    sequence* — explicitly, and identically on both paths: the
    deterministic path returns the first winner of that ordering, the
    rng path draws an index into the same ordering. ``[A, B, B, A]``
    therefore resolves deterministically to ``A`` and samples uniformly
    over ``(A, B)`` with an rng.

    >>> majority_vote([True, True, False])
    True
    >>> majority_vote(["b", "a", "a", "b"])   # tie -> first occurrence
    'b'
    """
    if not answers:
        raise InvalidParameterError("majority_vote needs at least one answer")
    counts = Counter(answers)
    top_count = max(counts.values())
    # The explicit tie order both paths share: first occurrence in
    # `answers`, not the count-map's internal ordering.
    winners = [
        answer for answer in dict.fromkeys(answers) if counts[answer] == top_count
    ]
    if rng is None or len(winners) == 1:
        return winners[0]
    return winners[int(rng.integers(len(winners)))]


def majority_point(
    answers: Sequence[Mapping[str, str]], *, rng: np.random.Generator | None = None
) -> dict[str, str]:
    """Attribute-wise majority vote over point-query answers.

    Each worker supplies a full ``{attribute: value}`` labeling; the
    aggregate takes the majority independently per attribute, which is how
    multi-attribute labeling HITs are resolved in practice.

    >>> majority_point([{"gender": "f"}, {"gender": "f"}, {"gender": "m"}])
    {'gender': 'f'}
    """
    if not answers:
        raise InvalidParameterError("majority_point needs at least one answer")
    attributes = answers[0].keys()
    return {
        attribute: majority_vote([answer[attribute] for answer in answers], rng=rng)
        for attribute in attributes
    }


class DawidSkene:
    """Dawid–Skene EM truth inference for categorical tasks.

    Estimates, jointly, (a) a posterior over each task's true label and
    (b) a per-worker confusion matrix, by expectation-maximization:

    * E-step: task posteriors from current class priors and confusions,
    * M-step: class priors and worker confusions from current posteriors.

    >>> ds = DawidSkene(n_classes=2)
    >>> ds.fit_predict({0: {"w1": 1, "w2": 1, "w3": 0}})
    {0: 1}

    Parameters
    ----------
    n_classes:
        Number of label classes (2 for yes/no set queries).
    max_iterations, tolerance:
        EM stopping criteria (log-likelihood change below ``tolerance``).
    smoothing:
        Laplace smoothing added to confusion counts so workers with few
        answers do not produce degenerate (0/1) confusions.
    """

    def __init__(
        self,
        n_classes: int,
        *,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        smoothing: float = 0.01,
    ) -> None:
        if n_classes < 2:
            raise InvalidParameterError("n_classes must be >= 2")
        if max_iterations < 1:
            raise InvalidParameterError("max_iterations must be >= 1")
        self.n_classes = n_classes
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing
        self.class_priors_: npt.NDArray[np.float64] | None = None
        self.worker_confusions_: dict[Hashable, npt.NDArray[np.float64]] | None = None
        self.posteriors_: npt.NDArray[np.float64] | None = None
        self.n_iterations_: int = 0

    def fit_predict(
        self, responses: Mapping[Hashable, Mapping[Hashable, int]]
    ) -> dict[Hashable, int]:
        """Infer the MAP label of every task.

        Parameters
        ----------
        responses:
            ``{task_id: {worker_id: label}}`` with integer labels in
            ``[0, n_classes)``.

        Returns
        -------
        dict
            ``{task_id: inferred_label}``.
        """
        if not responses:
            return {}
        task_ids = list(responses.keys())
        worker_ids = sorted(
            {worker for worker_answers in responses.values() for worker in worker_answers},
            key=repr,
        )
        task_pos = {task: i for i, task in enumerate(task_ids)}
        worker_pos = {worker: j for j, worker in enumerate(worker_ids)}
        n_tasks, n_workers, k = len(task_ids), len(worker_ids), self.n_classes

        # Dense (tasks x workers) answer matrix, -1 for "not answered".
        answers = np.full((n_tasks, n_workers), -1, dtype=np.int64)
        for task, worker_answers in responses.items():
            for worker, label in worker_answers.items():
                if not 0 <= label < k:
                    raise InvalidParameterError(
                        f"label {label} out of range [0, {k}) for task {task!r}"
                    )
                answers[task_pos[task], worker_pos[worker]] = label

        # Initialize posteriors from per-task vote shares.
        posteriors: npt.NDArray[np.float64] = np.zeros((n_tasks, k), dtype=np.float64)
        for i in range(n_tasks):
            answered = answers[i][answers[i] >= 0]
            for label in answered:
                posteriors[i, label] += 1.0
        posteriors += 1e-9
        posteriors /= posteriors.sum(axis=1, keepdims=True)

        previous_likelihood = -np.inf
        priors: npt.NDArray[np.float64] = np.full(k, 1.0 / k, dtype=np.float64)
        confusions: npt.NDArray[np.float64] = np.zeros(
            (n_workers, k, k), dtype=np.float64
        )
        for iteration in range(1, self.max_iterations + 1):
            # M-step: class priors and worker confusion matrices.
            priors = posteriors.mean(axis=0)
            confusions.fill(self.smoothing)
            for j in range(n_workers):
                answered_tasks = np.flatnonzero(answers[:, j] >= 0)
                for i in answered_tasks:
                    confusions[j, :, answers[i, j]] += posteriors[i]
            confusions /= confusions.sum(axis=2, keepdims=True)

            # E-step: task posteriors.
            log_posterior = np.tile(np.log(priors + 1e-300), (n_tasks, 1))
            for j in range(n_workers):
                answered_tasks = np.flatnonzero(answers[:, j] >= 0)
                for i in answered_tasks:
                    log_posterior[i] += np.log(confusions[j, :, answers[i, j]] + 1e-300)
            log_posterior -= log_posterior.max(axis=1, keepdims=True)
            posteriors = np.exp(log_posterior)
            posteriors /= posteriors.sum(axis=1, keepdims=True)

            likelihood = float(np.sum(log_posterior * posteriors))
            self.n_iterations_ = iteration
            if abs(likelihood - previous_likelihood) < self.tolerance:
                break
            previous_likelihood = likelihood

        self.class_priors_ = priors
        self.posteriors_ = posteriors
        self.worker_confusions_ = {
            worker: confusions[worker_pos[worker]] for worker in worker_ids
        }
        map_labels = posteriors.argmax(axis=1)
        return {task: int(map_labels[task_pos[task]]) for task in task_ids}

    def worker_accuracy(self, worker_id: Hashable) -> float:
        """Estimated probability that ``worker_id`` answers correctly,
        averaged over classes (diagonal mean of the confusion matrix)."""
        if self.worker_confusions_ is None:
            raise InvalidParameterError("call fit_predict before worker_accuracy")
        confusion = self.worker_confusions_[worker_id]
        return float(np.mean(np.diag(confusion)))


# Re-exported for callers that want the "first-occurrence" tie order
# without re-deriving it: the explicit winner list majority_vote uses.
def tied_winners(answers: Sequence[AnswerT]) -> list[AnswerT]:
    """Top-count answers in first-occurrence order — the tie order
    :func:`majority_vote` resolves over, exposed for tests and callers
    that need the full tied set.

    >>> tied_winners(["b", "a", "a", "b"])
    ['b', 'a']
    """
    if not answers:
        raise InvalidParameterError("tied_winners needs at least one answer")
    counts = Counter(answers)
    top_count = max(counts.values())
    return [
        answer for answer in dict.fromkeys(answers) if counts[answer] == top_count
    ]
