"""Pricing models and cost accounting (§2.3, §6.3.1, and §8's future work).

The paper adopts the *fixed price* model: every HIT costs the same, so
minimizing cost is exactly minimizing the number of HITs. Their live runs
priced HITs at $0.10 (later $0.05) with Amazon's 20 % service charge on top
($44.10 paid to workers + $8.82 fees).

The paper's conclusion names "extending our techniques to support various
pricing models" as future work; we implement one natural family —
:class:`SizeDependentPricing`, where a set query's reward grows with the
number of images shown (real requesters pay more for bigger HITs) — and
:mod:`repro.core.cost_aware` builds the dollar-optimal set-size chooser on
top of it.

:class:`CostLedger` is the platform's running account: HIT counts by type,
assignment counts, worker payments, and service fees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.errors import InvalidParameterError

__all__ = ["PricingModel", "FixedPricing", "SizeDependentPricing", "CostLedger"]


@runtime_checkable
class PricingModel(Protocol):
    """What the cost ledger needs from a pricing model.

    Every model prices one published HIT from its redundancy and its
    display size. Fixed pricing ignores ``n_images``; size-dependent
    pricing is *defined* by it — the shared signature is what lets a
    :class:`CostLedger` carry either model without caring which.
    """

    def hit_cost(self, n_assignments: int, n_images: int = 1) -> float:
        """Worker payments for one HIT showing ``n_images`` images to
        ``n_assignments`` redundant workers."""
        ...

    def fee(self, worker_payment: float) -> float:
        """Platform service fee on top of ``worker_payment``."""
        ...


@dataclass(frozen=True)
class FixedPricing:
    """Every HIT pays ``price_per_hit`` per assignment, plus the platform's
    ``service_fee_rate`` (AMT charges 20 %)."""

    price_per_hit: float = 0.10
    service_fee_rate: float = 0.20

    def __post_init__(self) -> None:
        if self.price_per_hit < 0:
            raise InvalidParameterError("price_per_hit must be >= 0")
        if self.service_fee_rate < 0:
            raise InvalidParameterError("service_fee_rate must be >= 0")

    def assignment_cost(self) -> float:
        """Cost of one worker assignment, before fees."""
        return self.price_per_hit

    def hit_cost(self, n_assignments: int, n_images: int = 1) -> float:
        """Worker payments for one HIT with redundancy ``n_assignments``.

        Fixed pricing is size-blind: ``n_images`` is accepted (the
        :class:`PricingModel` protocol) and ignored.
        """
        return self.price_per_hit * n_assignments

    def fee(self, worker_payment: float) -> float:
        return worker_payment * self.service_fee_rate


@dataclass(frozen=True)
class SizeDependentPricing:
    """Per-HIT reward grows linearly with the number of images shown.

    ``price(k) = base_price + per_image * k`` for a HIT displaying ``k``
    images (a point query shows one). This models marketplaces where
    bigger tasks must pay more to attract workers, and makes the choice of
    set-query size ``n`` a genuine cost trade-off: larger sets mean fewer
    HITs but each HIT is dearer — see :mod:`repro.core.cost_aware`.
    """

    base_price: float = 0.02
    per_image: float = 0.002
    service_fee_rate: float = 0.20

    def __post_init__(self) -> None:
        if self.base_price < 0 or self.per_image < 0:
            raise InvalidParameterError("prices must be >= 0")
        if self.service_fee_rate < 0:
            raise InvalidParameterError("service_fee_rate must be >= 0")

    def query_price(self, n_images: int) -> float:
        """Reward for one assignment of a HIT showing ``n_images``."""
        if n_images < 1:
            raise InvalidParameterError("a HIT shows at least one image")
        return self.base_price + self.per_image * n_images

    def point_price(self) -> float:
        return self.query_price(1)

    def hit_cost(self, n_assignments: int, n_images: int = 1) -> float:
        """Worker payments for one HIT showing ``n_images`` images to
        ``n_assignments`` workers — the :class:`PricingModel` form of
        :meth:`query_price`."""
        if n_assignments <= 0:
            raise InvalidParameterError("n_assignments must be positive")
        return self.query_price(n_images) * n_assignments

    def fee(self, worker_payment: float) -> float:
        return worker_payment * self.service_fee_rate


@dataclass
class CostLedger:
    """Running totals of HITs, assignments, and dollars.

    Works with any :class:`PricingModel`; the paper's fixed-price model
    is the default. Size-dependent models price each HIT by the
    ``n_images`` the platform reports when charging.
    """

    pricing: PricingModel = field(default_factory=FixedPricing)
    n_set_hits: int = 0
    n_point_hits: int = 0
    n_assignments: int = 0
    worker_payments: float = 0.0
    service_fees: float = 0.0

    @property
    def n_hits(self) -> int:
        return self.n_set_hits + self.n_point_hits

    @property
    def total_cost(self) -> float:
        return self.worker_payments + self.service_fees

    def charge(
        self, *, is_set_query: bool, n_assignments: int, n_images: int = 1
    ) -> float:
        """Record one published HIT; returns the worker payment charged.

        ``n_images`` is the HIT's display size (a point query shows
        one); size-dependent pricing models bill by it, fixed pricing
        ignores it.
        """
        if n_assignments <= 0:
            raise InvalidParameterError("n_assignments must be positive")
        if n_images < 1:
            raise InvalidParameterError("a HIT shows at least one image")
        if is_set_query:
            self.n_set_hits += 1
        else:
            self.n_point_hits += 1
        self.n_assignments += n_assignments
        payment = self.pricing.hit_cost(n_assignments, n_images)
        self.worker_payments += payment
        self.service_fees += self.pricing.fee(payment)
        return payment

    def summary(self) -> str:
        return (
            f"{self.n_hits} HITs ({self.n_set_hits} set, {self.n_point_hits} point), "
            f"{self.n_assignments} assignments, "
            f"${self.worker_payments:.2f} to workers + ${self.service_fees:.2f} fees"
        )
