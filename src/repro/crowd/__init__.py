"""Crowdsourcing simulator: queries, workers, QC, pricing, platform, oracles."""

from repro.crowd.aggregation import (
    DawidSkene,
    majority_point,
    majority_vote,
    tied_winners,
)
from repro.crowd.backends import (
    CrowdBackend,
    InlineBackend,
    LatencyModel,
    LatencyModelBackend,
    SimulatedClock,
    ThreadedBackend,
    Ticket,
)
from repro.crowd.oracle import (
    CrowdOracle,
    FlakyOracle,
    GroundTruthOracle,
    Oracle,
    TaskLedger,
)
from repro.crowd.platform import CrowdPlatform
from repro.crowd.pricing import (
    CostLedger,
    FixedPricing,
    PricingModel,
    SizeDependentPricing,
)
from repro.crowd.quality import (
    QC_MAJORITY_ONLY,
    QualificationTest,
    RatingPolicy,
    ScreeningPolicy,
    qc_with_qualification,
    qc_with_rating,
    screen_workers,
)
from repro.crowd.queries import HitRecord, PointQuery, SetQuery
from repro.crowd.reliability import (
    AdaptiveAssignmentPolicy,
    OnlineDawidSkene,
    ReliabilityReport,
    ReliabilitySnapshot,
    ReliabilityTracker,
)
from repro.crowd.workers import Worker, make_worker_pool

__all__ = [
    "majority_vote",
    "majority_point",
    "tied_winners",
    "DawidSkene",
    "OnlineDawidSkene",
    "ReliabilityTracker",
    "AdaptiveAssignmentPolicy",
    "ReliabilityReport",
    "ReliabilitySnapshot",
    "CrowdBackend",
    "Ticket",
    "InlineBackend",
    "LatencyModel",
    "LatencyModelBackend",
    "SimulatedClock",
    "ThreadedBackend",
    "Oracle",
    "TaskLedger",
    "GroundTruthOracle",
    "CrowdOracle",
    "FlakyOracle",
    "CrowdPlatform",
    "CostLedger",
    "FixedPricing",
    "PricingModel",
    "SizeDependentPricing",
    "QC_MAJORITY_ONLY",
    "QualificationTest",
    "RatingPolicy",
    "ScreeningPolicy",
    "qc_with_qualification",
    "qc_with_rating",
    "screen_workers",
    "PointQuery",
    "SetQuery",
    "HitRecord",
    "Worker",
    "make_worker_pool",
]
