"""Simulated crowd workers.

The paper's live experiment observed that real workers answer these tasks
almost perfectly (1.36 % of 660 answers incorrect) and that majority vote
absorbed every error. Our worker model reproduces that regime and lets
experiments push beyond it:

* a base ``set_error_rate`` / ``point_error_rate`` per worker,
* optional per-value *bias*: a worker may be systematically worse at
  labeling particular groups (e.g. mislabeling a minority), mirroring the
  human-bias concern §1 raises,
* AMT-style reputation attributes used by the Rating quality control
  (``percent_assignments_approved``, ``number_hits_approved``) and a latent
  ``competence`` used by the Qualification test.

Workers are deliberately *stateless* between answers: all randomness comes
from the generator passed in, so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.data.schema import Schema
from repro.errors import InvalidParameterError

__all__ = ["Worker", "make_worker_pool"]


@dataclass
class Worker:
    """One simulated crowd worker.

    Parameters
    ----------
    worker_id:
        Stable identifier within a pool.
    set_error_rate:
        Probability of answering a set query incorrectly (flipping yes/no).
    point_error_rate:
        Probability of mislabeling one attribute of one object. On error,
        the worker reports a uniformly random *wrong* value.
    value_error_rates:
        Optional overrides ``{(attribute, true_value): error_rate}`` —
        worker bias against specific groups.
    percent_assignments_approved / number_hits_approved:
        Reputation attributes screened by the Rating policy (Table 1).
    competence:
        Probability of answering one qualification-test question correctly.
        Defaults to ``1 - point_error_rate``.
    """

    worker_id: int
    set_error_rate: float = 0.0136
    point_error_rate: float = 0.0136
    value_error_rates: Mapping[tuple[str, str], float] = field(default_factory=dict)
    percent_assignments_approved: float = 99.0
    number_hits_approved: int = 1000
    competence: float | None = None

    def __post_init__(self) -> None:
        for rate_name in ("set_error_rate", "point_error_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise InvalidParameterError(f"{rate_name} must be in [0,1], got {rate}")
        if self.competence is None:
            self.competence = 1.0 - self.point_error_rate

    # ------------------------------------------------------------------
    # answering
    # ------------------------------------------------------------------
    def answer_set(self, truth: bool, rng: np.random.Generator) -> bool:
        """Answer a set query whose ground-truth answer is ``truth``."""
        if rng.random() < self.set_error_rate:
            return not truth
        return truth

    def answer_point(
        self, true_row: Mapping[str, str], schema: Schema, rng: np.random.Generator
    ) -> dict[str, str]:
        """Label one object; each attribute may independently be mislabeled."""
        answer: dict[str, str] = {}
        for attribute in schema:
            true_value = true_row[attribute.name]
            error_rate = self.value_error_rates.get(
                (attribute.name, true_value), self.point_error_rate
            )
            if rng.random() < error_rate and attribute.cardinality > 1:
                wrong_values = [v for v in attribute.values if v != true_value]
                answer[attribute.name] = wrong_values[rng.integers(len(wrong_values))]
            else:
                answer[attribute.name] = true_value
        return answer

    def take_qualification_test(
        self, n_questions: int, rng: np.random.Generator
    ) -> float:
        """Fraction of qualification-test questions answered correctly."""
        if n_questions <= 0:
            raise InvalidParameterError("n_questions must be positive")
        correct = int(rng.binomial(n_questions, float(self.competence)))
        return correct / n_questions


def make_worker_pool(
    n_workers: int,
    rng: np.random.Generator,
    *,
    error_rate: float = 0.0136,
    error_rate_spread: float = 0.0,
    spammer_fraction: float = 0.0,
    spammer_error_rate: float = 0.45,
    adversary_fraction: float = 0.0,
    adversary_error_rate: float = 0.9,
) -> list[Worker]:
    """Generate a heterogeneous worker pool.

    Parameters
    ----------
    error_rate:
        Mean error rate of regular workers (default: the paper's observed
        1.36 %).
    error_rate_spread:
        Half-width of the uniform jitter applied per worker.
    spammer_fraction:
        Fraction of low-quality workers ("spammers") with
        ``spammer_error_rate`` and poor reputation attributes — these are
        the workers the Rating and Qualification screens exist to remove.
    adversary_fraction:
        Fraction of polarity-flipped workers whose error rate *exceeds*
        one half (default 0.9): they answer against the truth more often
        than with it — the signature
        :class:`~repro.crowd.reliability.ReliabilityTracker` flags as
        ``adversary``. Reputation attributes are drawn like a spammer's
        (adversaries mimic low-effort accounts, not trusted ones).

    Returns
    -------
    list[Worker]
        ``n_workers`` workers with ids ``0..n_workers-1``.
    """
    if n_workers <= 0:
        raise InvalidParameterError("n_workers must be positive")
    if not 0.0 <= spammer_fraction <= 1.0:
        raise InvalidParameterError("spammer_fraction must be in [0,1]")
    if not 0.0 <= adversary_fraction <= 1.0:
        raise InvalidParameterError("adversary_fraction must be in [0,1]")
    if spammer_fraction + adversary_fraction > 1.0:
        raise InvalidParameterError(
            "spammer_fraction + adversary_fraction must not exceed 1"
        )

    n_adversaries = int(round(n_workers * adversary_fraction))
    n_spammers = n_adversaries + int(round(n_workers * spammer_fraction))
    workers: list[Worker] = []
    for worker_id in range(n_workers):
        if worker_id < n_adversaries:
            workers.append(
                Worker(
                    worker_id=worker_id,
                    set_error_rate=adversary_error_rate,
                    point_error_rate=adversary_error_rate,
                    percent_assignments_approved=float(rng.uniform(40.0, 94.0)),
                    number_hits_approved=int(rng.integers(0, 99)),
                )
            )
        elif worker_id < n_spammers:
            workers.append(
                Worker(
                    worker_id=worker_id,
                    set_error_rate=spammer_error_rate,
                    point_error_rate=spammer_error_rate,
                    percent_assignments_approved=float(rng.uniform(40.0, 94.0)),
                    number_hits_approved=int(rng.integers(0, 99)),
                )
            )
        else:
            jitter = rng.uniform(-error_rate_spread, error_rate_spread)
            rate = float(np.clip(error_rate + jitter, 0.0, 1.0))
            workers.append(
                Worker(
                    worker_id=worker_id,
                    set_error_rate=rate,
                    point_error_rate=rate,
                    percent_assignments_approved=float(rng.uniform(95.0, 100.0)),
                    number_hits_approved=int(rng.integers(100, 10000)),
                )
            )
    rng.shuffle(workers)  # so spammers are not clustered by id order
    for new_id, worker in enumerate(workers):
        worker.worker_id = new_id
    return workers
