"""Oracles: the only channel between algorithms and labels.

Every coverage algorithm in :mod:`repro.core` is written against the
:class:`Oracle` interface — *ask a set question, ask a point question,
pay a task* — and is therefore agnostic to where answers come from, exactly
as the paper requires ("the proposed techniques are agnostic to the choice
of the crowdsourcing framework, quality control, and HIT aggregation
model").

Three implementations:

* :class:`GroundTruthOracle` — noise-free answers straight from the hidden
  labels. This is the paper's §6.5 simulation setting and the correctness
  reference in tests.
* :class:`CrowdOracle` — routes every query through a
  :class:`~repro.crowd.platform.CrowdPlatform` (redundant noisy workers +
  aggregation). This is the Table 1 reproduction setting.
* :class:`FlakyOracle` — a lightweight noisy oracle that flips answers
  i.i.d. without simulating individual workers; useful for stress tests.

All oracles share a :class:`TaskLedger` that counts queries and enforces an
optional task budget.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.crowd.platform import CrowdPlatform
from repro.crowd.queries import PointQuery, SetQuery
from repro.data.dataset import LabeledDataset
from repro.data.groups import GroupPredicate
from repro.errors import BudgetExceededError, InvalidParameterError

__all__ = ["TaskLedger", "Oracle", "GroundTruthOracle", "CrowdOracle", "FlakyOracle"]


@dataclass
class TaskLedger:
    """Counts crowd tasks and enforces an optional budget.

    The paper's cost model is fixed-price, so *number of tasks* is the
    cost; algorithms snapshot the ledger before/after a run to report the
    tasks they consumed.

    ``n_rounds`` additionally counts *oracle round-trips*: one per
    single-query ask, and one per batch regardless of batch size. Tasks
    are the dollar cost; rounds are the latency cost a real platform pays
    per published batch of HITs.
    """

    n_set_queries: int = 0
    n_point_queries: int = 0
    budget: int | None = None
    n_rounds: int = 0

    @property
    def total(self) -> int:
        return self.n_set_queries + self.n_point_queries

    def note_round(self) -> None:
        """Record one oracle round-trip (rounds are free; tasks cost)."""
        self.n_rounds += 1

    def charge_set(self) -> None:
        self._check_budget()
        self.n_set_queries += 1

    def charge_point(self) -> None:
        self._check_budget()
        self.n_point_queries += 1

    def charge_set_batch(self, n: int) -> None:
        """Charge ``n`` set tasks atomically: either the whole batch fits
        in the remaining budget or nothing is charged — the ledger never
        bills queries whose answers were not produced."""
        self._check_batch_budget(n)
        self.n_set_queries += n

    def charge_point_batch(self, n: int) -> None:
        """Atomic batch variant of :meth:`charge_point`."""
        self._check_batch_budget(n)
        self.n_point_queries += n

    def _check_batch_budget(self, n: int) -> None:
        if self.budget is not None and self.total + n > self.budget:
            raise BudgetExceededError(
                f"task budget of {self.budget} cannot absorb a batch of {n} "
                f"({self.n_set_queries} set + {self.n_point_queries} point "
                f"queries already charged)"
            )

    def _check_budget(self) -> None:
        if self.budget is not None and self.total >= self.budget:
            raise BudgetExceededError(
                f"task budget of {self.budget} exhausted "
                f"({self.n_set_queries} set + {self.n_point_queries} point queries)"
            )


class Oracle(ABC):
    """Answer source for coverage algorithms.

    Subclasses implement :meth:`_answer_set` / :meth:`_answer_point`; the
    base class owns task accounting so implementations cannot forget to
    charge.
    """

    def __init__(self, schema, *, budget: int | None = None) -> None:
        self.schema = schema
        self.ledger = TaskLedger(budget=budget)

    # -- public API ------------------------------------------------------
    def ask_set(self, indices: Sequence[int] | np.ndarray, predicate: GroupPredicate) -> bool:
        """One set query: does ``indices`` contain >=1 object matching
        ``predicate``? Charges one set task and one round-trip."""
        self.ledger.charge_set()  # budget check first: a refused query is no round
        self.ledger.note_round()
        return self._answer_set(np.asarray(indices, dtype=np.int64), predicate)

    def ask_point(self, index: int) -> dict[str, str]:
        """One point query: the attribute values of object ``index``.
        Charges one point task and one round-trip."""
        self.ledger.charge_point()
        self.ledger.note_round()
        return self._answer_point(int(index))

    def ask_set_batch(
        self,
        queries: Sequence[tuple[Sequence[int] | np.ndarray, GroupPredicate]],
    ) -> list[bool]:
        """Answer many set queries in one oracle round-trip.

        Each query is still charged one set task (the fixed-price cost
        model is unchanged); the batch costs a single round-trip, which is
        what :mod:`repro.engine` minimises. Budget enforcement is atomic
        per batch: a batch the remaining budget cannot absorb raises
        ``BudgetExceededError`` before anything is charged or answered,
        so the ledger never pays for answers the caller did not receive.
        """
        if not queries:
            return []
        prepared = [
            (np.asarray(indices, dtype=np.int64), predicate)
            for indices, predicate in queries
        ]
        self.ledger.charge_set_batch(len(prepared))
        self.ledger.note_round()
        return [bool(answer) for answer in self._answer_set_batch(prepared)]

    def ask_point_batch(self, indices: Sequence[int]) -> list[dict[str, str]]:
        """Answer many point queries in one oracle round-trip.

        Per-query task charging with atomic budget enforcement, single
        round-trip — the point-query analogue of :meth:`ask_set_batch`
        (used to batch the sampling phase of Multiple-Coverage).
        """
        if not indices:
            return []
        prepared = [int(index) for index in indices]
        self.ledger.charge_point_batch(len(prepared))
        self.ledger.note_round()
        return self._answer_point_batch(prepared)

    def ask_point_membership(self, index: int, predicate: GroupPredicate) -> bool:
        """Point query phrased as membership ("is this image a female?").

        Same cost as :meth:`ask_point`; the answer is derived from the
        labels the worker provides.
        """
        return predicate.matches_row(self.ask_point(index))

    # -- implementation hooks --------------------------------------------
    @abstractmethod
    def _answer_set(self, indices: np.ndarray, predicate: GroupPredicate) -> bool: ...

    @abstractmethod
    def _answer_point(self, index: int) -> dict[str, str]: ...

    def _answer_set_batch(
        self, queries: Sequence[tuple[np.ndarray, GroupPredicate]]
    ) -> list[bool]:
        """Default batch path: answer one by one. Subclasses with a
        vectorizable backend override this."""
        return [self._answer_set(indices, predicate) for indices, predicate in queries]

    def _answer_point_batch(self, indices: Sequence[int]) -> list[dict[str, str]]:
        return [self._answer_point(index) for index in indices]


class GroundTruthOracle(Oracle):
    """Noise-free oracle answering from the dataset's hidden labels."""

    def __init__(self, dataset: LabeledDataset, *, budget: int | None = None) -> None:
        super().__init__(dataset.schema, budget=budget)
        self.dataset = dataset

    def _answer_set(self, indices: np.ndarray, predicate: GroupPredicate) -> bool:
        return bool(self.dataset.mask(predicate)[indices].any())

    def _answer_set_batch(
        self, queries: Sequence[tuple[np.ndarray, GroupPredicate]]
    ) -> list[bool]:
        # Vectorized fast path: one mask fetch per distinct predicate,
        # then a single gather + segmented any() over the concatenated
        # index arrays of that predicate's queries.
        answers = [False] * len(queries)
        by_predicate: dict[GroupPredicate, list[int]] = {}
        for position, (_, predicate) in enumerate(queries):
            by_predicate.setdefault(predicate, []).append(position)
        for predicate, positions in by_predicate.items():
            mask = self.dataset.mask(predicate)
            arrays = [queries[position][0] for position in positions]
            lengths = np.array([len(a) for a in arrays])
            nonempty = lengths > 0
            if not nonempty.any():
                continue
            hits = mask[np.concatenate([a for a in arrays if len(a)])]
            bounds = np.zeros(int(nonempty.sum()), dtype=np.int64)
            np.cumsum(lengths[nonempty][:-1], out=bounds[1:])
            segment_any = np.logical_or.reduceat(hits, bounds)
            for position, answer in zip(
                (p for p, keep in zip(positions, nonempty) if keep), segment_any
            ):
                answers[position] = bool(answer)
        return answers

    def _answer_point(self, index: int) -> dict[str, str]:
        return self.dataset.value_row(index)


class CrowdOracle(Oracle):
    """Oracle backed by the full platform simulator (noisy workers,
    redundancy, aggregation, dollars)."""

    def __init__(self, platform: CrowdPlatform, *, budget: int | None = None) -> None:
        super().__init__(platform.dataset.schema, budget=budget)
        self.platform = platform

    def _answer_set(self, indices: np.ndarray, predicate: GroupPredicate) -> bool:
        return self.platform.publish_set_query(SetQuery(indices, predicate))

    def _answer_point(self, index: int) -> dict[str, str]:
        return self.platform.publish_point_query(PointQuery(index))


class FlakyOracle(Oracle):
    """Ground truth with i.i.d. answer flips — a cheap noise model.

    Set answers flip with probability ``set_error_rate``; point labels are
    replaced attribute-wise with a uniformly wrong value with probability
    ``point_error_rate``. No redundancy and no aggregation: this models a
    *single* unreliable worker and is primarily for robustness testing.
    """

    def __init__(
        self,
        dataset: LabeledDataset,
        rng: np.random.Generator,
        *,
        set_error_rate: float = 0.0,
        point_error_rate: float = 0.0,
        budget: int | None = None,
    ) -> None:
        if not 0.0 <= set_error_rate <= 1.0 or not 0.0 <= point_error_rate <= 1.0:
            raise InvalidParameterError("error rates must be in [0, 1]")
        super().__init__(dataset.schema, budget=budget)
        self.dataset = dataset
        self.rng = rng
        self.set_error_rate = set_error_rate
        self.point_error_rate = point_error_rate

    def _answer_set(self, indices: np.ndarray, predicate: GroupPredicate) -> bool:
        truth = bool(self.dataset.mask(predicate)[indices].any())
        if self.rng.random() < self.set_error_rate:
            return not truth
        return truth

    def _answer_set_batch(
        self, queries: Sequence[tuple[np.ndarray, GroupPredicate]]
    ) -> list[bool]:
        truths = [
            bool(self.dataset.mask(predicate)[indices].any())
            for indices, predicate in queries
        ]
        flips = self.rng.random(len(queries)) < self.set_error_rate
        return [truth != bool(flip) for truth, flip in zip(truths, flips)]

    def _answer_point(self, index: int) -> dict[str, str]:
        truth = self.dataset.value_row(index)
        answer: dict[str, str] = {}
        for attribute in self.schema:
            true_value = truth[attribute.name]
            if self.rng.random() < self.point_error_rate:
                wrong = [v for v in attribute.values if v != true_value]
                answer[attribute.name] = wrong[self.rng.integers(len(wrong))]
            else:
                answer[attribute.name] = true_value
        return answer
