"""Oracles: the only channel between algorithms and labels.

Every coverage algorithm in :mod:`repro.core` is written against the
:class:`Oracle` interface — *ask a set question, ask a point question,
pay a task* — and is therefore agnostic to where answers come from, exactly
as the paper requires ("the proposed techniques are agnostic to the choice
of the crowdsourcing framework, quality control, and HIT aggregation
model").

Three implementations:

* :class:`GroundTruthOracle` — noise-free answers straight from the hidden
  labels. This is the paper's §6.5 simulation setting and the correctness
  reference in tests.
* :class:`CrowdOracle` — routes every query through a
  :class:`~repro.crowd.platform.CrowdPlatform` (redundant noisy workers +
  aggregation). This is the Table 1 reproduction setting.
* :class:`FlakyOracle` — a lightweight noisy oracle that flips answers
  i.i.d. without simulating individual workers; useful for stress tests.

All oracles share a :class:`TaskLedger` that counts queries and enforces an
optional task budget.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.crowd.platform import CrowdPlatform
from repro.crowd.queries import PointQuery, SetQuery
from repro.data.dataset import LabeledDataset
from repro.data.groups import GroupPredicate
from repro.data.membership import GroupMembershipIndex, membership_index_for
from repro.data.sharded import ShardedDataset
from repro.errors import BudgetExceededError, InvalidParameterError

__all__ = ["TaskLedger", "Oracle", "GroundTruthOracle", "CrowdOracle", "FlakyOracle"]


@dataclass
class TaskLedger:
    """Counts crowd tasks and enforces an optional budget.

    The paper's cost model is fixed-price, so *number of tasks* is the
    cost; algorithms snapshot the ledger before/after a run to report the
    tasks they consumed.

    ``n_rounds`` additionally counts *oracle round-trips*: one per
    single-query ask, and one per batch regardless of batch size. Tasks
    are the dollar cost; rounds are the latency cost a real platform pays
    per published batch of HITs.
    """

    n_set_queries: int = 0
    n_point_queries: int = 0
    budget: int | None = None
    n_rounds: int = 0

    @property
    def total(self) -> int:
        return self.n_set_queries + self.n_point_queries

    def note_round(self) -> None:
        """Record one oracle round-trip (rounds are free; tasks cost)."""
        self.n_rounds += 1

    def charge_set(self) -> None:
        self._check_budget()
        self.n_set_queries += 1

    def charge_point(self) -> None:
        self._check_budget()
        self.n_point_queries += 1

    def charge_set_batch(self, n: int) -> None:
        """Charge ``n`` set tasks atomically: either the whole batch fits
        in the remaining budget or nothing is charged — the ledger never
        bills queries whose answers were not produced."""
        self._check_batch_budget(n)
        self.n_set_queries += n

    def charge_point_batch(self, n: int) -> None:
        """Atomic batch variant of :meth:`charge_point`."""
        self._check_batch_budget(n)
        self.n_point_queries += n

    def _check_batch_budget(self, n: int) -> None:
        if self.budget is not None and self.total + n > self.budget:
            raise BudgetExceededError(
                f"task budget of {self.budget} cannot absorb a batch of {n} "
                f"({self.n_set_queries} set + {self.n_point_queries} point "
                f"queries already charged)"
            )

    def _check_budget(self) -> None:
        if self.budget is not None and self.total >= self.budget:
            raise BudgetExceededError(
                f"task budget of {self.budget} exhausted "
                f"({self.n_set_queries} set + {self.n_point_queries} point queries)"
            )


class Oracle(ABC):
    """Answer source for coverage algorithms.

    Subclasses implement :meth:`_answer_set` / :meth:`_answer_point`; the
    base class owns task accounting so implementations cannot forget to
    charge.
    """

    def __init__(self, schema, *, budget: int | None = None) -> None:
        if budget is not None and budget <= 0:
            raise InvalidParameterError(
                f"task budget must be positive, got {budget}; an oracle "
                "with no budget ceiling is budget=None"
            )
        self.schema = schema
        self.ledger = TaskLedger(budget=budget)

    # -- public API ------------------------------------------------------
    def ask_set(
        self,
        indices: Sequence[int] | np.ndarray,
        predicate: GroupPredicate,
        *,
        key=None,
    ) -> bool:
        """One set query: does ``indices`` contain >=1 object matching
        ``predicate``? Charges one set task and one round-trip.

        ``key`` is an optional precomputed
        :data:`~repro.engine.requests.QueryKey` for the same query — a
        pure performance hint that lets vectorized backends skip
        re-detecting the index array's shape. Answers are identical with
        or without it.
        """
        self.ledger.charge_set()  # budget check first: a refused query is no round
        self.ledger.note_round()
        return self._answer_set_keyed(
            np.asarray(indices, dtype=np.int64),
            predicate,
            key[1] if key is not None else None,
        )

    def ask_point(self, index: int) -> dict[str, str]:
        """One point query: the attribute values of object ``index``.
        Charges one point task and one round-trip."""
        self.ledger.charge_point()
        self.ledger.note_round()
        return self._answer_point(int(index))

    def ask_set_batch(
        self,
        queries: Sequence[tuple[Sequence[int] | np.ndarray, GroupPredicate]],
        *,
        keys: Sequence | None = None,
    ) -> list[bool]:
        """Answer many set queries in one oracle round-trip.

        Each query is still charged one set task (the fixed-price cost
        model is unchanged); the batch costs a single round-trip, which is
        what :mod:`repro.engine` minimises. Budget enforcement is atomic
        per batch: a batch the remaining budget cannot absorb raises
        ``BudgetExceededError`` before anything is charged or answered,
        so the ledger never pays for answers the caller did not receive.
        ``keys`` — a parallel sequence of precomputed
        :data:`~repro.engine.requests.QueryKey` — is the batched form of
        :meth:`ask_set`'s performance hint.
        """
        if not queries:
            return []
        prepared = [
            (np.asarray(indices, dtype=np.int64), predicate)
            for indices, predicate in queries
        ]
        self.ledger.charge_set_batch(len(prepared))
        self.ledger.note_round()
        return [
            bool(answer)
            for answer in self._answer_set_batch_keyed(
                prepared, None if keys is None else [key[1] for key in keys]
            )
        ]

    def ask_point_batch(self, indices: Sequence[int]) -> list[dict[str, str]]:
        """Answer many point queries in one oracle round-trip.

        Per-query task charging with atomic budget enforcement, single
        round-trip — the point-query analogue of :meth:`ask_set_batch`
        (used to batch the sampling phase of Multiple-Coverage).
        """
        if not indices:
            return []
        prepared = [int(index) for index in indices]
        self.ledger.charge_point_batch(len(prepared))
        self.ledger.note_round()
        return self._answer_point_batch(prepared)

    def ask_point_membership(self, index: int, predicate: GroupPredicate) -> bool:
        """Point query phrased as membership ("is this image a female?").

        Same cost as :meth:`ask_point`; the answer is derived from the
        labels the worker provides.
        """
        return predicate.matches_row(self.ask_point(index))

    # -- implementation hooks --------------------------------------------
    @abstractmethod
    def _answer_set(self, indices: np.ndarray, predicate: GroupPredicate) -> bool: ...

    @abstractmethod
    def _answer_point(self, index: int) -> dict[str, str]: ...

    def _answer_set_keyed(
        self, indices: np.ndarray, predicate: GroupPredicate, index_key
    ) -> bool:
        """Key-hinted answering hook. The default drops the hint and
        calls :meth:`_answer_set`, so subclasses that know nothing about
        index keys (crowd platforms, decorators, test doubles) keep
        their two-argument hook; vectorized backends override this."""
        return self._answer_set(indices, predicate)

    def _answer_set_batch(
        self, queries: Sequence[tuple[np.ndarray, GroupPredicate]]
    ) -> list[bool]:
        """Default batch path: answer one by one. Subclasses with a
        vectorizable backend override this."""
        return [self._answer_set(indices, predicate) for indices, predicate in queries]

    def _answer_set_batch_keyed(
        self, queries: Sequence[tuple[np.ndarray, GroupPredicate]], index_keys
    ) -> list[bool]:
        """Batched form of :meth:`_answer_set_keyed`; same default."""
        return self._answer_set_batch(queries)

    def _answer_point_batch(self, indices: Sequence[int]) -> list[dict[str, str]]:
        return [self._answer_point(index) for index in indices]


class GroundTruthOracle(Oracle):
    """Noise-free oracle answering from the dataset's hidden labels.

    All answering is vectorized through a
    :class:`~repro.data.membership.GroupMembershipIndex`: contiguous-run
    set queries resolve in O(1) from prefix-count tables, scattered ones
    through one gather per batch, and point-query batches through one
    fancy-index per attribute. Pass ``index=`` to share a prebuilt
    index; by default the dataset's process-wide shared index is used,
    so many oracles over one dataset never recompute a membership
    column. ``dataset`` may also be a sharded out-of-core
    :class:`~repro.data.sharded.ShardedDataset`, in which case answers
    flow through its :class:`~repro.data.sharded.ShardedMembershipIndex`
    — bit-identical, without the dataset ever fully materializing.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.crowd.oracle import GroundTruthOracle
    >>> from repro.data.groups import group
    >>> from repro.data.synthetic import binary_dataset
    >>> oracle = GroundTruthOracle(
    ...     binary_dataset(1_000, 30, rng=np.random.default_rng(0)))
    >>> oracle.ask_set(np.arange(0, 1_000), group(gender="female"))
    True
    >>> oracle.ledger.total
    1
    """

    def __init__(
        self,
        dataset: "LabeledDataset | ShardedDataset",
        *,
        budget: int | None = None,
        index: GroupMembershipIndex | None = None,
    ) -> None:
        super().__init__(dataset.schema, budget=budget)
        self.dataset = dataset
        if index is not None and index.dataset is not dataset:
            raise InvalidParameterError(
                "membership index was built over a different dataset"
            )
        self.membership_index = (
            index if index is not None else membership_index_for(dataset)
        )
        # Subclasses (tracing/recording test doubles, decorators) that
        # override the classic two-argument hooks must keep seeing every
        # query; the keyed fast path short-circuits them only when the
        # hooks are still this class's own.
        self._native_set_hook = type(self)._answer_set is GroundTruthOracle._answer_set
        self._native_set_batch_hook = (
            type(self)._answer_set_batch is GroundTruthOracle._answer_set_batch
        )
        self._native_point_hook = (
            type(self)._answer_point is GroundTruthOracle._answer_point
        )

    def _answer_set(self, indices: np.ndarray, predicate: GroupPredicate) -> bool:
        return self.membership_index.any_match(predicate, indices)

    def _answer_set_keyed(
        self, indices: np.ndarray, predicate: GroupPredicate, index_key
    ) -> bool:
        if not self._native_set_hook:
            return self._answer_set(indices, predicate)
        return self.membership_index.any_match(predicate, indices, key=index_key)

    def _answer_set_batch(
        self, queries: Sequence[tuple[np.ndarray, GroupPredicate]]
    ) -> list[bool]:
        if not self._native_set_hook:
            # Only the per-query hook was customized: batches must still
            # flow through it, one query at a time.
            return [self._answer_set(i, p) for i, p in queries]
        return self.membership_index.any_match_batch(queries)

    def _answer_set_batch_keyed(
        self, queries: Sequence[tuple[np.ndarray, GroupPredicate]], index_keys
    ) -> list[bool]:
        if not (self._native_set_batch_hook and self._native_set_hook):
            return self._answer_set_batch(queries)
        return self.membership_index.any_match_batch(queries, keys=index_keys)

    def _answer_point(self, index: int) -> dict[str, str]:
        return self.dataset.value_row(index)

    def _answer_point_batch(self, indices: Sequence[int]) -> list[dict[str, str]]:
        if not self._native_point_hook:
            # A subclass customized per-point answering; every batched
            # point query must keep flowing through its hook.
            return [self._answer_point(index) for index in indices]
        return self.membership_index.value_rows(indices)


class CrowdOracle(Oracle):
    """Oracle backed by the full platform simulator (noisy workers,
    redundancy, aggregation, dollars)."""

    def __init__(self, platform: CrowdPlatform, *, budget: int | None = None) -> None:
        super().__init__(platform.dataset.schema, budget=budget)
        self.platform = platform
        #: the platform's hidden-truth index — exposed so sessions and
        #: diagnostics reach one shared index whatever the oracle kind.
        self.membership_index = platform.membership_index

    def _answer_set(self, indices: np.ndarray, predicate: GroupPredicate) -> bool:
        return self.platform.publish_set_query(SetQuery(indices, predicate))

    def _answer_point(self, index: int) -> dict[str, str]:
        return self.platform.publish_point_query(PointQuery(index))

    def drain_set_votes(self) -> list[tuple[tuple[int, bool], ...]]:
        """Return-and-clear the platform's buffered per-HIT
        ``(worker_id, answer)`` set votes — how backends surface worker
        identities alongside answers (``record_votes=True``)."""
        return self.platform.drain_set_votes()


class FlakyOracle(Oracle):
    """Ground truth with i.i.d. answer flips — a cheap noise model.

    Set answers flip with probability ``set_error_rate``; point labels are
    replaced attribute-wise with a uniformly wrong value with probability
    ``point_error_rate``. No redundancy and no aggregation: this models a
    *single* unreliable worker and is primarily for robustness testing.
    """

    def __init__(
        self,
        dataset: "LabeledDataset | ShardedDataset",
        rng: np.random.Generator,
        *,
        set_error_rate: float = 0.0,
        point_error_rate: float = 0.0,
        budget: int | None = None,
    ) -> None:
        if not 0.0 <= set_error_rate <= 1.0 or not 0.0 <= point_error_rate <= 1.0:
            raise InvalidParameterError("error rates must be in [0, 1]")
        super().__init__(dataset.schema, budget=budget)
        self.dataset = dataset
        self.membership_index = membership_index_for(dataset)
        self.rng = rng
        self.set_error_rate = set_error_rate
        self.point_error_rate = point_error_rate
        self._native_set_hook = type(self)._answer_set is FlakyOracle._answer_set
        self._native_set_batch_hook = (
            type(self)._answer_set_batch is FlakyOracle._answer_set_batch
        )
        self._native_point_hook = (
            type(self)._answer_point is FlakyOracle._answer_point
        )

    def _answer_set(self, indices: np.ndarray, predicate: GroupPredicate) -> bool:
        truth = self.membership_index.any_match(predicate, indices)
        if self.rng.random() < self.set_error_rate:
            return not truth
        return truth

    def _answer_set_keyed(
        self, indices: np.ndarray, predicate: GroupPredicate, index_key
    ) -> bool:
        if not self._native_set_hook:
            return self._answer_set(indices, predicate)
        truth = self.membership_index.any_match(predicate, indices, key=index_key)
        if self.rng.random() < self.set_error_rate:
            return not truth
        return truth

    def _answer_set_batch(
        self, queries: Sequence[tuple[np.ndarray, GroupPredicate]]
    ) -> list[bool]:
        if not self._native_set_hook:
            # One scalar flip draw per query — the same stream the
            # vectorized draw below consumes, so the fallback stays
            # bit-identical too.
            return [self._answer_set(i, p) for i, p in queries]
        # Truths come from the vectorized index; the flip draws stay one
        # vector of length len(queries), which consumes the generator's
        # stream exactly like len(queries) scalar draws — sequential and
        # batched execution remain bit-identical under one seed.
        truths = self.membership_index.any_match_batch(queries)
        flips = self.rng.random(len(queries)) < self.set_error_rate
        return [truth != bool(flip) for truth, flip in zip(truths, flips)]

    def _answer_set_batch_keyed(
        self, queries: Sequence[tuple[np.ndarray, GroupPredicate]], index_keys
    ) -> list[bool]:
        if not (self._native_set_batch_hook and self._native_set_hook):
            return self._answer_set_batch(queries)
        truths = self.membership_index.any_match_batch(queries, keys=index_keys)
        flips = self.rng.random(len(queries)) < self.set_error_rate
        return [truth != bool(flip) for truth, flip in zip(truths, flips)]

    def _answer_point(self, index: int) -> dict[str, str]:
        return self._flip_point(self.dataset.value_row(index))

    def _answer_point_batch(self, indices: Sequence[int]) -> list[dict[str, str]]:
        if not self._native_point_hook:
            return [self._answer_point(index) for index in indices]
        # Truth rows are fetched in one vectorized gather; the flips stay
        # a per-row loop because each flip conditionally consumes rng
        # draws — vectorizing them would shift the stream and break
        # bit-identity with sequential execution.
        truths = self.membership_index.value_rows(indices)
        return [self._flip_point(truth) for truth in truths]

    def _flip_point(self, truth: Mapping[str, str]) -> dict[str, str]:
        answer: dict[str, str] = {}
        for attribute in self.schema:
            true_value = truth[attribute.name]
            if self.rng.random() < self.point_error_rate:
                wrong = [v for v in attribute.values if v != true_value]
                answer[attribute.name] = wrong[self.rng.integers(len(wrong))]
            else:
                answer[attribute.name] = true_value
        return answer
