"""Pluggable crowd backends: asynchronous submit/poll/gather dispatch.

See :mod:`repro.crowd.backends.base` for the protocol and the layering
rationale; ``docs/architecture.md`` for how the
:class:`~repro.engine.QueryEngine` and :class:`~repro.service.AuditService`
sit on top.
"""

from repro.crowd.backends.base import CrowdBackend, Ticket
from repro.crowd.backends.inline import InlineBackend
from repro.crowd.backends.latency import (
    LatencyModel,
    LatencyModelBackend,
    SimulatedClock,
)
from repro.crowd.backends.threaded import ThreadedBackend

__all__ = [
    "CrowdBackend",
    "Ticket",
    "InlineBackend",
    "LatencyModel",
    "LatencyModelBackend",
    "SimulatedClock",
    "ThreadedBackend",
]
