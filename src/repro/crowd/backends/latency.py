"""A backend that charges round-trips a *clock* cost, not just dollars.

Real crowd platforms answer a published batch of HITs seconds to
minutes later: each assignment sits in a worker's queue, each worker
labels at their own pace, and the batch is done when its slowest worker
finishes. :class:`LatencyModelBackend` reproduces that shape without
real waiting — answers are computed at submission (through the oracle,
so dollar charging is unchanged) but *withheld* until a simulated
completion time on a virtual clock.

The latency of a batch comes from a per-worker model
(:class:`LatencyModel`): the batch's HITs are dealt round-robin to a
simulated worker pool, each worker's service times are log-normal draws
scaled by a per-worker speed factor, a worker finishes their share
sequentially, and the batch completes when the last worker does (plus a
fixed publication overhead). Two audits that overlap their outstanding
batches therefore finish in roughly the time of one — the wall-clock
win :mod:`repro.service` exists to harvest, measured for real in
``benchmarks/bench_service.py``.

The clock only moves when someone *waits*: ``gather`` on an unready
ticket advances it to that ticket's completion time, ``next_done``
advances it to the earliest completion among outstanding tickets.
``clock.now()`` after a drain is the simulated makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.crowd.backends.base import CrowdBackend, Ticket
from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro.engine.requests import SetRequest

__all__ = ["SimulatedClock", "LatencyModel", "LatencyModelBackend"]


class SimulatedClock:
    """A virtual clock that moves only when a caller waits on it.

    Examples
    --------
    >>> clock = SimulatedClock()
    >>> clock.advance_to(12.5)
    >>> clock.advance_to(3.0)    # never backward
    >>> clock.now()
    12.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in virtual seconds."""
        return self._now

    def advance_to(self, instant: float) -> None:
        """Jump forward to ``instant`` (never backward)."""
        if instant > self._now:
            self._now = float(instant)


@dataclass(frozen=True)
class LatencyModel:
    """Per-worker latency distributions for one simulated worker pool.

    Attributes
    ----------
    n_workers:
        Pool size a published batch is dealt across (round-robin). A
        batch wider than the pool queues several HITs on each worker,
        who serves them sequentially — exactly why oversized batches
        stop helping latency at some point.
    median_seconds:
        Median per-HIT service time of an average worker.
    sigma:
        Log-normal shape of per-HIT service times (0 = deterministic).
    worker_sigma:
        Log-normal spread of per-*worker* speed factors, drawn once per
        backend: some workers are consistently fast, some consistently
        slow.
    publish_overhead_seconds:
        Fixed cost per published batch (platform acceptance, worker
        discovery) paid before any HIT starts.

    Examples
    --------
    >>> import numpy as np
    >>> model = LatencyModel(n_workers=4, median_seconds=30.0, sigma=0.0,
    ...                      worker_sigma=0.0, publish_overhead_seconds=5.0)
    >>> rng = np.random.default_rng(0)
    >>> # 8 deterministic HITs over 4 workers: 2 sequential HITs each.
    >>> model.batch_seconds(8, model.draw_speed_factors(rng), rng)
    65.0
    """

    n_workers: int = 8
    median_seconds: float = 30.0
    sigma: float = 0.25
    worker_sigma: float = 0.2
    publish_overhead_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise InvalidParameterError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.median_seconds <= 0 or self.publish_overhead_seconds < 0:
            raise InvalidParameterError(
                "median_seconds must be > 0 and publish_overhead_seconds >= 0"
            )
        if self.sigma < 0 or self.worker_sigma < 0:
            raise InvalidParameterError("sigma parameters must be >= 0")

    def draw_speed_factors(self, rng: np.random.Generator) -> np.ndarray:
        """One speed multiplier per worker (applied to every HIT they take)."""
        return np.exp(rng.normal(0.0, self.worker_sigma, size=self.n_workers))

    def batch_seconds(
        self, n_queries: int, speed_factors: np.ndarray, rng: np.random.Generator
    ) -> float:
        """Simulated completion time of one batch of ``n_queries`` HITs."""
        times = self.median_seconds * np.exp(
            rng.normal(0.0, self.sigma, size=n_queries)
        )
        workers = np.arange(n_queries) % len(speed_factors)
        per_worker = np.zeros(len(speed_factors))
        np.add.at(per_worker, workers, times)
        per_worker *= speed_factors
        return self.publish_overhead_seconds + float(per_worker.max(initial=0.0))


class LatencyModelBackend(CrowdBackend):
    """Simulated-latency crowd dispatch on a virtual clock.

    Parameters
    ----------
    oracle:
        Where answers (and charges) come from, as everywhere.
    model:
        The :class:`LatencyModel`; defaults model a small MTurk-like
        pool with ~30 s median HITs.
    rng:
        Randomness for worker speeds and per-HIT times. Latency draws
        never touch the oracle's answer randomness, so verdicts with a
        seeded noisy oracle are unaffected by the latency model.
    clock:
        A :class:`SimulatedClock`; a fresh one when omitted. Pass a
        shared clock to let several backends tell one story of time.
    attribute_workers:
        When ``True`` and the oracle itself exposes no worker votes,
        synthesize per-query attributions from the latency model's
        round-robin deal (query ``i`` answered by simulated worker
        ``i % n_workers``), so reliability estimators can run over
        oracles without a platform identity (e.g. ground truth or flaky
        oracles). Real platform votes, when available, always win.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.crowd.oracle import GroundTruthOracle
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.groups import group
    >>> from repro.engine.requests import SetRequest
    >>> ds = binary_dataset(100, 10, rng=np.random.default_rng(0))
    >>> backend = LatencyModelBackend(GroundTruthOracle(ds))
    >>> ticket = backend.submit([SetRequest(np.arange(100), group(gender="female"))])
    >>> backend.poll()                      # not ready: no virtual time passed
    []
    >>> backend.gather(ticket)              # waiting advances the clock
    [True]
    >>> backend.clock.now() > 0.0
    True
    """

    def __init__(
        self,
        oracle,
        *,
        model: LatencyModel | None = None,
        rng: np.random.Generator | None = None,
        clock: SimulatedClock | None = None,
        attribute_workers: bool = False,
    ) -> None:
        super().__init__(oracle)
        self.attribute_workers = attribute_workers
        self.model = model if model is not None else LatencyModel()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.clock = clock if clock is not None else SimulatedClock()
        self._speed_factors = self.model.draw_speed_factors(self.rng)
        self._answers: dict[int, list[bool]] = {}
        self._ready_at: dict[int, float] = {}

    def _now(self) -> float:
        return self.clock.now()

    def _submit(self, ticket: Ticket, requests: "Sequence[SetRequest]") -> None:
        # Dollars at submission (the HITs are published and will be
        # worked whatever happens next); availability later.
        answers = self._dispatch(requests, ticket=ticket)
        self._answers[ticket.ticket_id] = answers
        if self.attribute_workers and ticket.ticket_id not in self._votes:
            # No platform identity behind the oracle: attribute each
            # query to the simulated worker the round-robin deal gave it.
            self._votes[ticket.ticket_id] = [
                ((int(i % self.model.n_workers), bool(answer)),)
                for i, answer in enumerate(answers)
            ]
        self._ready_at[ticket.ticket_id] = self.clock.now() + self.model.batch_seconds(
            len(requests), self._speed_factors, self.rng
        )

    def _ready(self, ticket: Ticket) -> bool:
        return self.clock.now() >= self._ready_at[ticket.ticket_id]

    def _gather(self, ticket: Ticket) -> Sequence[bool]:
        # Blocking wait: simulated time passes until the batch is done.
        self.clock.advance_to(self._ready_at.pop(ticket.ticket_id))
        return self._answers.pop(ticket.ticket_id)

    def _next_done(self) -> Ticket:
        soonest = min(
            self._open.values(),
            key=lambda t: (self._ready_at[t.ticket_id], t.ticket_id),
        )
        self.clock.advance_to(self._ready_at[soonest.ticket_id])
        return soonest
