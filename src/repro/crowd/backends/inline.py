"""The zero-latency backend: answers are ready at submission.

:class:`InlineBackend` is the compatibility backend — it publishes a
batch by calling ``oracle.ask_set_batch`` synchronously and holds the
answers until they are gathered. A drain loop over it performs exactly
the call sequence the blocking engine used to make (one
``ask_set_batch`` per chunk, in chunk order), so verdicts, task counts,
and engine statistics are bit-identical to the pre-backend design. It is
the default backend of :class:`~repro.engine.QueryEngine`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.crowd.backends.base import CrowdBackend, Ticket

if TYPE_CHECKING:
    from repro.engine.requests import SetRequest

__all__ = ["InlineBackend"]


class InlineBackend(CrowdBackend):
    """Synchronous dispatch behind the asynchronous protocol.

    ``submit`` answers the batch immediately through the oracle (ledger
    charging and budget enforcement happen right there, as in the
    blocking API); ``poll`` reports every outstanding ticket ready;
    ``gather`` never blocks.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.crowd.backends import InlineBackend
    >>> from repro.crowd.oracle import GroundTruthOracle
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.groups import group
    >>> from repro.engine.requests import SetRequest
    >>> ds = binary_dataset(100, 10, rng=np.random.default_rng(0))
    >>> backend = InlineBackend(GroundTruthOracle(ds))
    >>> ticket = backend.submit([SetRequest(np.arange(50), group(gender="female")),
    ...                          SetRequest(np.arange(0), group(gender="female"))])
    >>> backend.gather(ticket)                    # ready immediately
    [True, False]
    >>> backend.oracle.ledger.n_rounds            # one round-trip per batch
    1
    """

    def __init__(self, oracle) -> None:
        super().__init__(oracle)
        self._answers: dict[int, list[bool]] = {}

    def _submit(self, ticket: Ticket, requests: "Sequence[SetRequest]") -> None:
        self._answers[ticket.ticket_id] = self._dispatch(requests, ticket=ticket)

    def _ready(self, ticket: Ticket) -> bool:
        return True

    def _gather(self, ticket: Ticket) -> Sequence[bool]:
        return self._answers.pop(ticket.ticket_id)

    def _next_done(self) -> Ticket:
        return next(iter(self._open.values()))
