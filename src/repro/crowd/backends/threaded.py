"""Real concurrency: batches dispatched on a thread pool.

:class:`ThreadedBackend` is the shape an *external* platform adapter
plugs into — the thing that actually publishes HITs to MTurk, Toloka, or
an internal labeling service over HTTP. ``submit`` hands the batch to a
worker thread and returns immediately; ``gather``/``next_done`` block on
the corresponding future.

By default the batch is answered by the oracle under a lock (the
:class:`~repro.crowd.oracle.TaskLedger` is not thread-safe, and atomic
batch budget enforcement must stay atomic). A real adapter replaces that
with its own I/O by passing ``adapter=``: a callable taking the
sequence of :class:`~repro.engine.requests.SetRequest` and returning one
bool per request. Adapters do their own charging/pricing — the ledger
only sees batches the default dispatch path answers.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import TYPE_CHECKING, Callable, Sequence

from repro.crowd.backends.base import CrowdBackend, Ticket
from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro.engine.requests import SetRequest

__all__ = ["ThreadedBackend"]


class ThreadedBackend(CrowdBackend):
    """Thread-pool dispatch behind the submit/poll/gather protocol.

    Parameters
    ----------
    oracle:
        The answer source for the default (locked) dispatch path.
    max_workers:
        Concurrent in-flight batches (pool threads).
    adapter:
        Optional external dispatch: ``adapter(requests) -> Sequence[bool]``,
        run on a pool thread per batch. Exceptions it raises surface at
        :meth:`gather` of the affected ticket.

    Notes
    -----
    Errors raised by dispatch (including
    :class:`~repro.errors.BudgetExceededError` from the oracle's ledger)
    are captured in the future and re-raised when the ticket is
    gathered — asynchronous publication means refusal is asynchronous
    too.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.crowd.oracle import GroundTruthOracle
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.groups import group
    >>> from repro.engine.requests import SetRequest
    >>> ds = binary_dataset(100, 10, rng=np.random.default_rng(0))
    >>> backend = ThreadedBackend(GroundTruthOracle(ds), max_workers=2)
    >>> ticket = backend.submit([SetRequest(np.arange(100), group(gender="female"))])
    >>> backend.gather(backend.next_done())
    [True]
    >>> backend.close()
    """

    def __init__(
        self,
        oracle,
        *,
        max_workers: int = 4,
        adapter: "Callable[[Sequence[SetRequest]], Sequence[bool]] | None" = None,
    ) -> None:
        if max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        super().__init__(oracle)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="crowd-backend"
        )
        self._oracle_lock = threading.Lock()
        self._adapter = adapter
        self._futures: dict[int, Future] = {}
        self._closed = False

    def _call(self, ticket: Ticket, requests: "Sequence[SetRequest]") -> Sequence[bool]:
        if self._adapter is not None:
            # External adapters do their own dispatch; worker identities
            # (if any) are theirs to surface — no votes are captured.
            return self._adapter(requests)
        with self._oracle_lock:
            # Vote capture happens inside the oracle lock: the drain is
            # atomic with the dispatch, so concurrent batches cannot
            # interleave their attributions.
            return self._dispatch(requests, ticket=ticket)

    def _submit(self, ticket: Ticket, requests: "Sequence[SetRequest]") -> None:
        if self._closed:
            raise InvalidParameterError("backend is closed")
        self._futures[ticket.ticket_id] = self._pool.submit(
            self._call, ticket, requests
        )

    def _ready(self, ticket: Ticket) -> bool:
        return self._futures[ticket.ticket_id].done()

    def _gather(self, ticket: Ticket) -> Sequence[bool]:
        future = self._futures.pop(ticket.ticket_id)
        try:
            return future.result()
        except BaseException:
            # The ticket is consumed either way; the caller sees the
            # dispatch error exactly once.
            raise

    def _next_done(self) -> Ticket:
        done, _ = wait(self._futures.values(), return_when=FIRST_COMPLETED)
        finished = {id(f) for f in done}
        # Deterministic among simultaneously-done tickets: submission order.
        for ticket in self._open.values():
            if id(self._futures[ticket.ticket_id]) in finished:
                return ticket
        raise RuntimeError("wait() returned but no outstanding ticket is done")

    def close(self) -> None:
        """Shut the pool down after in-flight batches finish (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)
