"""The asynchronous crowd-backend protocol: ``submit`` / ``poll`` / ``gather``.

The paper's cost model charges per crowd task, but a deployed audit
system is dominated by *latency*: a published batch of HITs comes back
seconds to minutes later, and the auditor should have other batches (and
other audits) in flight while it waits. The blocking
:meth:`~repro.crowd.oracle.Oracle.ask_set_batch` call cannot express
that, so the engine talks to the crowd through a
:class:`CrowdBackend` instead:

* :meth:`~CrowdBackend.submit` publishes one batch of set queries and
  returns a :class:`Ticket` immediately — the caller keeps working.
* :meth:`~CrowdBackend.poll` lists the tickets whose answers are ready.
* :meth:`~CrowdBackend.gather` collects one ticket's answers (blocking
  until they exist; a ticket is gathered exactly once).
* :meth:`~CrowdBackend.next_done` blocks until *some* outstanding
  ticket is ready and returns it — the wait primitive drain loops use.

Task charging is untouched: every backend routes the batch through
``oracle.ask_set_batch``, so the ledger bills one task per query and one
round-trip per batch exactly as before; what a backend adds is a *clock*
between publication and availability. Three implementations ship:

* :class:`~repro.crowd.backends.inline.InlineBackend` — answers are
  ready the moment ``submit`` returns. Driving an engine through it is
  bit-identical to the old blocking dispatch.
* :class:`~repro.crowd.backends.latency.LatencyModelBackend` — answers
  are withheld until a simulated per-worker latency elapses on a
  virtual clock, so round-trips have a clock cost, not just a dollar
  cost.
* :class:`~repro.crowd.backends.threaded.ThreadedBackend` — real
  concurrency on a thread pool, the shape an external platform adapter
  (MTurk, Toloka, an HTTP labeling service) plugs into.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro.crowd.oracle import Oracle
    from repro.engine.requests import SetRequest

__all__ = ["Ticket", "CrowdBackend"]


@dataclass(frozen=True)
class Ticket:
    """Receipt for one submitted batch of set queries.

    Tickets are value objects handed back by :meth:`CrowdBackend.submit`
    and passed to :meth:`~CrowdBackend.gather`; the backend keys its
    bookkeeping on :attr:`ticket_id`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.crowd.backends import InlineBackend
    >>> from repro.crowd.oracle import GroundTruthOracle
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.groups import group
    >>> from repro.engine.requests import SetRequest
    >>> ds = binary_dataset(100, 10, rng=np.random.default_rng(0))
    >>> backend = InlineBackend(GroundTruthOracle(ds))
    >>> ticket = backend.submit([SetRequest(np.arange(100), group(gender="female"))])
    >>> (ticket.ticket_id, ticket.n_queries)
    (0, 1)

    Attributes
    ----------
    ticket_id:
        Monotonically increasing per backend; submission order is ticket
        order.
    n_queries:
        How many set queries the batch carried (the answer list
        :meth:`~CrowdBackend.gather` returns has this length).
    submitted_at:
        The backend clock's time at submission — virtual seconds for the
        latency backend, ``0.0`` where no clock is modeled.
    """

    ticket_id: int
    n_queries: int
    submitted_at: float = 0.0


class CrowdBackend(ABC):
    """Asynchronous boundary between the query engine and the crowd.

    Subclasses implement :meth:`_submit` (publish the batch),
    :meth:`_ready` (is a ticket's answer available), :meth:`_gather`
    (block for and return one ticket's answers), and :meth:`_next_done`
    (block until some ticket is ready). The base class owns ticket
    identity and the submitted-but-ungathered table, so the lifecycle
    — submit once, gather exactly once — is enforced uniformly.

    Every backend is constructed over the :class:`~repro.crowd.oracle.Oracle`
    it ultimately answers from; ledger charging (one task per query, one
    round-trip per batch, atomic budget enforcement) happens inside the
    oracle exactly as in the blocking API.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.crowd.backends import InlineBackend
    >>> from repro.crowd.oracle import GroundTruthOracle
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.groups import group
    >>> from repro.engine.requests import SetRequest
    >>> ds = binary_dataset(100, 10, rng=np.random.default_rng(0))
    >>> backend = InlineBackend(GroundTruthOracle(ds))       # any CrowdBackend
    >>> ticket = backend.submit([SetRequest(np.arange(100), group(gender="female"))])
    >>> ticket in backend.poll() or backend.next_done() is ticket
    True
    >>> backend.gather(ticket)
    [True]
    >>> backend.outstanding
    0
    """

    def __init__(self, oracle: "Oracle") -> None:
        self.oracle = oracle
        self._next_ticket_id = 0
        #: submitted, not yet gathered — insertion (= submission) ordered.
        self._open: dict[int, Ticket] = {}
        #: per-ticket worker-vote attributions captured at dispatch.
        self._votes: dict[int, list[tuple[tuple[int, bool], ...]]] = {}

    # -- public lifecycle -------------------------------------------------
    def submit(self, requests: "Sequence[SetRequest]") -> Ticket:
        """Publish one batch of set queries; returns its :class:`Ticket`.

        Charging happens at submission (the batch is published — the
        crowd gets paid whether or not the caller ever gathers), so a
        batch the remaining budget cannot absorb raises
        :class:`~repro.errors.BudgetExceededError` here, before a ticket
        exists.
        """
        requests = tuple(requests)
        if not requests:
            raise InvalidParameterError("cannot submit an empty batch")
        ticket = Ticket(
            ticket_id=self._next_ticket_id,
            n_queries=len(requests),
            submitted_at=self._now(),
        )
        self._submit(ticket, requests)
        # Registered only after _submit succeeds: a refused batch (budget,
        # adapter failure at publish time) leaves no dangling ticket.
        self._next_ticket_id += 1
        self._open[ticket.ticket_id] = ticket
        return ticket

    def poll(self) -> "list[Ticket]":
        """Outstanding tickets whose answers are ready now (non-blocking),
        in submission order."""
        return [t for t in self._open.values() if self._ready(t)]

    def gather(self, ticket: Ticket) -> list[bool]:
        """Block until ``ticket``'s answers exist and return them, in the
        order the queries were submitted. Each ticket is gathered exactly
        once; a second gather (or a foreign ticket) raises."""
        if self._open.get(ticket.ticket_id) is not ticket:
            raise InvalidParameterError(
                f"ticket {ticket.ticket_id} is not outstanding on this backend "
                "(already gathered, or submitted elsewhere)"
            )
        try:
            answers = self._gather(ticket)
        finally:
            # Consumed either way: a failed dispatch (adapter error,
            # asynchronous budget refusal) surfaces here exactly once,
            # and the ticket must not wedge poll()/next_done() forever.
            del self._open[ticket.ticket_id]
        return [bool(answer) for answer in answers]

    def next_done(self) -> Ticket:
        """Block until some outstanding ticket is ready; return it
        (still outstanding — the caller gathers it). Raises when nothing
        is outstanding, so drain loops cannot wait forever."""
        if not self._open:
            raise InvalidParameterError(
                "no outstanding tickets; submit before waiting"
            )
        return self._next_done()

    @property
    def outstanding(self) -> int:
        """Tickets submitted and not yet gathered."""
        return len(self._open)

    def close(self) -> None:
        """Release backend resources (threads, adapters). Idempotent."""

    # -- implementation hooks ---------------------------------------------
    def _now(self) -> float:
        """The backend clock's current time (0.0 when unmodeled)."""
        return 0.0

    @abstractmethod
    def _submit(self, ticket: Ticket, requests: "Sequence[SetRequest]") -> None: ...

    @abstractmethod
    def _ready(self, ticket: Ticket) -> bool: ...

    @abstractmethod
    def _gather(self, ticket: Ticket) -> Sequence[bool]: ...

    def _next_done(self) -> Ticket:
        """Default wait: first submitted ready ticket; subclasses with a
        real notion of time or threads override."""
        for ticket in self._open.values():
            if self._ready(ticket):
                return ticket
        raise InvalidParameterError(
            "no outstanding ticket can become ready "
            f"({type(self).__name__} has no clock to advance)"
        )

    def take_votes(self, ticket: Ticket) -> "list[tuple[tuple[int, bool], ...]]":
        """Per-query worker-vote attributions for a dispatched ticket:
        one ``((worker_id, answer), ...)`` tuple per query, in submission
        order — the raw material an online reliability estimator
        (:mod:`repro.crowd.reliability`) consumes. Empty when the
        oracle does not expose worker identities (e.g. ground truth) and
        the backend does not synthesize them. May be called once per
        ticket, any time after submission; consuming is idempotent-safe
        (a second call returns an empty list)."""
        return self._votes.pop(ticket.ticket_id, [])

    # -- shared helper ----------------------------------------------------
    def _dispatch(
        self, requests: "Sequence[SetRequest]", *, ticket: "Ticket | None" = None
    ) -> list[bool]:
        """Route one batch through the oracle's blocking batch API —
        the charging path every simulated backend shares. When a ticket
        is given and the oracle buffers per-HIT worker votes
        (``drain_set_votes``), the attributions are captured for
        :meth:`take_votes`."""
        answers = self.oracle.ask_set_batch(
            [(request.indices, request.predicate) for request in requests],
            keys=[request.key for request in requests],
        )
        if ticket is not None:
            drain = getattr(self.oracle, "drain_set_votes", None)
            if callable(drain):
                votes = drain()
                if votes:
                    self._votes[ticket.ticket_id] = list(votes)
        return answers
