"""Query (HIT) types of the crowdsourcing model (§2.3).

Two query types, exactly as the paper defines them:

* :class:`PointQuery` — "provide the attribute values of this one image"
  (Figure 1 in the paper).
* :class:`SetQuery` — "does this *set* of images contain at least one
  object satisfying the predicate?" (Figure 2). The predicate may be a
  group, a super-group (OR), or a negation (Classifier-Coverage's reverse
  question).

A published query together with the individual worker answers and the
aggregated truth is recorded as a :class:`HitRecord`, the platform's audit
trail (used to compute the raw worker error rates that §6.3.1 reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.data.groups import GroupPredicate
from repro.errors import InvalidParameterError

__all__ = ["PointQuery", "SetQuery", "HitRecord"]


@dataclass(frozen=True)
class PointQuery:
    """A request to label a single object with all attributes of interest."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise InvalidParameterError(f"negative object index: {self.index}")


@dataclass(frozen=True)
class SetQuery:
    """A yes/no question about a set of objects.

    "Does ``{t_i : i in indices}`` contain at least one object satisfying
    ``predicate``?"

    ``indices`` is stored as an immutable tuple; callers typically pass a
    contiguous range of a dataset view, but any index set is allowed.
    """

    indices: tuple[int, ...]
    predicate: GroupPredicate

    def __init__(self, indices: Sequence[int] | np.ndarray, predicate: GroupPredicate) -> None:
        index_tuple = tuple(int(i) for i in indices)
        if not index_tuple:
            raise InvalidParameterError("a SetQuery needs at least one object")
        if any(i < 0 for i in index_tuple):
            raise InvalidParameterError("negative object index in SetQuery")
        object.__setattr__(self, "indices", index_tuple)
        object.__setattr__(self, "predicate", predicate)

    def __len__(self) -> int:
        return len(self.indices)

    def describe(self) -> str:
        """HIT instructions shown to the (simulated) worker."""
        return (
            f"Is there at least one image matching [{self.predicate.describe()}] "
            f"among these {len(self.indices)} images?"
        )


@dataclass(frozen=True)
class HitRecord:
    """Audit record of one published HIT.

    Attributes
    ----------
    query:
        The published :class:`PointQuery` or :class:`SetQuery`.
    worker_ids:
        Workers the HIT was assigned to.
    answers:
        Individual answers, aligned with ``worker_ids``. Booleans for set
        queries; ``{attribute: value}`` mappings for point queries.
    aggregated:
        The post-aggregation answer the algorithm received.
    truth:
        The ground-truth answer (known to the simulator only; used for
        error accounting, never shown to algorithms).
    """

    query: PointQuery | SetQuery
    worker_ids: tuple[int, ...]
    answers: tuple[bool | Mapping[str, str], ...]
    aggregated: bool | Mapping[str, str]
    truth: bool | Mapping[str, str]
    price: float = field(default=0.0)

    @property
    def n_incorrect_answers(self) -> int:
        """How many individual worker answers disagree with the truth."""
        return sum(1 for answer in self.answers if answer != self.truth)

    @property
    def aggregation_correct(self) -> bool:
        """Did aggregation recover the truth?"""
        return self.aggregated == self.truth
