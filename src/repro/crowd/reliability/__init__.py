"""Online worker-reliability: streaming estimation, quarantine, routing.

The paper's crowd model (§2.3) fixes redundancy up front — every HIT
goes to ``assignments_per_hit`` workers and majority vote settles it,
regardless of how trustworthy the answering workers are. This subsystem
closes the loop instead:

* :class:`OnlineDawidSkene` (:mod:`~repro.crowd.reliability.online`) —
  a streaming, vectorized Dawid–Skene estimator: per-worker confusion
  matrices updated as answers arrive, via damped partial E-steps.
* :class:`ReliabilityTracker` (:mod:`~repro.crowd.reliability.tracker`)
  — classifies confusion signatures (uniform guessers, always-yes/no,
  polarity-flipped adversaries) and manages quarantine with probation
  re-entry.
* :class:`AdaptiveAssignmentPolicy`
  (:mod:`~repro.crowd.reliability.policy`) — routes assignments to
  trusted workers and stops collecting votes once the posterior
  log-odds clears a calibrated threshold; :class:`ReliabilityReport`
  is its read-only summary.
* :class:`ReliabilitySnapshot`
  (:mod:`~repro.crowd.reliability.serialization`) — the versioned
  checkpoint codec, including the platform rng stream position so
  killed audits resume bit-identically.

Wire it in with ``CrowdPlatform(..., reliability=AdaptiveAssignmentPolicy())``;
see ``docs/guide/reliability.md`` for the math-to-code mapping and
calibration guidance.
"""

from __future__ import annotations

from repro.crowd.reliability.online import OnlineDawidSkene
from repro.crowd.reliability.policy import AdaptiveAssignmentPolicy, ReliabilityReport
from repro.crowd.reliability.serialization import (
    RELIABILITY_STATE_VERSION,
    ReliabilitySnapshot,
)
from repro.crowd.reliability.tracker import ReliabilityTracker

__all__ = [
    "OnlineDawidSkene",
    "ReliabilityTracker",
    "AdaptiveAssignmentPolicy",
    "ReliabilityReport",
    "ReliabilitySnapshot",
    "RELIABILITY_STATE_VERSION",
]
