"""`ReliabilityTracker`: flagging and quarantining unreliable workers.

Reads the confusion matrices maintained by
:class:`~repro.crowd.reliability.OnlineDawidSkene` and classifies each
worker's *behavioral signature* once enough evidence has accumulated:

* **uniform guesser** — answers carry no signal: Youden's J
  (true-positive rate minus false-positive rate) sits inside a small
  band around zero,
* **always-yes** / **always-no** — the answer barely depends on the
  truth: both conditional rates of the same answer exceed an extreme
  threshold,
* **adversary** — polarity-flipped answers: J is *negative* beyond the
  guessing band, i.e. the worker is anti-correlated with the truth.

Flagged workers are **quarantined**: the adaptive assignment policy
stops routing paid, verdict-bearing votes to them. Quarantine is not
permanent — workers re-enter through **probation**: the policy keeps
sending them occasional probe HITs (paid, but excluded from the
aggregate), and once enough probes accumulate with a clean signature and
a sufficiently positive J, the tracker reinstates them. This matters for
*drifting* pools where a worker's quality degrades and recovers.

The tracker draws no randomness: classification is a pure function of
the estimator's statistics, so identical vote streams yield identical
quarantine decisions (reprolint RPL001/RPL008 discipline).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import InvalidParameterError

from repro.crowd.reliability.online import OnlineDawidSkene

__all__ = ["ReliabilityTracker"]

_ACTIVE = "active"
_QUARANTINED = "quarantined"

FLAG_UNIFORM = "uniform_guesser"
FLAG_ALWAYS_YES = "always_yes"
FLAG_ALWAYS_NO = "always_no"
FLAG_ADVERSARY = "adversary"


class ReliabilityTracker:
    """Quarantine lifecycle over an :class:`OnlineDawidSkene` estimator.

    Examples
    --------
    >>> est = OnlineDawidSkene()
    >>> tracker = ReliabilityTracker(est, min_observations=2)
    >>> for _ in range(8):   # worker 9 keeps contradicting two good workers
    ...     _ = est.observe_set_batch([[(0, True), (1, True), (9, False)],
    ...                                [(0, False), (1, False), (9, True)]])
    >>> _ = tracker.review()
    >>> tracker.is_quarantined(9)
    True
    >>> tracker.flag(9)
    'adversary'

    Parameters
    ----------
    estimator:
        The online estimator whose confusion matrices are classified.
    min_observations:
        Votes a worker must have before classification applies; below
        this the signature is prior-dominated noise.
    spam_margin:
        Half-width of the "no signal" band: ``|J| < spam_margin`` flags
        a uniform guesser, ``J <= -spam_margin`` an adversary.
    extreme_rate:
        Conditional same-answer rate above which a worker counts as
        always-yes / always-no regardless of J.
    reentry_margin:
        Youden's J a quarantined worker must reach (with a clean
        signature) to be reinstated.
    probation_votes:
        Probe votes that must accumulate *after* quarantine before
        reinstatement is considered.
    """

    def __init__(
        self,
        estimator: OnlineDawidSkene,
        *,
        min_observations: int = 12,
        spam_margin: float = 0.15,
        extreme_rate: float = 0.85,
        reentry_margin: float = 0.25,
        probation_votes: int = 6,
    ) -> None:
        if min_observations < 1:
            raise InvalidParameterError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        if not 0.0 < spam_margin < 1.0:
            raise InvalidParameterError(
                f"spam_margin must be in (0, 1), got {spam_margin}"
            )
        if not 0.5 < extreme_rate <= 1.0:
            raise InvalidParameterError(
                f"extreme_rate must be in (0.5, 1], got {extreme_rate}"
            )
        if not 0.0 <= reentry_margin < 1.0:
            raise InvalidParameterError(
                f"reentry_margin must be in [0, 1), got {reentry_margin}"
            )
        if probation_votes < 1:
            raise InvalidParameterError(
                f"probation_votes must be >= 1, got {probation_votes}"
            )
        self.estimator = estimator
        self.min_observations = min_observations
        self.spam_margin = spam_margin
        self.extreme_rate = extreme_rate
        self.reentry_margin = reentry_margin
        self.probation_votes = probation_votes

        self._states: dict[int, str] = {}
        self._flags: dict[int, str] = {}
        self._obs_at_quarantine: dict[int, int] = {}
        self.n_quarantines = 0
        self.n_reinstatements = 0

    # -- signature classification ------------------------------------------
    def youden_j(self, worker_id: int) -> float:
        """Youden's J statistic ``TPR - FPR`` for the worker — the signal
        their votes carry (+1 perfect, 0 guessing, -1 inverted)."""
        confusion = self.estimator.confusion(worker_id)
        return float(confusion[1, 1] - confusion[0, 1])

    def classify(self, worker_id: int) -> str | None:
        """The worker's current behavioral flag, or ``None`` when their
        signature looks legitimate (or evidence is still insufficient)."""
        if self.estimator.n_observations(worker_id) < self.min_observations:
            return None
        confusion = self.estimator.confusion(worker_id)
        yes_rate_when_no = float(confusion[0, 1])
        yes_rate_when_yes = float(confusion[1, 1])
        if (
            yes_rate_when_no >= self.extreme_rate
            and yes_rate_when_yes >= self.extreme_rate
        ):
            return FLAG_ALWAYS_YES
        if (
            1.0 - yes_rate_when_no >= self.extreme_rate
            and 1.0 - yes_rate_when_yes >= self.extreme_rate
        ):
            return FLAG_ALWAYS_NO
        j = yes_rate_when_yes - yes_rate_when_no
        if j <= -self.spam_margin:
            return FLAG_ADVERSARY
        if abs(j) < self.spam_margin:
            return FLAG_UNIFORM
        return None

    # -- quarantine lifecycle ----------------------------------------------
    def review(self) -> list[int]:
        """Re-classify every known worker: quarantine newly flagged ones,
        reinstate quarantined workers whose probation has cleared. Returns
        worker ids whose state changed, in first-seen order."""
        changed: list[int] = []
        for worker_id in self.estimator.worker_ids:
            state = self._states.get(worker_id, _ACTIVE)
            flag = self.classify(worker_id)
            if state == _ACTIVE:
                if flag is not None:
                    self._states[worker_id] = _QUARANTINED
                    self._flags[worker_id] = flag
                    self._obs_at_quarantine[worker_id] = (
                        self.estimator.n_observations(worker_id)
                    )
                    self.n_quarantines += 1
                    changed.append(worker_id)
            else:
                probes = (
                    self.estimator.n_observations(worker_id)
                    - self._obs_at_quarantine.get(worker_id, 0)
                )
                if (
                    probes >= self.probation_votes
                    and flag is None
                    and self.youden_j(worker_id) >= self.reentry_margin
                ):
                    self._states[worker_id] = _ACTIVE
                    self._flags.pop(worker_id, None)
                    self._obs_at_quarantine.pop(worker_id, None)
                    self.n_reinstatements += 1
                    changed.append(worker_id)
                elif flag is not None:
                    # Still misbehaving: refresh the flag, restart probation.
                    self._flags[worker_id] = flag
                    self._obs_at_quarantine[worker_id] = (
                        self.estimator.n_observations(worker_id)
                    )
        return changed

    def is_quarantined(self, worker_id: int) -> bool:
        """Whether the worker is currently excluded from verdict-bearing
        assignments (probe HITs may still reach them)."""
        return self._states.get(worker_id, _ACTIVE) == _QUARANTINED

    def flag(self, worker_id: int) -> str | None:
        """The behavioral flag that put the worker in quarantine
        (``None`` for active workers)."""
        return self._flags.get(worker_id)

    def quarantined_ids(self) -> tuple[int, ...]:
        """Currently quarantined worker ids, sorted ascending for
        deterministic iteration."""
        return tuple(
            sorted(w for w, s in self._states.items() if s == _QUARANTINED)
        )

    # -- serializable state ------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """The tracker's mutable state as JSON-compatible primitives
        (estimator state is serialized separately by the snapshot)."""
        return {
            "states": {str(w): s for w, s in sorted(self._states.items())},
            "flags": {str(w): f for w, f in sorted(self._flags.items())},
            "obs_at_quarantine": {
                str(w): n for w, n in sorted(self._obs_at_quarantine.items())
            },
            "n_quarantines": self.n_quarantines,
            "n_reinstatements": self.n_reinstatements,
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`state_dict` output exactly; the attached
        estimator must be restored separately (and first)."""
        self._states = {int(w): str(s) for w, s in state["states"].items()}
        self._flags = {int(w): str(f) for w, f in state["flags"].items()}
        self._obs_at_quarantine = {
            int(w): int(n) for w, n in state["obs_at_quarantine"].items()
        }
        self.n_quarantines = int(state["n_quarantines"])
        self.n_reinstatements = int(state["n_reinstatements"])
