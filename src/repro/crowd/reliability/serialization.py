"""Versioned codec for reliability state in checkpoints.

Checkpointed audits must survive a kill with *bit-identical* outcomes:
same verdicts, same task counts, no paid query re-asked. For a
reliability-enabled platform that means persisting three things
together, as one versioned section:

* the policy's mutable state — estimator sufficient statistics,
  quarantine roster, spend counters (all JSON primitives; floats
  round-trip exactly through JSON),
* the **platform rng stream position** (`bit_generator.state`). The
  session/service already persist their own sampling rng, but adaptive
  routing also consumes the *platform's* stream (routing noise + worker
  answer draws); restoring it guarantees that queries issued after a
  resume draw the same answers they would have in an uninterrupted run.

:class:`ReliabilitySnapshot` is the frozen payload type;
``to_dict``/``from_dict`` follow the repository codec contract
(explicit version stamp, unknown versions rejected, missing keys wrapped
as :class:`~repro.errors.CheckpointVersionError` — reprolint
RPL003/RPL004/RPL005).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.errors import CheckpointVersionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.crowd.platform import CrowdPlatform

__all__ = ["ReliabilitySnapshot", "RELIABILITY_STATE_VERSION"]

#: Version stamp of the ``reliability`` checkpoint section.
RELIABILITY_STATE_VERSION = 1

_READABLE_VERSIONS = frozenset({1})


@dataclass(frozen=True)
class ReliabilitySnapshot:
    """Frozen, versioned payload of a platform's reliability state.

    Captures the adaptive policy's complete mutable state plus the
    platform rng stream position; restoring both onto an identically
    configured platform resumes the audit bit-identically.

    >>> snap = ReliabilitySnapshot(
    ...     policy={"n_hits": 0}, platform_rng_state=None)
    >>> ReliabilitySnapshot.from_dict(snap.to_dict()) == snap
    True
    """

    policy: dict[str, Any]
    platform_rng_state: dict[str, Any] | None

    @classmethod
    def capture(cls, platform: "CrowdPlatform") -> "ReliabilitySnapshot":
        """Snapshot a reliability-enabled platform: the policy's
        ``state_dict`` plus the platform rng's bit-generator state."""
        if platform.reliability is None:
            raise CheckpointVersionError(
                "capture requires a platform constructed with reliability="
            )
        return cls(
            policy=platform.reliability.state_dict(),
            platform_rng_state=dict(platform.rng.bit_generator.state),
        )

    def restore(self, platform: "CrowdPlatform") -> None:
        """Load this snapshot into an identically configured platform:
        policy state first, then the platform rng stream position."""
        if platform.reliability is None:
            raise CheckpointVersionError(
                "checkpoint has a reliability section but the resumed "
                "platform was constructed without reliability="
            )
        platform.reliability.load_state_dict(self.policy)
        if self.platform_rng_state is not None:
            try:
                bit_generator = getattr(
                    np.random, str(self.platform_rng_state["bit_generator"])
                )()
                bit_generator.state = dict(self.platform_rng_state)
            except (KeyError, TypeError, ValueError) as error:
                raise CheckpointVersionError(
                    f"malformed platform rng state in reliability section: {error}"
                ) from error
            platform.rng = np.random.Generator(bit_generator)

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a JSON-compatible dict, stamped with
        ``version`` = :data:`RELIABILITY_STATE_VERSION`."""
        return {
            "version": RELIABILITY_STATE_VERSION,
            "policy": self.policy,
            "platform_rng_state": self.platform_rng_state,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ReliabilitySnapshot":
        """Decode :meth:`to_dict` output, rejecting unknown ``version``
        stamps and wrapping missing keys as
        :class:`~repro.errors.CheckpointVersionError`."""
        try:
            version = payload["version"]
            if version not in _READABLE_VERSIONS:
                raise CheckpointVersionError(
                    f"unsupported reliability section version {version!r}; "
                    f"readable: {sorted(_READABLE_VERSIONS)}"
                )
            policy = payload["policy"]
            rng_state = payload["platform_rng_state"]
        except KeyError as error:
            raise CheckpointVersionError(
                f"reliability section is missing required key {error}"
            ) from error
        return cls(
            policy=dict(policy),
            platform_rng_state=None if rng_state is None else dict(rng_state),
        )
