"""`AdaptiveAssignmentPolicy`: reliability-adaptive vote routing.

The paper's platform model (§2.3) publishes every HIT to a *fixed*
number of workers and majority-votes the answers — redundancy is paid
whether or not the first answers already settle the outcome. This module
replaces the fixed fan-out with a sequential decision rule grounded in
the online Dawid–Skene posterior:

* **Routing** — assignments go to the workers the estimator currently
  trusts most (quarantined workers are excluded), with an exploration
  bonus so new and recovering workers keep receiving evidence.
* **Stopping** — votes are collected one at a time; after each vote the
  posterior log-odds of the aggregate is updated with that worker's
  estimated log-likelihood ratio, and collection stops as soon as the
  magnitude clears a calibrated threshold (bounded by minimum and
  maximum assignment counts). Unanimous early votes from trusted
  workers settle a HIT in fewer assignments than the fixed fan-out;
  conflicting votes escalate it to more.
* **Probation probes** — every ``probation_interval``-th HIT also sends
  one paid probe to the quarantined worker with the least evidence, so
  the tracker can observe recovery and reinstate. Probe answers update
  the estimator but never the verdict.

The policy draws randomness *only* from the rng handed to
:meth:`plan` (the platform's stream) — one vector draw per HIT — and the
probe choice is a deterministic function of counters, preserving the
repository's rng-stream discipline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Protocol, Sequence

import numpy as np

from repro.errors import InvalidParameterError

from repro.crowd.reliability.online import OnlineDawidSkene, PointVotes, SetVotes
from repro.crowd.reliability.tracker import ReliabilityTracker

__all__ = ["AdaptiveAssignmentPolicy", "ReliabilityReport"]

_LOG_FLOOR = 1e-300


class _HasWorkerId(Protocol):
    worker_id: int


@dataclass(frozen=True)
class ReliabilityReport:
    """Read-only summary of a reliability policy's current state — the
    view :meth:`AuditSession.reliability_report` and the service expose.

    A derived snapshot, never serialized (checkpoints carry the full
    estimator state instead).

    >>> report = ReliabilityReport(
    ...     n_workers=5, n_quarantined=1, quarantined=(3,),
    ...     flags=((3, "adversary"),), n_quarantines=1, n_reinstatements=0,
    ...     n_hits=10, n_votes=24, n_probes=1)
    >>> report.mean_votes_per_hit
    2.4
    """

    n_workers: int
    n_quarantined: int
    quarantined: tuple[int, ...]
    flags: tuple[tuple[int, str], ...]
    n_quarantines: int
    n_reinstatements: int
    n_hits: int
    n_votes: int
    n_probes: int

    @property
    def mean_votes_per_hit(self) -> float:
        """Average verdict-bearing votes collected per HIT (excludes
        probes); the fixed-redundancy baseline sits at its fan-out."""
        return self.n_votes / self.n_hits if self.n_hits else 0.0


class AdaptiveAssignmentPolicy:
    """Sequential vote routing and stopping over streaming reliability.

    Examples
    --------
    >>> policy = AdaptiveAssignmentPolicy(log_odds_threshold=1.5)
    >>> lo = policy.prior_log_odds()
    >>> lo += policy.vote_log_odds(0, True)       # one yes from worker 0
    >>> policy.should_stop(lo, n_votes=1)         # prior-level trust: not yet
    False
    >>> lo += policy.vote_log_odds(1, True)       # a second agreeing yes
    >>> policy.should_stop(lo, n_votes=2)
    True
    >>> policy.decide(lo)
    True

    Parameters
    ----------
    estimator, tracker:
        The streaming estimator and quarantine tracker; fresh defaults
        are constructed when omitted (a tracker built on the estimator).
    min_assignments, max_assignments:
        Hard bounds on verdict-bearing votes per HIT.
    log_odds_threshold:
        Posterior log-odds magnitude at which collection stops.
    exploration:
        Scale of the uniform noise added to worker trust scores during
        routing, so ranking is not a fixed pecking order.
    probation_interval:
        Send one probe to a quarantined worker every this-many HITs.
    """

    def __init__(
        self,
        *,
        estimator: OnlineDawidSkene | None = None,
        tracker: ReliabilityTracker | None = None,
        min_assignments: int = 1,
        max_assignments: int = 7,
        log_odds_threshold: float = 5.0,
        exploration: float = 0.25,
        probation_interval: int = 7,
    ) -> None:
        if min_assignments < 1:
            raise InvalidParameterError(
                f"min_assignments must be >= 1, got {min_assignments}"
            )
        if max_assignments < min_assignments:
            raise InvalidParameterError(
                "max_assignments must be >= min_assignments, got "
                f"{max_assignments} < {min_assignments}"
            )
        if log_odds_threshold <= 0.0:
            raise InvalidParameterError(
                f"log_odds_threshold must be positive, got {log_odds_threshold}"
            )
        if exploration < 0.0:
            raise InvalidParameterError(
                f"exploration must be >= 0, got {exploration}"
            )
        if probation_interval < 1:
            raise InvalidParameterError(
                f"probation_interval must be >= 1, got {probation_interval}"
            )
        self.estimator = estimator if estimator is not None else OnlineDawidSkene()
        self.tracker = (
            tracker if tracker is not None else ReliabilityTracker(self.estimator)
        )
        self.min_assignments = min_assignments
        self.max_assignments = max_assignments
        self.log_odds_threshold = log_odds_threshold
        self.exploration = exploration
        self.probation_interval = probation_interval
        self.n_hits = 0
        self.n_votes = 0
        self.n_probes = 0

    # -- routing -----------------------------------------------------------
    def plan(
        self, eligible: Sequence[_HasWorkerId], rng: np.random.Generator
    ) -> tuple[list[int], int | None]:
        """Rank the eligible pool for one HIT.

        Returns ``(order, probe)``: positions into ``eligible`` to try in
        sequence (trusted-first with exploration noise, quarantined
        excluded, capped at ``max_assignments``), plus the position of a
        probation probe when this HIT is a probe round (``None``
        otherwise). Draws exactly one rng vector, regardless of how many
        votes the caller ends up taking.
        """
        if not eligible:
            raise InvalidParameterError("plan needs a non-empty eligible pool")
        active = [
            pos
            for pos, worker in enumerate(eligible)
            if not self.tracker.is_quarantined(worker.worker_id)
        ]
        if not active:
            active = list(range(len(eligible)))
        noise = rng.random(len(active))
        scores = np.array(
            [
                self.estimator.worker_accuracy(eligible[pos].worker_id)
                for pos in active
            ],
            dtype=np.float64,
        )
        scores += self.exploration * noise
        ranked = [active[i] for i in np.argsort(-scores, kind="stable")]
        order = ranked[: self.max_assignments]
        probe = None
        if self.n_hits % self.probation_interval == self.probation_interval - 1:
            quarantined = [
                pos
                for pos, worker in enumerate(eligible)
                if self.tracker.is_quarantined(worker.worker_id)
            ]
            if quarantined:
                probe = min(
                    quarantined,
                    key=lambda pos: (
                        self.estimator.n_observations(eligible[pos].worker_id),
                        eligible[pos].worker_id,
                    ),
                )
        return order, probe

    # -- sequential stopping -----------------------------------------------
    def prior_log_odds(self) -> float:
        """Starting log-odds of "truth = yes" before any vote, from the
        estimator's current class priors."""
        return self.estimator.prior_log_odds()

    def vote_log_odds(self, worker_id: int, answer: bool) -> float:
        """The increment one worker's vote adds to the running posterior
        log-odds, under their current confusion estimate."""
        return self.estimator.vote_log_odds(worker_id, answer)

    def should_stop(self, log_odds: float, n_votes: int) -> bool:
        """Whether vote collection can stop: the minimum assignment count
        is met and the posterior log-odds magnitude clears the threshold
        (or the maximum assignment count is exhausted)."""
        if n_votes >= self.max_assignments:
            return True
        if n_votes < self.min_assignments:
            return False
        return abs(log_odds) >= self.log_odds_threshold

    def decide(self, log_odds: float) -> bool:
        """The aggregate set-query verdict implied by the final posterior
        log-odds: yes iff the log-odds is positive."""
        return log_odds > 0.0

    def should_stop_point(
        self, posteriors: Mapping[str, Mapping[str, float]], n_votes: int
    ) -> bool:
        """Point-query stopping rule: stop once every attribute's
        top-versus-runner-up posterior log-margin clears the threshold
        (same bounds as the set rule)."""
        if n_votes >= self.max_assignments:
            return True
        if n_votes < self.min_assignments or not posteriors:
            return False
        for values in posteriors.values():
            ranked = sorted(values.values(), reverse=True)
            if len(ranked) < 2:
                continue
            margin = float(
                np.log(ranked[0] + _LOG_FLOOR) - np.log(ranked[1] + _LOG_FLOOR)
            )
            if margin < self.log_odds_threshold:
                return False
        return True

    # -- evidence ----------------------------------------------------------
    def observe_set(self, votes: SetVotes, *, n_probes: int = 0) -> float:
        """Fold one HIT's set votes (probes included) into the estimator,
        run a quarantine review, and return the updated posterior
        ``P(truth = yes)`` for the HIT."""
        posterior = self.estimator.observe_set_batch([votes])
        self.tracker.review()
        self.n_hits += 1
        self.n_votes += len(votes) - n_probes
        self.n_probes += n_probes
        return float(posterior[0])

    def observe_point(
        self, votes: PointVotes, *, n_probes: int = 0
    ) -> dict[str, str]:
        """Fold one HIT's point votes into the estimator, run a
        quarantine review, and return the MAP ``{attribute: value}``
        labeling under the updated estimates."""
        labels = self.estimator.observe_point_batch([votes])
        self.tracker.review()
        self.n_hits += 1
        self.n_votes += len(votes) - n_probes
        self.n_probes += n_probes
        return labels[0]

    # -- reporting and state -----------------------------------------------
    def report(self) -> ReliabilityReport:
        """The current :class:`ReliabilityReport` snapshot: pool size,
        quarantine roster and flags, lifecycle and spend counters."""
        quarantined = self.tracker.quarantined_ids()
        return ReliabilityReport(
            n_workers=len(self.estimator.worker_ids),
            n_quarantined=len(quarantined),
            quarantined=quarantined,
            flags=tuple(
                (worker_id, flag)
                for worker_id in quarantined
                if (flag := self.tracker.flag(worker_id)) is not None
            ),
            n_quarantines=self.tracker.n_quarantines,
            n_reinstatements=self.tracker.n_reinstatements,
            n_hits=self.n_hits,
            n_votes=self.n_votes,
            n_probes=self.n_probes,
        )

    def state_dict(self) -> dict[str, Any]:
        """The policy's complete mutable state (estimator and tracker
        nested) as JSON-compatible primitives."""
        return {
            "estimator": self.estimator.state_dict(),
            "tracker": self.tracker.state_dict(),
            "n_hits": self.n_hits,
            "n_votes": self.n_votes,
            "n_probes": self.n_probes,
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`state_dict` output bit-identically, estimator
        first so the tracker reads consistent statistics."""
        self.estimator.load_state_dict(state["estimator"])
        self.tracker.load_state_dict(state["tracker"])
        self.n_hits = int(state["n_hits"])
        self.n_votes = int(state["n_votes"])
        self.n_probes = int(state["n_probes"])
