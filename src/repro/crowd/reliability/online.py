"""`OnlineDawidSkene`: streaming, vectorized worker-reliability estimation.

The batch :class:`~repro.crowd.aggregation.DawidSkene` estimator needs
every response up front and re-solves EM from scratch; an audit platform
sees answers *arrive* — HIT by HIT, batch by batch — and needs current
confusion estimates between batches to route the next assignment. This
module keeps Dawid–Skene's model (per-worker confusion matrices, class
priors, task posteriors) but replaces the batch EM loop with **damped
partial E-steps over sufficient statistics**:

* the estimator stores, per worker, *observed* confusion counts (plus a
  weak symmetric prior applied at read time, so estimates never
  degenerate to 0/1),
* each observed batch of HITs runs a vectorized E-step — task posteriors
  from the current priors and confusions — and then folds the implied
  counts back in, scaled by a ``damping`` step size below 1 so one noisy
  batch cannot yank the estimates,
* an optional exponential ``decay`` forgets old counts, letting the
  estimator track workers whose quality drifts over an audit's lifetime.

Set queries use 2x2 matrices (truth in {no, yes}); point queries use one
k x k matrix per schema attribute, with value codes discovered online.
All updates are :func:`numpy.add.at` scatter-adds over the whole batch —
no per-vote Python loops on the hot path.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np
import numpy.typing as npt

from repro.errors import InvalidParameterError

__all__ = ["OnlineDawidSkene"]

#: Votes on one set-query HIT: ``(worker_id, answered_yes)`` pairs.
SetVotes = Sequence[tuple[int, bool]]
#: Votes on one point-query HIT: ``(worker_id, {attribute: value})`` pairs.
PointVotes = Sequence[tuple[int, Mapping[str, str]]]

_ROW_GROWTH = 16
_LOG_FLOOR = 1e-300


class _AttributeModel:
    """Per-attribute confusion statistics with lazily discovered values."""

    def __init__(self, n_rows: int) -> None:
        self.values: list[str] = []
        self.codes: dict[str, int] = {}
        #: observed damped counts, shape ``(n_rows, k, k)`` (truth, answer).
        self.obs: npt.NDArray[np.float64] = np.zeros((n_rows, 0, 0), dtype=np.float64)
        #: observed damped class counts, shape ``(k,)``.
        self.class_obs: npt.NDArray[np.float64] = np.zeros(0, dtype=np.float64)

    def ensure_rows(self, n_rows: int) -> None:
        if n_rows > self.obs.shape[0]:
            k = self.obs.shape[1]
            grown = np.zeros((n_rows, k, k), dtype=np.float64)
            grown[: self.obs.shape[0]] = self.obs
            self.obs = grown

    def code_for(self, value: str) -> int:
        code = self.codes.get(value)
        if code is None:
            code = len(self.values)
            self.values.append(value)
            self.codes[value] = code
            k = code + 1
            grown = np.zeros((self.obs.shape[0], k, k), dtype=np.float64)
            grown[:, :code, :code] = self.obs
            self.obs = grown
            grown_class = np.zeros(k, dtype=np.float64)
            grown_class[:code] = self.class_obs
            self.class_obs = grown_class
        return code

    def state_dict(self) -> dict[str, Any]:
        return {
            "values": list(self.values),
            "obs": self.obs.tolist(),
            "class_obs": self.class_obs.tolist(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any], n_rows: int) -> "_AttributeModel":
        model = cls(n_rows)
        model.values = [str(value) for value in state["values"]]
        model.codes = {value: code for code, value in enumerate(model.values)}
        k = len(model.values)
        model.obs = np.asarray(state["obs"], dtype=np.float64).reshape(n_rows, k, k)
        model.class_obs = np.asarray(state["class_obs"], dtype=np.float64).reshape(k)
        return model


class OnlineDawidSkene:
    """Streaming Dawid–Skene: per-worker confusions updated as votes arrive.

    Examples
    --------
    >>> est = OnlineDawidSkene()
    >>> round(est.prior_log_odds(), 3) == 0.0    # symmetric class prior
    True
    >>> post = est.observe_set_batch([[(0, True), (1, True), (2, False)]])
    >>> bool(post[0] > 0.5)                      # majority leaning
    True
    >>> est.n_observations(2)
    1

    Parameters
    ----------
    damping:
        Step size in (0, 1] of each partial M-step: the fraction of a
        batch's implied confusion counts folded into the running
        statistics per sweep. Below 1, one aberrant batch moves the
        estimates only part way — the "damped" in damped partial EM.
    decay:
        Exponential forgetting in (0, 1] applied to observed counts
        before each batch. ``1.0`` (default) never forgets; lower values
        track quality drift at the cost of a larger steady-state
        variance.
    prior_correct:
        Prior probability that an unknown worker answers correctly;
        the symmetric prior pseudo-counts are built from it.
    prior_strength:
        Total pseudo-count mass per confusion row. Larger values make
        early estimates stickier (more votes needed to move them).
    sweeps:
        Partial E/M sweeps per observed batch; each sweep re-computes
        posteriors with the freshly updated statistics and folds in
        ``damping / sweeps`` of the counts.
    """

    def __init__(
        self,
        *,
        damping: float = 0.8,
        decay: float = 1.0,
        prior_correct: float = 0.7,
        prior_strength: float = 4.0,
        sweeps: int = 2,
    ) -> None:
        if not 0.0 < damping <= 1.0:
            raise InvalidParameterError(f"damping must be in (0, 1], got {damping}")
        if not 0.0 < decay <= 1.0:
            raise InvalidParameterError(f"decay must be in (0, 1], got {decay}")
        if not 0.5 <= prior_correct < 1.0:
            raise InvalidParameterError(
                f"prior_correct must be in [0.5, 1), got {prior_correct}"
            )
        if prior_strength <= 0.0:
            raise InvalidParameterError(
                f"prior_strength must be positive, got {prior_strength}"
            )
        if sweeps < 1:
            raise InvalidParameterError(f"sweeps must be >= 1, got {sweeps}")
        self.damping = damping
        self.decay = decay
        self.prior_correct = prior_correct
        self.prior_strength = prior_strength
        self.sweeps = sweeps

        self._rows: dict[int, int] = {}
        self._row_ids: list[int] = []
        self._set_obs: npt.NDArray[np.float64] = np.zeros((0, 2, 2), dtype=np.float64)
        self._set_votes: npt.NDArray[np.int64] = np.zeros(0, dtype=np.int64)
        self._set_class_obs: npt.NDArray[np.float64] = np.zeros(2, dtype=np.float64)
        self._point_models: dict[str, _AttributeModel] = {}
        self.n_set_batches = 0
        self.n_point_batches = 0

    # -- worker registry ---------------------------------------------------
    def _row(self, worker_id: int) -> int:
        row = self._rows.get(worker_id)
        if row is None:
            row = len(self._row_ids)
            self._rows[worker_id] = row
            self._row_ids.append(worker_id)
            if row >= self._set_obs.shape[0]:
                capacity = self._set_obs.shape[0] + _ROW_GROWTH
                grown = np.zeros((capacity, 2, 2), dtype=np.float64)
                grown[: self._set_obs.shape[0]] = self._set_obs
                self._set_obs = grown
                grown_votes = np.zeros(capacity, dtype=np.int64)
                grown_votes[: self._set_votes.shape[0]] = self._set_votes
                self._set_votes = grown_votes
                for model in self._point_models.values():
                    model.ensure_rows(capacity)
        return row

    @property
    def worker_ids(self) -> tuple[int, ...]:
        """Every worker the estimator has seen (or registered), in
        first-seen order."""
        return tuple(self._row_ids)

    def n_observations(self, worker_id: int) -> int:
        """How many set-query votes by ``worker_id`` have been observed."""
        row = self._rows.get(worker_id)
        return 0 if row is None else int(self._set_votes[row])

    # -- read-time estimates ----------------------------------------------
    def _set_prior_counts(self) -> npt.NDArray[np.float64]:
        p = self.prior_correct
        return self.prior_strength * np.array(
            [[p, 1.0 - p], [1.0 - p, p]], dtype=np.float64
        )

    def confusion(self, worker_id: int) -> npt.NDArray[np.float64]:
        """The worker's current 2x2 set confusion ``P(answer | truth)``
        (row = truth in {no, yes}, column = answer), prior included."""
        row = self._row(worker_id)
        counts = self._set_prior_counts() + self._set_obs[row]
        result: npt.NDArray[np.float64] = counts / counts.sum(axis=1, keepdims=True)
        return result

    def worker_accuracy(self, worker_id: int) -> float:
        """Estimated P(correct) for the worker: the confusion diagonal
        weighted by the current class priors."""
        confusion = self.confusion(worker_id)
        priors = self.class_priors
        return float(priors[0] * confusion[0, 0] + priors[1] * confusion[1, 1])

    @property
    def class_priors(self) -> npt.NDArray[np.float64]:
        """Current class prior ``[P(truth=no), P(truth=yes)]``,
        smoothed by the symmetric pseudo-count prior."""
        counts = self.prior_strength * 0.5 + self._set_class_obs
        result: npt.NDArray[np.float64] = counts / counts.sum()
        return result

    def prior_log_odds(self) -> float:
        """``log P(yes) - log P(no)`` before any vote is seen."""
        priors = self.class_priors
        return float(np.log(priors[1] + _LOG_FLOOR) - np.log(priors[0] + _LOG_FLOOR))

    def vote_log_odds(self, worker_id: int, answer: bool) -> float:
        """The log-likelihood-ratio increment one vote contributes to the
        posterior log-odds of "truth = yes", under the worker's current
        confusion estimate."""
        confusion = self.confusion(worker_id)
        a = 1 if answer else 0
        return float(
            np.log(confusion[1, a] + _LOG_FLOOR) - np.log(confusion[0, a] + _LOG_FLOOR)
        )

    def posterior_log_odds(self, votes: SetVotes) -> float:
        """Posterior log-odds of "truth = yes" after all ``votes``,
        starting from the class prior."""
        total = self.prior_log_odds()
        for worker_id, answer in votes:
            total += self.vote_log_odds(worker_id, bool(answer))
        return total

    # -- streaming updates -------------------------------------------------
    def observe_set_batch(self, hits: Sequence[SetVotes]) -> npt.NDArray[np.float64]:
        """Fold one batch of set-query HITs into the running statistics.

        Runs the damped partial E/M sweeps over the whole batch at once
        (vectorized scatter-adds) and returns the final per-HIT posterior
        ``P(truth = yes)`` under the *updated* estimates.
        """
        hits = [list(votes) for votes in hits]
        n_hits = len(hits)
        posterior = np.zeros(n_hits, dtype=np.float64)
        flat = [(i, w, a) for i, votes in enumerate(hits) for (w, a) in votes]
        if not flat:
            return posterior
        task_idx = np.array([i for i, _, _ in flat], dtype=np.int64)
        rows = np.array([self._row(w) for _, w, _ in flat], dtype=np.int64)
        ans = np.array([1 if a else 0 for _, _, a in flat], dtype=np.int64)

        self._forget()
        prior_counts = self._set_prior_counts()
        n_rows = len(self._row_ids)
        post = np.full((n_hits, 2), 0.5, dtype=np.float64)
        step = self.damping / self.sweeps
        for _ in range(self.sweeps):
            counts = prior_counts[None, :, :] + self._set_obs[:n_rows]
            log_conf = np.log(counts / counts.sum(axis=2, keepdims=True) + _LOG_FLOOR)
            priors = self.class_priors
            log_post = np.tile(np.log(priors + _LOG_FLOOR), (n_hits, 1))
            np.add.at(log_post, task_idx, log_conf[rows, :, ans])
            log_post -= log_post.max(axis=1, keepdims=True)
            post = np.exp(log_post)
            post /= post.sum(axis=1, keepdims=True)
            for truth in (0, 1):
                np.add.at(
                    self._set_obs[:, truth, :],
                    (rows, ans),
                    step * post[task_idx, truth],
                )
            self._set_class_obs += step * post.sum(axis=0)
        np.add.at(self._set_votes, rows, 1)
        self.n_set_batches += 1
        posterior = post[:, 1].copy()
        return posterior

    def observe_point_batch(self, hits: Sequence[PointVotes]) -> list[dict[str, str]]:
        """Fold one batch of point-query HITs into the per-attribute
        statistics and return the MAP ``{attribute: value}`` labeling of
        each HIT under the updated estimates."""
        hits = [list(votes) for votes in hits]
        labels: list[dict[str, str]] = [{} for _ in hits]
        attributes: dict[str, list[tuple[int, int, str]]] = {}
        for i, votes in enumerate(hits):
            for worker_id, row_values in votes:
                for attribute, value in row_values.items():
                    attributes.setdefault(attribute, []).append((i, worker_id, value))
        if not attributes:
            return labels
        for model in self._point_models.values():
            model.obs *= self.decay
            model.class_obs *= self.decay
        for attribute, flat in attributes.items():
            model = self._point_models.get(attribute)
            if model is None:
                model = _AttributeModel(self._set_obs.shape[0])
                self._point_models[attribute] = model
            codes = np.array([model.code_for(v) for _, _, v in flat], dtype=np.int64)
            rows = np.array([self._row(w) for _, w, _ in flat], dtype=np.int64)
            model.ensure_rows(self._set_obs.shape[0])
            task_idx = np.array([i for i, _, _ in flat], dtype=np.int64)
            post = self._point_posterior(model, task_idx, rows, codes, len(hits))
            step = self.damping
            k = len(model.values)
            for truth in range(k):
                np.add.at(
                    model.obs[:, truth, :],
                    (rows, codes),
                    step * post[task_idx, truth],
                )
            model.class_obs += step * post.sum(axis=0)
            map_codes = post.argmax(axis=1)
            seen = {int(i) for i, _, _ in flat}
            for i in seen:
                labels[i][attribute] = model.values[int(map_codes[i])]
        self.n_point_batches += 1
        return labels

    def point_posteriors(
        self, votes: PointVotes
    ) -> dict[str, dict[str, float]]:
        """Per-attribute posterior over values for one HIT's votes, under
        the current estimates (no statistics are updated)."""
        result: dict[str, dict[str, float]] = {}
        per_attribute: dict[str, list[tuple[int, str]]] = {}
        for worker_id, row_values in votes:
            for attribute, value in row_values.items():
                per_attribute.setdefault(attribute, []).append((worker_id, value))
        for attribute, pairs in per_attribute.items():
            model = self._point_models.get(attribute)
            if model is None:
                model = _AttributeModel(self._set_obs.shape[0])
                self._point_models[attribute] = model
            codes = np.array([model.code_for(v) for _, v in pairs], dtype=np.int64)
            rows = np.array([self._row(w) for w, _ in pairs], dtype=np.int64)
            model.ensure_rows(self._set_obs.shape[0])
            task_idx = np.zeros(len(pairs), dtype=np.int64)
            post = self._point_posterior(model, task_idx, rows, codes, 1)
            result[attribute] = {
                value: float(post[0, code])
                for code, value in enumerate(model.values)
            }
        return result

    def _point_posterior(
        self,
        model: _AttributeModel,
        task_idx: npt.NDArray[np.int64],
        rows: npt.NDArray[np.int64],
        codes: npt.NDArray[np.int64],
        n_hits: int,
    ) -> npt.NDArray[np.float64]:
        k = len(model.values)
        p = self.prior_correct if k > 1 else 1.0
        off = (1.0 - p) / (k - 1) if k > 1 else 0.0
        prior_counts = self.prior_strength * np.full((k, k), off, dtype=np.float64)
        np.fill_diagonal(prior_counts, self.prior_strength * p)
        counts = prior_counts[None, :, :] + model.obs[: len(self._row_ids)]
        log_conf = np.log(counts / counts.sum(axis=2, keepdims=True) + _LOG_FLOOR)
        class_counts = self.prior_strength / k + model.class_obs
        priors = class_counts / class_counts.sum()
        log_post = np.tile(np.log(priors + _LOG_FLOOR), (n_hits, 1))
        np.add.at(log_post, task_idx, log_conf[rows, :, codes])
        log_post -= log_post.max(axis=1, keepdims=True)
        post: npt.NDArray[np.float64] = np.exp(log_post)
        post /= post.sum(axis=1, keepdims=True)
        return post

    def _forget(self) -> None:
        if self.decay < 1.0:
            self._set_obs *= self.decay
            self._set_class_obs *= self.decay

    # -- serializable state ------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """The estimator's complete mutable state as JSON-compatible
        primitives; nested inside the versioned
        :class:`~repro.crowd.reliability.ReliabilitySnapshot` envelope."""
        n_rows = len(self._row_ids)
        return {
            "workers": list(self._row_ids),
            "set_obs": self._set_obs[:n_rows].tolist(),
            "set_votes": self._set_votes[:n_rows].tolist(),
            "set_class_obs": self._set_class_obs.tolist(),
            "point": {
                attribute: model.state_dict()
                for attribute, model in sorted(self._point_models.items())
            },
            "n_set_batches": self.n_set_batches,
            "n_point_batches": self.n_point_batches,
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`state_dict` output bit-identically (floats
        survive JSON round-trips exactly)."""
        workers = [int(worker_id) for worker_id in state["workers"]]
        self._rows = {worker_id: row for row, worker_id in enumerate(workers)}
        self._row_ids = workers
        n_rows = len(workers)
        capacity = max(n_rows, _ROW_GROWTH)
        self._set_obs = np.zeros((capacity, 2, 2), dtype=np.float64)
        self._set_obs[:n_rows] = np.asarray(
            state["set_obs"], dtype=np.float64
        ).reshape(n_rows, 2, 2)
        self._set_votes = np.zeros(capacity, dtype=np.int64)
        self._set_votes[:n_rows] = np.asarray(state["set_votes"], dtype=np.int64)
        self._set_class_obs = np.asarray(
            state["set_class_obs"], dtype=np.float64
        ).reshape(2)
        self._point_models = {
            str(attribute): _AttributeModel.from_state(model_state, capacity)
            for attribute, model_state in state["point"].items()
        }
        self.n_set_batches = int(state["n_set_batches"])
        self.n_point_batches = int(state["n_point_batches"])
