"""The crowd platform simulator.

Publishes HITs the way the paper's MTurk deployment does (§6.3.1): each
HIT is assigned to ``assignments_per_hit`` workers (the paper uses 3),
individual answers are aggregated by majority vote, and screening policies
decide which workers are eligible at all. The platform keeps a full audit
trail (:class:`~repro.crowd.queries.HitRecord`) and a cost ledger, from
which it reports the same statistics the paper does — raw worker error
rate, aggregated error rate, dollars spent.

The platform answers from the dataset's hidden ground truth; algorithms
must route through :mod:`repro.crowd.oracle` and never touch it directly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.crowd.aggregation import DawidSkene, majority_point, majority_vote
from repro.crowd.pricing import CostLedger, FixedPricing, PricingModel
from repro.crowd.quality import QC_MAJORITY_ONLY, ScreeningPolicy, screen_workers
from repro.crowd.queries import HitRecord, PointQuery, SetQuery
from repro.crowd.reliability.policy import AdaptiveAssignmentPolicy
from repro.crowd.workers import Worker
from repro.data.dataset import LabeledDataset
from repro.data.membership import membership_index_for
from repro.data.sharded import ShardedDataset
from repro.errors import InvalidParameterError, NoEligibleWorkersError

__all__ = ["CrowdPlatform"]


class CrowdPlatform:
    """A simulated crowdsourcing marketplace bound to one dataset.

    Parameters
    ----------
    dataset:
        The dataset whose hidden labels workers answer from — a dense
        :class:`~repro.data.dataset.LabeledDataset` or a sharded
        out-of-core :class:`~repro.data.sharded.ShardedDataset` (the
        hidden-truth computation then streams through the sharded
        membership index).
    workers:
        The full worker population; screening policies select the eligible
        subset at construction time.
    rng:
        Source of all randomness (worker selection and worker errors).
    assignments_per_hit:
        Redundancy per HIT (the paper uses 3 with majority vote).
    screening:
        Quality-control policies (see :mod:`repro.crowd.quality`).
    pricing:
        The fixed-price model.
    record_hits:
        Keep per-HIT audit records. Disable for very large simulations to
        save memory; statistics counters stay accurate either way.
    reliability:
        Optional :class:`~repro.crowd.reliability.AdaptiveAssignmentPolicy`.
        When set, HITs are routed adaptively — trusted workers first,
        quarantined workers excluded, vote collection stopped once the
        posterior log-odds clears the policy's threshold — instead of the
        fixed ``assignments_per_hit`` fan-out. The charging path is
        unchanged (every collected vote is billed through the pricing
        model); with ``reliability=None`` the platform's rng stream and
        behavior are bit-identical to previous releases.
    record_votes:
        Buffer per-HIT ``(worker_id, answer)`` set votes for
        :meth:`drain_set_votes` (how backends surface vote attributions
        to an external estimator). Defaults to ``True`` iff
        ``reliability`` is set.
    """

    def __init__(
        self,
        dataset: "LabeledDataset | ShardedDataset",
        workers: Sequence[Worker],
        rng: np.random.Generator,
        *,
        assignments_per_hit: int = 3,
        screening: Sequence[ScreeningPolicy] = QC_MAJORITY_ONLY,
        pricing: PricingModel | None = None,
        record_hits: bool = True,
        reliability: AdaptiveAssignmentPolicy | None = None,
        record_votes: bool | None = None,
    ) -> None:
        if assignments_per_hit <= 0:
            raise InvalidParameterError("assignments_per_hit must be positive")
        self.dataset = dataset
        self.membership_index = membership_index_for(dataset)
        self.rng = rng
        self.assignments_per_hit = assignments_per_hit
        self.eligible_workers = screen_workers(workers, screening, rng)
        if len(self.eligible_workers) < assignments_per_hit:
            raise NoEligibleWorkersError(
                f"screening left {len(self.eligible_workers)} eligible workers, "
                f"need at least {assignments_per_hit}"
            )
        self.ledger = CostLedger(pricing=pricing or FixedPricing())
        self.record_hits = record_hits
        self.reliability = reliability
        self.record_votes = (
            reliability is not None if record_votes is None else record_votes
        )
        self._pending_set_votes: list[tuple[tuple[int, bool], ...]] = []
        self.hit_records: list[HitRecord] = []
        self.n_raw_answers = 0
        self.n_raw_incorrect = 0
        self.n_aggregated_incorrect = 0

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def _assign_workers(self) -> list[Worker]:
        chosen = self.rng.choice(
            len(self.eligible_workers), size=self.assignments_per_hit, replace=False
        )
        return [self.eligible_workers[int(i)] for i in chosen]

    def publish_set_query(self, query: SetQuery) -> bool:
        """Publish a set query; returns the aggregated answer.

        The HIT shows ``len(query.indices)`` images, which is what a
        size-dependent pricing model bills for. With ``reliability=None``
        (the default) this is the paper's fixed-redundancy majority vote;
        with a policy attached, routing and stopping are adaptive.
        """
        index_array = np.asarray(query.indices, dtype=np.int64)
        truth = self.membership_index.any_match(query.predicate, index_array)
        if self.reliability is not None:
            return self._publish_set_adaptive(query, index_array, truth)
        assigned = self._assign_workers()
        answers = tuple(worker.answer_set(truth, self.rng) for worker in assigned)
        aggregated = bool(majority_vote(answers, rng=self.rng))
        if self.record_votes:
            self._pending_set_votes.append(
                tuple(
                    (worker.worker_id, bool(answer))
                    for worker, answer in zip(assigned, answers)
                )
            )
        self._account(
            query, assigned, answers, aggregated, truth,
            n_images=max(len(index_array), 1),
        )
        return aggregated

    def _publish_set_adaptive(
        self, query: SetQuery, index_array: np.ndarray, truth: bool
    ) -> bool:
        """Adaptive set-query path: sequential votes from trusted workers,
        stopped on posterior log-odds; every vote is billed as usual."""
        policy = self.reliability
        assert policy is not None
        order, probe = policy.plan(self.eligible_workers, self.rng)
        assigned: list[Worker] = []
        answers: list[bool] = []
        log_odds = policy.prior_log_odds()
        for pos in order:
            worker = self.eligible_workers[pos]
            answer = bool(worker.answer_set(truth, self.rng))
            assigned.append(worker)
            answers.append(answer)
            log_odds += policy.vote_log_odds(worker.worker_id, answer)
            if policy.should_stop(log_odds, len(answers)):
                break
        aggregated = policy.decide(log_odds)
        n_probes = 0
        if probe is not None:
            # Paid probation probe: feeds the estimator, never the verdict.
            probe_worker = self.eligible_workers[probe]
            assigned.append(probe_worker)
            answers.append(bool(probe_worker.answer_set(truth, self.rng)))
            n_probes = 1
        votes = tuple(
            (worker.worker_id, answer)
            for worker, answer in zip(assigned, answers)
        )
        policy.observe_set(votes, n_probes=n_probes)
        if self.record_votes:
            self._pending_set_votes.append(votes)
        self._account(
            query, assigned, tuple(answers), aggregated, truth,
            n_images=max(len(index_array), 1),
        )
        return aggregated

    def publish_point_query(self, query: PointQuery) -> dict[str, str]:
        """Publish a point query; returns the attribute-wise aggregated
        labels (majority vote, or the reliability policy's MAP)."""
        truth = self.dataset.value_row(query.index)
        if self.reliability is not None:
            return self._publish_point_adaptive(query, truth)
        assigned = self._assign_workers()
        answers = tuple(
            worker.answer_point(truth, self.dataset.schema, self.rng)
            for worker in assigned
        )
        aggregated = majority_point(answers, rng=self.rng)
        self._account(query, assigned, answers, aggregated, truth, n_images=1)
        return aggregated

    def _publish_point_adaptive(
        self, query: PointQuery, truth: dict[str, str]
    ) -> dict[str, str]:
        """Adaptive point-query path: sequential labelings from trusted
        workers, stopped once every attribute's posterior margin clears
        the policy threshold."""
        policy = self.reliability
        assert policy is not None
        order, probe = policy.plan(self.eligible_workers, self.rng)
        assigned: list[Worker] = []
        answers: list[dict[str, str]] = []
        votes: list[tuple[int, dict[str, str]]] = []
        for pos in order:
            worker = self.eligible_workers[pos]
            answer = worker.answer_point(truth, self.dataset.schema, self.rng)
            assigned.append(worker)
            answers.append(answer)
            votes.append((worker.worker_id, answer))
            posteriors = policy.estimator.point_posteriors(votes)
            if policy.should_stop_point(posteriors, len(answers)):
                break
        # The verdict uses only verdict-bearing votes, decided before the
        # estimator absorbs them (mirrors the set-query path).
        posteriors = policy.estimator.point_posteriors(votes)
        aggregated = {
            attribute: max(values, key=values.__getitem__)
            for attribute, values in posteriors.items()
        }
        n_probes = 0
        if probe is not None:
            probe_worker = self.eligible_workers[probe]
            probe_answer = probe_worker.answer_point(
                truth, self.dataset.schema, self.rng
            )
            assigned.append(probe_worker)
            answers.append(probe_answer)
            votes.append((probe_worker.worker_id, probe_answer))
            n_probes = 1
        policy.observe_point(votes, n_probes=n_probes)
        self._account(
            query, assigned, tuple(answers), aggregated, truth, n_images=1
        )
        return aggregated

    def drain_set_votes(self) -> list[tuple[tuple[int, bool], ...]]:
        """Return-and-clear the buffered per-HIT set-vote attributions
        (``record_votes=True``); backends call this right after a
        dispatch to ship worker identities along with answers."""
        votes = self._pending_set_votes
        self._pending_set_votes = []
        return votes

    def _account(
        self,
        query: SetQuery | PointQuery,
        assigned: list[Worker],
        answers: tuple,
        aggregated,
        truth,
        *,
        n_images: int,
    ) -> None:
        price = self.ledger.charge(
            is_set_query=isinstance(query, SetQuery),
            n_assignments=len(assigned),
            n_images=n_images,
        )
        self.n_raw_answers += len(answers)
        self.n_raw_incorrect += sum(1 for answer in answers if answer != truth)
        if aggregated != truth:
            self.n_aggregated_incorrect += 1
        if self.record_hits:
            self.hit_records.append(
                HitRecord(
                    query=query,
                    worker_ids=tuple(worker.worker_id for worker in assigned),
                    answers=answers,
                    aggregated=aggregated,
                    truth=truth,
                    price=price,
                )
            )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def raw_error_rate(self) -> float:
        """Fraction of individual worker answers that were incorrect —
        the paper reports 1.36 % for its live runs."""
        if self.n_raw_answers == 0:
            return 0.0
        return self.n_raw_incorrect / self.n_raw_answers

    @property
    def aggregated_error_rate(self) -> float:
        """Fraction of HITs whose aggregated answer was incorrect."""
        if self.ledger.n_hits == 0:
            return 0.0
        return self.n_aggregated_incorrect / self.ledger.n_hits

    def reaggregate_set_hits_with_dawid_skene(self) -> tuple[int, int]:
        """Re-run truth inference over all recorded *set* HITs with
        Dawid–Skene instead of majority vote.

        Returns
        -------
        (n_majority_errors, n_dawid_skene_errors)
            Aggregation errors under each scheme, over the same records.
            Requires ``record_hits=True``.
        """
        records = [r for r in self.hit_records if isinstance(r.query, SetQuery)]
        if not records:
            return (0, 0)
        responses = {
            task_id: {
                worker: int(bool(answer))
                for worker, answer in zip(record.worker_ids, record.answers)
            }
            for task_id, record in enumerate(records)
        }
        inferred = DawidSkene(n_classes=2).fit_predict(responses)
        majority_errors = sum(1 for r in records if r.aggregated != r.truth)
        ds_errors = sum(
            1
            for task_id, record in enumerate(records)
            if bool(inferred[task_id]) != record.truth
        )
        return (majority_errors, ds_errors)

    def summary(self) -> str:
        return (
            f"platform[{self.dataset.name}]: {self.ledger.summary()}; "
            f"raw error {self.raw_error_rate:.2%}, "
            f"aggregated error {self.aggregated_error_rate:.2%}"
        )
