"""repro — crowdsourced data-coverage auditing for image datasets.

A from-scratch reproduction of *"Data Coverage for Detecting
Representation Bias in Image Datasets: A Crowdsourcing Approach"*
(Mousavi, Shahbazi, Asudeh; EDBT 2024).

Quick tour
----------
>>> import numpy as np
>>> from repro import (AuditReport, AuditSession, GroupAuditSpec,
...                    GroundTruthOracle, binary_dataset, group)
>>> ds = binary_dataset(10_000, 30, rng=np.random.default_rng(0))
>>> with AuditSession(GroundTruthOracle(ds), engine=True) as session:
...     report = session.run(GroupAuditSpec(predicate=group(gender="female"),
...                                         tau=50, n=50))
>>> report.result.covered, report.result.count
(False, 30)
>>> AuditReport.from_json(report.to_json()) == report
True

The legacy function forms are thin wrappers over the same specs:

>>> from repro import group_coverage
>>> result = group_coverage(GroundTruthOracle(ds), group(gender="female"),
...                         tau=50, n=50, dataset_size=len(ds))
>>> result.covered, result.count
(False, 30)

Packages
--------
* :mod:`repro.service` — multi-tenant audit jobs: ``AuditService``,
  fair-share scheduling, ``JobStore`` crash recovery.
* :mod:`repro.audit` — the blessed single-caller API: ``AuditSession``,
  declarative specs, serializable ``AuditReport`` envelopes,
  checkpoint/resume.
* :mod:`repro.core` — the paper's algorithms (Group-Coverage and friends).
* :mod:`repro.engine` — asynchronous query execution: the non-blocking
  scheduler core and the answer cache.
* :mod:`repro.crowd` — the crowdsourcing platform simulator, oracles,
  and pluggable crowd backends (inline / latency-model / threaded).
* :mod:`repro.data` — schemas, group predicates, datasets, generators.
* :mod:`repro.patterns` — pattern graph, Pattern-Combiner, MUPs.
* :mod:`repro.classifiers` — simulated pre-trained predictors + numpy MLP.
* :mod:`repro.downstream` — the §6.4 disparity experiments.
* :mod:`repro.experiments` — one runner per paper table/figure.
"""

from repro.audit import (
    AuditEntry,
    AuditProgress,
    AuditReport,
    AuditSession,
    BaseAuditSpec,
    ClassifierAuditSpec,
    GroupAuditSpec,
    IntersectionalAuditSpec,
    MultipleAuditSpec,
)
from repro.core import (
    ClassifierCoverageResult,
    GroupCoverageResult,
    GroupCoverageStepper,
    GroupEntry,
    IntersectionalCoverageReport,
    MultipleCoverageReport,
    TaskUsage,
    base_coverage,
    classifier_coverage,
    group_coverage,
    intersectional_coverage,
    lower_bound_tasks,
    multiple_coverage,
    upper_bound_tasks,
)
from repro.crowd import (
    CrowdBackend,
    CrowdOracle,
    CrowdPlatform,
    FlakyOracle,
    GroundTruthOracle,
    InlineBackend,
    LatencyModel,
    LatencyModelBackend,
    Oracle,
    ThreadedBackend,
    make_worker_pool,
)
from repro.data import (
    Attribute,
    Group,
    LabeledDataset,
    Negation,
    Schema,
    ShardedDataset,
    ShardedMembershipIndex,
    ShardExecutor,
    SuperGroup,
    binary_dataset,
    group,
    intersectional_dataset,
    single_attribute_dataset,
)
from repro.engine import AnswerCache, EngineStats, QueryEngine
from repro.errors import (
    BudgetExceededError,
    CheckpointVersionError,
    InvalidParameterError,
    JobFailedError,
    ReproError,
    SchemaError,
    UnknownGroupError,
)
from repro.patterns import Pattern, PatternGraph, assess_tabular_coverage
from repro.service import (
    AuditService,
    DirectoryJobStore,
    InMemoryJobStore,
    JobHandle,
    JobStatus,
    JobStore,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # audit (the blessed API)
    "AuditSession",
    "AuditProgress",
    "AuditReport",
    "AuditEntry",
    "GroupAuditSpec",
    "BaseAuditSpec",
    "MultipleAuditSpec",
    "IntersectionalAuditSpec",
    "ClassifierAuditSpec",
    # core
    "group_coverage",
    "base_coverage",
    "multiple_coverage",
    "intersectional_coverage",
    "classifier_coverage",
    "upper_bound_tasks",
    "lower_bound_tasks",
    "TaskUsage",
    "GroupCoverageResult",
    "GroupEntry",
    "MultipleCoverageReport",
    "IntersectionalCoverageReport",
    "ClassifierCoverageResult",
    "GroupCoverageStepper",
    # engine
    "QueryEngine",
    "AnswerCache",
    "EngineStats",
    # crowd
    "Oracle",
    "GroundTruthOracle",
    "CrowdOracle",
    "FlakyOracle",
    "CrowdPlatform",
    "make_worker_pool",
    # crowd backends
    "CrowdBackend",
    "InlineBackend",
    "LatencyModel",
    "LatencyModelBackend",
    "ThreadedBackend",
    # service
    "AuditService",
    "JobHandle",
    "JobStatus",
    "JobStore",
    "InMemoryJobStore",
    "DirectoryJobStore",
    # data
    "Attribute",
    "Schema",
    "Group",
    "SuperGroup",
    "Negation",
    "group",
    "LabeledDataset",
    "ShardedDataset",
    "ShardedMembershipIndex",
    "ShardExecutor",
    "binary_dataset",
    "single_attribute_dataset",
    "intersectional_dataset",
    # patterns
    "Pattern",
    "PatternGraph",
    "assess_tabular_coverage",
    # errors
    "ReproError",
    "InvalidParameterError",
    "SchemaError",
    "UnknownGroupError",
    "BudgetExceededError",
    "CheckpointVersionError",
    "JobFailedError",
]
