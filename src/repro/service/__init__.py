"""Multi-tenant audit jobs over one shared crowd backend.

:class:`AuditService` schedules concurrent audits for many tenants
(fair-share), overlaps their crowd latency through the pluggable
:mod:`repro.crowd.backends` layer, and checkpoints every paid answer
plus per-job state into a :class:`JobStore` so a crashed service
resumes without re-asking anything. See ``docs/architecture.md`` for
the layering and the README for a quickstart.
"""

from repro.service.jobs import JobEvent, JobHandle, JobStatus
from repro.service.service import AuditService
from repro.service.store import DirectoryJobStore, InMemoryJobStore, JobStore

__all__ = [
    "AuditService",
    "JobHandle",
    "JobEvent",
    "JobStatus",
    "JobStore",
    "InMemoryJobStore",
    "DirectoryJobStore",
]
