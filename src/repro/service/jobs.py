"""Job-level value objects of the multi-tenant audit service.

A *job* is one audit spec submitted by one tenant. The service tracks it
through a small state machine::

    QUEUED ──▶ RUNNING ──▶ SUCCEEDED
       │          │  ├───▶ FAILED      (the audit raised)
       │          │  └───▶ SUSPENDED   (budget exhausted; resumable)
       └──────────┴──────▶ CANCELLED

Callers hold a :class:`JobHandle` — a thin, stable view over the
service's internal record — and read :attr:`~JobHandle.status`,
:meth:`~JobHandle.events`, :meth:`~JobHandle.result`, or
:meth:`~JobHandle.cancel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro.audit.report import AuditReport
    from repro.audit.specs import AuditSpec

__all__ = ["JobStatus", "JobEvent", "JobHandle"]


class JobStatus(str, Enum):
    """Lifecycle state of one submitted audit job.

    Examples
    --------
    >>> JobStatus("queued") is JobStatus.QUEUED
    True
    >>> JobStatus.SUCCEEDED.terminal, JobStatus.SUSPENDED.terminal
    (True, False)
    """

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"
    #: Interrupted by budget exhaustion — resumable from a checkpoint,
    #: or cancellable like a queued job.
    SUSPENDED = "suspended"

    @property
    def terminal(self) -> bool:
        """True when the job will never run again in this service."""
        return self in (JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass(frozen=True)
class JobEvent:
    """One timestamped transition in a job's life.

    Attributes
    ----------
    stage:
        ``"submitted"``, ``"started"``, ``"succeeded"``, ``"failed"``,
        ``"cancelled"``, ``"suspended"``, or ``"resumed"``.
    detail:
        Human-readable context (error text, resume provenance).
    tasks:
        The service ledger's total task count when the event fired — the
        crowd bill so far, service-wide.
    round:
        The service's scheduler-round counter when the event fired.

    Examples
    --------
    >>> event = JobEvent(stage="submitted", detail="tenant=default", tasks=0)
    >>> JobEvent.from_dict(event.to_dict()) == event
    True
    """

    stage: str
    detail: str = ""
    tasks: int = 0
    round: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form persisted inside job records."""
        return {
            "stage": self.stage,
            "detail": self.detail,
            "tasks": self.tasks,
            "round": self.round,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        try:
            stage = str(data["stage"])
        except KeyError as error:
            raise InvalidParameterError(
                "job event payload is missing field 'stage'"
            ) from error
        return cls(
            stage=stage,
            detail=str(data.get("detail", "")),
            tasks=int(data.get("tasks", 0)),
            round=int(data.get("round", 0)),
        )


class JobHandle:
    """The caller's view of one submitted job.

    Handles stay valid for the service's lifetime (and across
    checkpoint/resume — a resumed service re-issues handles by job id).
    All methods delegate to the owning service; the handle holds no
    state of its own beyond identity.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import AuditService, GroundTruthOracle, GroupAuditSpec
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.groups import group
    >>> ds = binary_dataset(500, 10, rng=np.random.default_rng(0))
    >>> with AuditService(GroundTruthOracle(ds)) as service:
    ...     handle = service.submit(GroupAuditSpec(predicate=group(gender="female"),
    ...                                            tau=5), tenant="team-a")
    ...     report = handle.result()        # drains the service
    >>> handle.tenant, handle.status.value, report.result.covered
    ('team-a', 'succeeded', True)
    """

    __slots__ = ("_service", "job_id")

    def __init__(self, service, job_id: str) -> None:
        self._service = service
        self.job_id = job_id

    # -- identity ---------------------------------------------------------
    @property
    def spec(self) -> "AuditSpec":
        """The audit spec this job was submitted with."""
        return self._service._job(self.job_id).spec

    @property
    def tenant(self) -> str:
        """The tenant the job is billed and fair-share-scheduled under."""
        return self._service._job(self.job_id).tenant

    @property
    def priority(self) -> int:
        """Within-tenant queue priority (higher activates first)."""
        return self._service._job(self.job_id).priority

    # -- observation ------------------------------------------------------
    @property
    def status(self) -> JobStatus:
        """The job's current :class:`JobStatus`."""
        return self._service.status(self.job_id)

    def events(self) -> tuple[JobEvent, ...]:
        """The job's transition trail, oldest first."""
        return self._service.events(self.job_id)

    def result(self, *, drain: bool = True) -> "AuditReport":
        """The job's :class:`~repro.audit.report.AuditReport`.

        With ``drain=True`` (default) the service is stepped until this
        job reaches a terminal state. Raises
        :class:`~repro.errors.JobFailedError` for failed or cancelled
        jobs, and :class:`~repro.errors.InvalidParameterError` when the
        job is not terminal and ``drain=False``.
        """
        return self._service.result(self.job_id, drain=drain)

    def cancel(self) -> bool:
        """Withdraw the job; True when it was still cancellable.

        Terminal jobs are an idempotent no-op (``False``); unknown ids
        raise — see :meth:`AuditService.cancel` for the full contract."""
        return self._service.cancel(self.job_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"JobHandle({self.job_id!r}, {self.status.value})"
