"""Durable job state: the :class:`JobStore` behind service checkpointing.

Crowd answers cost money and audits take wall-clock time, so a crashed
service must come back without losing either. The service persists two
kinds of state:

* **per-job records** — spec, tenant, priority, seed, status, events,
  and (for finished jobs) the full result report;
* **the answer log** — every set/point answer the crowd was paid for,
  shared across jobs (it feeds the replay proxy and the answer cache on
  resume, which is what makes resumed audits re-ask nothing).

Two stores ship: :class:`InMemoryJobStore` (tests, ephemeral services)
and :class:`DirectoryJobStore` (one JSON file per job under ``jobs/``
plus ``answers.json``, written atomically via rename so a crash
mid-checkpoint never corrupts the previous one).
"""

from __future__ import annotations

import json
import os
import secrets
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any

__all__ = ["JobStore", "InMemoryJobStore", "DirectoryJobStore"]


class JobStore(ABC):
    """Persistence boundary for :class:`~repro.service.AuditService`.

    Implementations must make ``save_job``/``save_answers`` atomic per
    call (the service may crash between calls, never mid-record).

    Examples
    --------
    >>> from repro.service import InMemoryJobStore, JobStore
    >>> store = InMemoryJobStore()              # any JobStore
    >>> isinstance(store, JobStore)
    True
    >>> store.save_job("job-00000", {"version": 1, "seq": 0})
    >>> sorted(store.load_jobs())
    ['job-00000']
    """

    @abstractmethod
    def save_job(self, job_id: str, record: dict[str, Any]) -> None:
        """Persist (create or overwrite) one job's record."""

    @abstractmethod
    def load_jobs(self) -> dict[str, dict[str, Any]]:
        """All persisted job records, keyed by job id."""

    @abstractmethod
    def save_answers(self, payload: dict[str, Any]) -> None:
        """Persist the shared answer log (full snapshot, not a delta)."""

    @abstractmethod
    def load_answers(self) -> dict[str, Any] | None:
        """The last persisted answer log, or ``None`` for a fresh store."""


class InMemoryJobStore(JobStore):
    """Process-local store — checkpoint/resume without a filesystem.

    Useful in tests and for handing state between services in one
    process; contents die with the process.

    Examples
    --------
    >>> store = InMemoryJobStore()
    >>> store.load_answers() is None            # fresh store
    True
    >>> store.save_answers({"version": 1, "set_answers": []})
    >>> store.load_answers()["version"]
    1
    """

    def __init__(self) -> None:
        self._jobs: dict[str, dict[str, Any]] = {}
        self._answers: dict[str, Any] | None = None

    def save_job(self, job_id: str, record: dict[str, Any]) -> None:
        """Store one job record (JSON round-tripped, so in-memory resume
        exercises exactly the durable path and mutations cannot leak)."""
        self._jobs[job_id] = json.loads(json.dumps(record))

    def load_jobs(self) -> dict[str, dict[str, Any]]:
        """Every stored job record, keyed by job id."""
        return {job_id: dict(record) for job_id, record in self._jobs.items()}

    def save_answers(self, payload: dict[str, Any]) -> None:
        """Replace the shared answer-log snapshot."""
        self._answers = json.loads(json.dumps(payload))

    def load_answers(self) -> dict[str, Any] | None:
        """The last answer-log snapshot, or ``None`` when never saved."""
        return None if self._answers is None else dict(self._answers)


class DirectoryJobStore(JobStore):
    """Filesystem store: ``<root>/jobs/<job_id>.json`` + ``<root>/answers.json``.

    Every write lands in a temporary file first and is moved into place
    with :func:`os.replace`, so readers (and the resuming service) only
    ever see complete records.

    Examples
    --------
    >>> import tempfile
    >>> store = DirectoryJobStore(tempfile.mkdtemp())
    >>> store.save_job("job-00000", {"version": 1, "seq": 0})
    >>> store.load_jobs()["job-00000"]["seq"]
    0
    >>> sorted(p.name for p in store.jobs_dir.glob("*.json"))
    ['job-00000.json']
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    def _write_atomic(self, path: Path, payload: dict[str, Any]) -> None:
        # The scratch name must be unique per write: with a shared name,
        # two processes checkpointing the same directory can rename each
        # other's scratch out from underneath (FileNotFoundError, or
        # publishing a peer's snapshot). Pinned by
        # tests/service/test_store_concurrency.py.
        scratch = path.with_suffix(
            path.suffix + f".tmp-{os.getpid()}-{secrets.token_hex(4)}"
        )
        try:
            scratch.write_text(json.dumps(payload))
            os.replace(scratch, path)
        except BaseException:
            try:
                os.unlink(scratch)
            except FileNotFoundError:
                pass
            raise

    def save_job(self, job_id: str, record: dict[str, Any]) -> None:
        """Atomically write ``jobs/<job_id>.json``."""
        self._write_atomic(self.jobs_dir / f"{job_id}.json", record)

    def load_jobs(self) -> dict[str, dict[str, Any]]:
        """Every ``jobs/*.json`` record, keyed by file stem (= job id)."""
        records: dict[str, dict[str, Any]] = {}
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                records[path.stem] = json.loads(path.read_text())
            except FileNotFoundError:
                # Unlinked between the directory scan and the read by a
                # concurrent process; a vanished record is simply absent.
                continue
        return records

    def save_answers(self, payload: dict[str, Any]) -> None:
        """Atomically write ``answers.json`` (a full snapshot)."""
        self._write_atomic(self.root / "answers.json", payload)

    def load_answers(self) -> dict[str, Any] | None:
        """The persisted answer log, or ``None`` for a fresh directory."""
        # try/except instead of an exists() pre-check: the check-then-read
        # window would race a concurrent process removing the file.
        try:
            return json.loads((self.root / "answers.json").read_text())
        except FileNotFoundError:
            return None
