"""`AuditService`: many audits, many tenants, one crowd.

The :class:`~repro.audit.AuditSession` binds execution state for *one*
caller; the service multiplexes **jobs** — audit specs submitted by any
number of tenants — over one shared
:class:`~repro.crowd.backends.CrowdBackend`, one
:class:`~repro.engine.QueryEngine`, and one answer cache::

    service = AuditService(oracle, backend=lambda o: LatencyModelBackend(o))
    handle = service.submit(GroupAuditSpec(predicate=female, tau=50),
                            tenant="fairness-team", priority=1)
    service.drain()                  # or step() from your own loop
    report = handle.result()

Three properties fall out of the shared engine:

* **Overlap.** Every admitted audit keeps its frontier in flight at
  once; with a latency-modeling (or real) backend, eight concurrent
  audits finish in roughly the wall-clock of one
  (``benchmarks/bench_service.py`` measures it).
* **Cross-job dedup.** Two tenants asking the same question pay once —
  the engine's in-flight table and answer cache do not care which job a
  query came from.
* **Crash safety.** Wrapped in a recording proxy, every paid answer can
  be checkpointed into a :class:`~repro.service.JobStore` together with
  per-job records; :meth:`AuditService.resume` revives every unfinished
  job and replays the paid prefix for free.

Scheduling is cooperative and fair-share: the service admits at most
``max_active_jobs`` concurrently, picking the next job from the tenant
with the fewest running jobs (ties broken by priority, then submission
order), so one tenant's bulk submission cannot starve another's single
urgent audit.

Group-coverage jobs interleave fully (they are steppers on the shared
engine). Other spec kinds execute when activated, blocking the service
loop for their duration — but still on the shared engine, so concurrent
group jobs keep advancing underneath them and every answer lands in the
shared cache.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable

import numpy as np

from repro.audit.proxy import RecordingOracleProxy
from repro.audit.report import AuditEntry, AuditReport
from repro.audit.runners import make_group_stepper, run_spec
from repro.audit.serialization import (
    point_answers_from_list,
    point_answers_to_list,
    set_answer_to_dict,
    set_answers_from_list,
)
from repro.audit.session import _infer_dataset_size, _reliability_platform
from repro.audit.specs import AuditSpec, GroupAuditSpec, spec_from_dict
from repro.core.results import LedgerWindow, TaskUsage
from repro.crowd.backends.base import CrowdBackend
from repro.crowd.oracle import Oracle
from repro.crowd.reliability.serialization import ReliabilitySnapshot
from repro.engine.scheduler import Flow, QueryEngine
from repro.errors import (
    BudgetExceededError,
    CheckpointVersionError,
    InvalidParameterError,
    JobFailedError,
)
from repro.service.jobs import JobEvent, JobHandle, JobStatus
from repro.service.store import JobStore

__all__ = ["AuditService"]

#: Version 2 adds the ``reliability`` section to the answer log (a
#: versioned ReliabilitySnapshot payload, or ``None`` for services
#: without a reliability-enabled platform); version-1 checkpoints
#: remain readable.
_CHECKPOINT_VERSION = 2
_READABLE_CHECKPOINT_VERSIONS = frozenset({1, 2})


class _Job:
    """The service's internal record of one submitted audit."""

    __slots__ = (
        "job_id", "spec", "tenant", "priority", "seed", "seq",
        "status", "events", "result", "error", "flow", "started_at",
    )

    def __init__(
        self,
        job_id: str,
        spec: AuditSpec,
        *,
        tenant: str,
        priority: int,
        seed: int | None,
        seq: int,
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.tenant = tenant
        self.priority = priority
        self.seed = seed
        self.seq = seq
        self.status = JobStatus.QUEUED
        self.events: list[JobEvent] = []
        self.result: AuditReport | None = None
        self.error: str | None = None
        self.flow: Flow | None = None
        self.started_at: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": _CHECKPOINT_VERSION,
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "tenant": self.tenant,
            "priority": self.priority,
            "seed": self.seed,
            "seq": self.seq,
            "status": self.status.value,
            "events": [event.to_dict() for event in self.events],
            "result": None if self.result is None else self.result.to_dict(),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "_Job":
        version = record.get("version")
        if version not in _READABLE_CHECKPOINT_VERSIONS:
            raise CheckpointVersionError(
                f"unsupported job-record version {version!r} (this build "
                f"reads versions {sorted(_READABLE_CHECKPOINT_VERSIONS)})"
            )
        try:
            job = cls(
                str(record["job_id"]),
                spec_from_dict(record["spec"]),
                tenant=str(record["tenant"]),
                priority=int(record["priority"]),
                seed=record["seed"],
                seq=int(record["seq"]),
            )
            job.status = JobStatus(record["status"])
            job.events = [JobEvent.from_dict(event) for event in record["events"]]
            if record["result"] is not None:
                job.result = AuditReport.from_dict(record["result"])
            job.error = record["error"]
        except CheckpointVersionError:
            raise
        except KeyError as error:
            raise CheckpointVersionError(
                f"job record declares version {version} but is missing the "
                f"{error.args[0]!r} field that version requires"
            ) from error
        except (InvalidParameterError, ValueError) as error:
            # Unknown spec kinds, report versions, or corrupt field
            # values inside the record also mean "written by an
            # incompatible build".
            raise CheckpointVersionError(
                f"job record is not readable by this build ({error})"
            ) from error
        return job


class AuditService:
    """Multi-tenant audit jobs over one shared crowd backend.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import AuditService, GroundTruthOracle, GroupAuditSpec
    >>> from repro.data.synthetic import binary_dataset
    >>> from repro.data.groups import group
    >>> ds = binary_dataset(1_000, 30, rng=np.random.default_rng(0))
    >>> with AuditService(GroundTruthOracle(ds)) as service:
    ...     handle = service.submit(GroupAuditSpec(predicate=group(gender="female"),
    ...                                            tau=50), tenant="fairness")
    ...     service.drain()
    ...     report = handle.result()
    >>> report.result.covered, handle.status.value
    (False, 'succeeded')

    Parameters
    ----------
    oracle:
        The answer source every job is charged to. The service wraps it
        in a recording proxy so checkpoints capture every paid answer.
    backend:
        A factory ``lambda oracle: CrowdBackend(...)`` building the
        shared backend *over the service's proxy* (so backend-dispatched
        answers are recorded). Defaults to the zero-latency
        :class:`~repro.crowd.backends.InlineBackend`.
    batch_size / speculation / cache:
        Forwarded to the shared :class:`~repro.engine.QueryEngine`.
    max_active_jobs:
        Concurrency limit of the fair-share scheduler.
    dataset_size:
        Search-space size for specs with ``view=None``; defaults to the
        oracle's dataset size when it exposes one.
    seed:
        Service-level entropy: jobs submitted without their own ``seed``
        derive a deterministic per-job seed from it. ``None`` leaves
        rng-dependent jobs without a generator (they fail with a clear
        error unless submitted with ``seed=``).
    job_store:
        A :class:`~repro.service.JobStore` for checkpointing;
        :meth:`checkpoint` raises without one.
    checkpoint_every:
        Auto-checkpoint period in scheduler steps (requires
        ``job_store``). ``None`` checkpoints only on :meth:`drain` /
        explicit calls.
    task_budget:
        Crowd-task ceiling installed on the oracle's ledger for the
        service's lifetime (restored on :meth:`close`). Exhaustion
        suspends every non-terminal job, auto-checkpoints when a store
        is configured, and re-raises.
    """

    def __init__(
        self,
        oracle: Oracle,
        *,
        backend: "Callable[[Oracle], CrowdBackend] | None" = None,
        batch_size: int = 32,
        speculation: int | None = None,
        cache=None,
        max_active_jobs: int = 8,
        dataset_size: int | None = None,
        seed: int | None = None,
        job_store: JobStore | None = None,
        checkpoint_every: int | None = None,
        task_budget: int | None = None,
    ) -> None:
        if max_active_jobs < 1:
            raise InvalidParameterError(
                f"max_active_jobs must be >= 1, got {max_active_jobs}"
            )
        if task_budget is not None and task_budget <= 0:
            raise InvalidParameterError(
                f"task_budget must be positive, got {task_budget}; a "
                "service with no budget ceiling is task_budget=None"
            )
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise InvalidParameterError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if job_store is None:
                raise InvalidParameterError(
                    "checkpoint_every requires a job_store to write to"
                )
        self.oracle = oracle
        self._proxy = RecordingOracleProxy(oracle)
        crowd_backend = backend(self._proxy) if backend is not None else None
        self.engine = QueryEngine(
            self._proxy,
            backend=crowd_backend,
            batch_size=batch_size,
            speculation=speculation,
            cache=cache,
        )
        self.backend = self.engine.backend
        self.max_active_jobs = max_active_jobs
        self.dataset_size = (
            dataset_size if dataset_size is not None else _infer_dataset_size(oracle)
        )
        self.seed = seed
        self.job_store = job_store
        self.checkpoint_every = checkpoint_every

        self._previous_budget: int | None = None
        self.task_budget = task_budget
        if task_budget is not None:
            self._previous_budget = oracle.ledger.budget
            oracle.ledger.budget = task_budget

        self._jobs: dict[str, _Job] = {}
        self._queue: list[_Job] = []
        self._seq = 0
        self._rounds = 0
        self._closed = False
        # Incremental running-job tallies: the fair-share scheduler
        # consults these on every activation, and scanning the full job
        # table there would make step() cost grow with lifetime job
        # count. Maintained exclusively by _set_status.
        self._running_total = 0
        self._running_by_tenant: dict[str, int] = {}

    def _set_status(self, job: _Job, status: JobStatus) -> None:
        """The only place a registered job's status changes — keeps the
        running tallies exact."""
        if (job.status == JobStatus.RUNNING) != (status == JobStatus.RUNNING):
            delta = 1 if status == JobStatus.RUNNING else -1
            self._running_total += delta
            tally = self._running_by_tenant.get(job.tenant, 0) + delta
            if tally:
                self._running_by_tenant[job.tenant] = tally
            else:
                self._running_by_tenant.pop(job.tenant, None)
        job.status = status

    # -- lifecycle --------------------------------------------------------
    def __enter__(self) -> "AuditService":
        if self._closed:
            raise InvalidParameterError("service is closed and cannot be re-entered")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut the backend down and restore the ledger's budget.
        Queued and running jobs are left as-is — checkpoint first if
        they should survive."""
        if self._closed:
            return
        self._closed = True
        if self.task_budget is not None:
            self.oracle.ledger.budget = self._previous_budget
        self.backend.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise InvalidParameterError("service is closed")

    # -- submission -------------------------------------------------------
    def submit(
        self,
        spec: AuditSpec,
        *,
        tenant: str = "default",
        priority: int = 0,
        seed: int | None = None,
    ) -> JobHandle:
        """Enqueue one audit job; returns its :class:`JobHandle`.

        ``priority`` orders jobs *within* a tenant's queue (higher
        first); fairness across tenants is preserved regardless —
        see the class docstring. ``seed`` gives rng-dependent specs
        (multiple/intersectional/classifier audits) their generator; it
        is recorded, so a resumed job re-draws identical samples.
        """
        self._ensure_open()
        job_id = f"job-{self._seq:05d}"
        if seed is None and self.seed is not None:
            # Stable per-job derivation: resume must reproduce it.
            seed = int(
                np.random.SeedSequence([self.seed, self._seq]).generate_state(1)[0]
            )
        job = _Job(
            job_id, spec, tenant=tenant, priority=priority, seed=seed, seq=self._seq
        )
        self._seq += 1
        self._event(job, "submitted", f"tenant={tenant} priority={priority}")
        self._jobs[job_id] = job
        self._queue.append(job)
        self._persist(job)
        return JobHandle(self, job_id)

    # -- observation ------------------------------------------------------
    def _job(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise InvalidParameterError(f"unknown job id {job_id!r}")
        return job

    def handle(self, job_id: str) -> JobHandle:
        """A (re-issued) handle for ``job_id`` — how callers reattach
        after :meth:`resume`."""
        self._job(job_id)
        return JobHandle(self, job_id)

    def jobs(self) -> tuple[JobHandle, ...]:
        """Handles for every known job, in submission order."""
        ordered = sorted(self._jobs.values(), key=lambda job: job.seq)
        return tuple(JobHandle(self, job.job_id) for job in ordered)

    def status(self, job_id: str) -> JobStatus:
        """The job's current :class:`~repro.service.jobs.JobStatus`."""
        return self._job(job_id).status

    def events(self, job_id: str) -> tuple[JobEvent, ...]:
        """The job's transition trail, oldest first."""
        return tuple(self._job(job_id).events)

    def result(self, job_id: str, *, drain: bool = True) -> AuditReport:
        """The job's report; with ``drain=True`` the service is stepped
        until the job is terminal. Raises
        :class:`~repro.errors.JobFailedError` for failed/cancelled jobs."""
        job = self._job(job_id)
        if drain:
            while not job.status.terminal and job.status != JobStatus.SUSPENDED:
                if not self.has_work:
                    break
                self.step()
        if job.status == JobStatus.SUCCEEDED:
            assert job.result is not None
            return job.result
        if job.status.terminal:
            raise JobFailedError(
                f"job {job_id} {job.status.value}: {job.error or 'no result'}"
            )
        raise InvalidParameterError(
            f"job {job_id} is {job.status.value}; step() or drain() the "
            "service (or pass drain=True) to finish it"
        )

    @property
    def counts(self) -> dict[str, int]:
        """Job tally by status value."""
        tally: dict[str, int] = {}
        for job in self._jobs.values():
            tally[job.status.value] = tally.get(job.status.value, 0) + 1
        return tally

    @property
    def has_work(self) -> bool:
        """True while anything is queued, in flight, or unabsorbed."""
        return bool(self._queue) or self.engine.has_work

    def describe(self) -> str:
        """One-line service summary: job tally, bill, engine counters,
        and — when a reliability policy is attached — the worker pool's
        quarantine tally."""
        tally = ", ".join(
            f"{status}={count}" for status, count in sorted(self.counts.items())
        )
        summary = (
            f"audit service: {len(self._jobs)} jobs ({tally or 'none'}), "
            f"{self.oracle.ledger.total} tasks, "
            f"round {self._rounds}, {self.engine.stats.describe()}"
        )
        report = self.reliability_report()
        if report is not None:
            summary += (
                f", reliability: {report.n_quarantined}/{report.n_workers} "
                f"quarantined, {report.n_probes} probes"
            )
        return summary

    # -- cancellation -----------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Withdraw a job that has not finished yet.

        The semantics are pinned by ``tests/service/test_service.py``:

        * unknown ids raise :class:`~repro.errors.InvalidParameterError`
          (they are caller bugs, not races);
        * terminal jobs — succeeded, failed, or already cancelled — are
          an idempotent no-op returning ``False``: cancelling something
          that already finished is a race every distributed caller hits,
          so it must be safe to lose;
        * queued, suspended, and running jobs move to ``CANCELLED`` and
          return ``True``. Running group audits are retired from the
          engine (answers already paid for stay cached); a blocking
          audit mid-execution cannot be interrupted (``False``)."""
        job = self._job(job_id)
        if job.status == JobStatus.QUEUED:
            self._queue.remove(job)
        elif job.status == JobStatus.RUNNING and job.flow is not None:
            self.engine.retire(job.flow)
        elif job.status != JobStatus.SUSPENDED:
            return False
        self._set_status(job, JobStatus.CANCELLED)
        self._event(job, "cancelled")
        self._persist(job)
        return True

    # -- the scheduler loop ----------------------------------------------
    def step(self) -> bool:
        """Advance the service by one cooperative round: activate jobs
        up to the fair-share limit, pump every ready frontier, absorb
        whatever the backend has finished (waiting for at least one
        ticket when any is outstanding), and settle completions.
        Returns :attr:`has_work`."""
        self._ensure_open()
        try:
            self._activate()
            self.engine.pump()
            if self.engine.outstanding_tickets:
                ready_tickets = [self.backend.next_done()]
                ready_tickets.extend(
                    t for t in self.backend.poll() if t is not ready_tickets[0]
                )
                for ticket in ready_tickets:
                    try:
                        answers = self.backend.gather(ticket)
                    except BaseException:
                        self.engine.discard(ticket)
                        raise
                    self.engine.absorb(ticket, answers)
            self.engine.settle()
        except BudgetExceededError:
            self._suspend_all("task budget exhausted")
            raise
        self._rounds += 1
        if (
            self.checkpoint_every is not None
            and self._rounds % self.checkpoint_every == 0
        ):
            self.checkpoint()
        return self.has_work

    def drain(self) -> None:
        """Run until no job is queued or in flight, then checkpoint
        (when a store is configured)."""
        while self.step():
            pass
        if self.job_store is not None:
            self.checkpoint()

    # -- internals: scheduling -------------------------------------------
    def _activate(self) -> None:
        while self._queue and self._running_total < self.max_active_jobs:
            running = self._running_by_tenant
            job = min(
                self._queue,
                key=lambda j: (running.get(j.tenant, 0), -j.priority, j.seq),
            )
            self._queue.remove(job)
            self._start(job)

    def _start(self, job: _Job) -> None:
        self._set_status(job, JobStatus.RUNNING)
        job.started_at = time.perf_counter()
        self._event(job, "started")
        if isinstance(job.spec, GroupAuditSpec):
            stepper = make_group_stepper(
                job.spec,
                dataset_size=self.dataset_size,
                speculation=self.engine.speculation,
            )

            def finish(_stepper, job=job):
                self._finish_group_job(job)
                return None

            job.flow = self.engine.admit(stepper, on_complete=finish)
        else:
            self._run_blocking(job)

    def _finish_group_job(self, job: _Job) -> None:
        assert job.flow is not None and job.started_at is not None
        tasks = TaskUsage(n_set_queries=job.flow.dispatched)
        result = job.flow.stepper.result(tasks=tasks)
        job.result = AuditReport(
            entries=(AuditEntry(spec=job.spec, result=result),),
            tasks=tasks,
            engine_stats=None,
            wall_clock_seconds=time.perf_counter() - job.started_at,
        )
        self._set_status(job, JobStatus.SUCCEEDED)
        self._event(job, "succeeded", f"dispatched={job.flow.dispatched}")
        self._persist(job)

    def _run_blocking(self, job: _Job) -> None:
        """Execute a non-group spec to completion on the shared engine.

        Concurrent group flows keep advancing underneath (the engine's
        drain loop pumps every admitted flow), and every answer lands in
        the shared cache — but this job occupies the service loop until
        it finishes. The report's ``tasks`` window therefore includes
        whatever concurrent flows spent during the overlap; exact
        per-job attribution is a group-audit feature.
        """
        started = time.perf_counter()
        window = LedgerWindow(self.oracle.ledger)
        rng = (
            np.random.default_rng(job.seed) if job.seed is not None else None
        )
        try:
            result = run_spec(
                self._proxy,
                job.spec,
                engine=self.engine,
                rng=rng,
                dataset_size=self.dataset_size,
            )
        except BudgetExceededError:
            raise  # handled service-wide in step()
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            self._set_status(job, JobStatus.FAILED)
            job.error = f"{type(error).__name__}: {error}"
            self._event(job, "failed", job.error)
            self._persist(job)
            return
        job.result = AuditReport(
            entries=(AuditEntry(spec=job.spec, result=result),),
            tasks=window.usage(),
            engine_stats=None,
            wall_clock_seconds=time.perf_counter() - started,
        )
        self._set_status(job, JobStatus.SUCCEEDED)
        self._event(job, "succeeded")
        self._persist(job)

    def _suspend_all(self, reason: str) -> None:
        for job in self._jobs.values():
            if job.status in (JobStatus.QUEUED, JobStatus.RUNNING):
                if job.flow is not None and not job.flow.finished:
                    self.engine.retire(job.flow)
                if job in self._queue:
                    self._queue.remove(job)
                self._set_status(job, JobStatus.SUSPENDED)
                self._event(job, "suspended", reason)
                self._persist(job)
        if self.job_store is not None:
            self.checkpoint()

    def _event(self, job: _Job, stage: str, detail: str = "") -> None:
        job.events.append(
            JobEvent(
                stage=stage,
                detail=detail,
                tasks=self.oracle.ledger.total,
                round=self._rounds,
            )
        )

    # -- checkpoint / resume ----------------------------------------------
    def _persist(self, job: _Job) -> None:
        if self.job_store is not None:
            self.job_store.save_job(job.job_id, job.to_dict())

    def checkpoint(self) -> None:
        """Write the answer log and every job record to the store.

        The answer log holds everything the crowd was paid for — set
        answers from the proxy and the engine cache, point answers from
        the proxy — so a resumed service replays them for free.
        """
        if self.job_store is None:
            raise InvalidParameterError(
                "service has no job_store to checkpoint into"
            )
        set_answers = dict(self._proxy._set_seen)
        set_answers.update(dict(self.engine.cache.entries()))
        self.job_store.save_answers(
            {
                "version": _CHECKPOINT_VERSION,
                "dataset_size": self.dataset_size,
                "seed": self.seed,
                "engine": {
                    "batch_size": self.engine.batch_size,
                    "speculation": self.engine.speculation,
                },
                "max_active_jobs": self.max_active_jobs,
                "next_seq": self._seq,
                "set_answers": [
                    set_answer_to_dict(predicate, index_key, answer)
                    for (predicate, index_key), answer in set_answers.items()
                ],
                "point_answers": point_answers_to_list(self._proxy._point_seen),
                "reliability": self._reliability_section(),
            }
        )
        for job in self._jobs.values():
            self._persist(job)

    def _reliability_section(self) -> dict[str, Any] | None:
        """The versioned reliability payload for :meth:`checkpoint`, or
        ``None`` when the oracle has no reliability-enabled platform."""
        platform = _reliability_platform(self.oracle)
        if platform is None:
            return None
        return ReliabilitySnapshot.capture(platform).to_dict()

    def reliability_report(self):
        """The reliability policy's current
        :class:`~repro.crowd.reliability.ReliabilityReport` (quarantine
        roster, spend counters), or ``None`` when the service's oracle
        has no reliability-enabled platform behind it."""
        platform = _reliability_platform(self.oracle)
        if platform is None:
            return None
        return platform.reliability.report()

    @classmethod
    def resume(
        cls,
        job_store: JobStore,
        oracle: Oracle,
        *,
        backend: "Callable[[Oracle], CrowdBackend] | None" = None,
        task_budget: int | None = None,
        max_active_jobs: int | None = None,
        checkpoint_every: int | None = None,
    ) -> "AuditService":
        """Revive a service from a :class:`JobStore`.

        Finished jobs come back with their results; queued, running, and
        suspended jobs are re-queued (same id, seed, tenant, priority,
        submission order). Every recorded answer is preloaded into the
        replay proxy and the answer cache, so re-run audits pay only for
        queries the crashed service never asked — determinism then
        guarantees identical verdicts.
        """
        answers = job_store.load_answers()
        if answers is None:
            raise InvalidParameterError(
                "job store holds no checkpoint to resume from"
            )
        version = answers.get("version")
        if version not in _READABLE_CHECKPOINT_VERSIONS:
            raise CheckpointVersionError(
                f"unsupported service checkpoint version {version!r} "
                f"(this build reads versions {sorted(_READABLE_CHECKPOINT_VERSIONS)})"
            )
        # Narrow extraction: only the checkpoint's own shape may raise
        # CheckpointVersionError — a KeyError from user code (oracle,
        # backend factory, job store) during construction propagates as-is.
        try:
            engine_config = answers["engine"]
            batch_size = engine_config["batch_size"]
            speculation = engine_config["speculation"]
            stored_max_active_jobs = answers["max_active_jobs"]
            dataset_size = answers["dataset_size"]
            seed = answers["seed"]
            raw_set_answers = answers["set_answers"]
            raw_point_answers = answers["point_answers"]
            next_seq = int(answers["next_seq"])
            raw_reliability = answers["reliability"] if version >= 2 else None
        except KeyError as error:
            raise CheckpointVersionError(
                f"service checkpoint declares version {version} but is missing "
                f"the {error.args[0]!r} field that version requires"
            ) from error
        service = cls(
            oracle,
            backend=backend,
            batch_size=batch_size,
            speculation=speculation,
            max_active_jobs=(
                max_active_jobs
                if max_active_jobs is not None
                else stored_max_active_jobs
            ),
            dataset_size=dataset_size,
            seed=seed,
            job_store=job_store,
            checkpoint_every=checkpoint_every,
            task_budget=task_budget,
        )
        set_answers = set_answers_from_list(raw_set_answers)
        service._proxy.load_set_answers(set_answers)
        for key, answer in set_answers.items():
            service.engine.cache.store(key, answer)
        service._proxy.load_point_answers(
            point_answers_from_list(raw_point_answers)
        )
        if raw_reliability is not None:
            platform = _reliability_platform(oracle)
            if platform is None:
                raise CheckpointVersionError(
                    "service checkpoint carries a reliability section but "
                    "the resuming oracle has no reliability-enabled platform "
                    "— resume with the same CrowdPlatform(reliability=...) "
                    "configuration the checkpoint was written under"
                )
            ReliabilitySnapshot.from_dict(raw_reliability).restore(platform)
        max_seq = -1
        for record in sorted(
            job_store.load_jobs().values(),
            key=lambda r: int(r.get("seq", -1)),
        ):
            job = _Job.from_dict(record)
            service._jobs[job.job_id] = job
            max_seq = max(max_seq, job.seq)
            if not job.status.terminal:
                previous = job.status.value
                job.status = JobStatus.QUEUED
                service._event(job, "resumed", f"was {previous}")
                service._queue.append(job)
                service._persist(job)
        # Job records persist at submission, the answer log only at
        # checkpoints: jobs submitted after the last checkpoint carry
        # sequence numbers past the recorded next_seq, and reusing those
        # ids would silently overwrite their records.
        service._seq = max(next_seq, max_seq + 1)
        return service

    # -- batch conveniences ----------------------------------------------
    def submit_many(
        self,
        specs: Iterable[AuditSpec],
        *,
        tenant: str = "default",
        priority: int = 0,
        seed: int | None = None,
    ) -> tuple[JobHandle, ...]:
        """Submit several specs for one tenant; per-job seeds derive from
        ``seed`` (or the service seed) plus each job's sequence number,
        so seeds stay unique across successive batches."""
        handles = []
        for spec in specs:
            job_seed = None if seed is None else seed + self._seq
            handles.append(
                self.submit(spec, tenant=tenant, priority=priority, seed=job_seed)
            )
        return tuple(handles)
