"""Batched auditing: the same coverage questions in far fewer round-trips.

Real crowd platforms answer HITs in published batches, so the latency of
an audit is governed by *round-trips*, not tasks. This example runs a
multi-group audit twice through the :class:`repro.AuditSession` API —
sequentially (the paper's execution model) and on an engine session —
and compares:

* oracle round-trips (the latency bill),
* crowd tasks (the dollar bill — identical or lower under the engine),
* the verdicts themselves (identical under a deterministic oracle).

Run:  python examples/batched_audit.py
"""

import numpy as np

from repro import (
    AuditSession,
    GroundTruthOracle,
    MultipleAuditSpec,
    group,
    single_attribute_dataset,
)

TAU, SET_SIZE = 40, 50


def build_dataset():
    # A skewed race distribution: one majority, a mid-size group, and
    # several minorities hovering around the threshold.
    counts = {
        "white": 17_000,
        "asian": 1_500,
        "black": 120,
        "hispanic": 95,
        "middle_eastern": 60,
        "indigenous": 25,
    }
    return counts, single_attribute_dataset(counts, rng=np.random.default_rng(11))


def main() -> None:
    counts, dataset = build_dataset()
    spec = MultipleAuditSpec(
        groups=tuple(group(race=value) for value in counts), tau=TAU, n=SET_SIZE
    )

    # Sequential session: one oracle ask per query, the paper's model.
    with AuditSession(GroundTruthOracle(dataset), seed=7) as session:
        sequential = session.run(spec)

    # Engine session: ready frontiers batch into few round-trips.
    # speculation=0: never pay for a query an early stop would strand.
    # The default (speculation=batch_size) buys even fewer round-trips
    # on sparse groups for up to one stranded batch per covered run.
    with AuditSession(
        GroundTruthOracle(dataset),
        engine=True,
        batch_size=64,
        speculation=0,
        seed=7,
    ) as session:
        batched = session.run(spec)

    print("=== batched multi-group audit ===")
    print(batched.result.describe())
    print()
    print(f"{'':>14}  {'tasks':>7}  {'round-trips':>11}")
    print(
        f"{'sequential':>14}  {sequential.tasks.total:>7}  "
        f"{sequential.tasks.n_rounds:>11}"
    )
    print(f"{'engine':>14}  {batched.tasks.total:>7}  {batched.tasks.n_rounds:>11}")
    speedup = sequential.tasks.n_rounds / batched.tasks.n_rounds
    print(f"\n{speedup:.1f}x fewer round-trips; {batched.engine_stats.describe()}")

    for ours, theirs in zip(batched.result.entries, sequential.result.entries):
        assert (ours.covered, ours.count) == (theirs.covered, theirs.count)
    print("verdicts and counts identical across both modes")


if __name__ == "__main__":
    main()
