"""The AuditService tour: tenants, latency overlap, crash recovery.

The session API binds execution state for one caller; the service runs
*jobs* — audit specs from any number of tenants — over one shared crowd
backend:

1. Two tenants submit audits; the fair-share scheduler interleaves them
   and the shared engine overlaps their crowd latency (a simulated
   per-worker latency model makes the overlap measurable on a virtual
   clock).
2. Every job has a status and an event trail; one gets cancelled.
3. The service checkpoints every paid answer and all job state into a
   JobStore; a "crashed" service resumes from the directory and
   finishes every in-flight audit without re-asking a single paid
   query.

Run:  python examples/service_audit.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    AuditService,
    DirectoryJobStore,
    GroundTruthOracle,
    GroupAuditSpec,
    LatencyModelBackend,
    group,
    single_attribute_dataset,
)

TAU = 60

COUNTS = {
    "white": 9_000,
    "asian": 700,
    "black": 130,
    "hispanic": 90,
    "indigenous": 25,
}


def latency_backend(oracle):
    return LatencyModelBackend(oracle, rng=np.random.default_rng(7))


def main() -> None:
    dataset = single_attribute_dataset(COUNTS, rng=np.random.default_rng(19))

    # -- two tenants share one crowd --------------------------------------
    oracle = GroundTruthOracle(dataset)
    print("=== multi-tenant service over a simulated-latency crowd ===")
    with AuditService(
        oracle, backend=latency_backend, max_active_jobs=8
    ) as service:
        fairness = [
            service.submit(
                GroupAuditSpec(predicate=group(race=value), tau=TAU),
                tenant="fairness-team",
            )
            for value in ("black", "hispanic", "indigenous")
        ]
        platform = [
            service.submit(
                GroupAuditSpec(predicate=group(race=value), tau=TAU),
                tenant="platform-team",
                priority=1,
            )
            for value in ("white", "asian")
        ]
        doomed = service.submit(
            GroupAuditSpec(predicate=group(race="white"), tau=5_000_000),
            tenant="platform-team",
        )
        service.step()
        assert doomed.cancel(), "a freshly queued job is cancellable"

        service.drain()
        for handle in (*fairness, *platform):
            report = handle.result()
            print(
                f"  {handle.job_id} [{handle.tenant}] "
                f"{handle.spec.describe()}: covered={report.result.covered} "
                f"count={report.result.count} tasks={report.tasks.n_set_queries}"
            )
        print(f"  cancelled: {doomed.job_id} -> {doomed.status.value}")
        makespan = service.backend.clock.now()
        print(
            f"  {oracle.ledger.total} crowd tasks, virtual makespan "
            f"{makespan:,.0f}s (overlapped; serially these audits would "
            f"wait on every batch in turn)"
        )
        trail = " -> ".join(event.stage for event in fairness[0].events())
        print(f"  event trail of {fairness[0].job_id}: {trail}")

    # -- crash and resume from the JobStore -------------------------------
    print("\n=== kill a service mid-job, resume from its JobStore ===")
    with tempfile.TemporaryDirectory() as scratch:
        store = DirectoryJobStore(Path(scratch) / "audit-service")
        oracle = GroundTruthOracle(dataset)
        service = AuditService(oracle, job_store=store, checkpoint_every=2)
        for value in ("black", "indigenous"):
            service.submit(
                GroupAuditSpec(predicate=group(race=value), tau=TAU),
                tenant="fairness-team",
            )
        for _ in range(4):  # partial progress, auto-checkpointed
            service.step()
        service.checkpoint()
        paid_before = oracle.ledger.total
        print(f"  'crash' after {paid_before} paid tasks; store has "
              f"{len(store.load_jobs())} job records")
        del service  # no close, no goodbye — the directory is all that survives

        revived = AuditService.resume(store, oracle)
        with revived:
            revived.drain()
            for handle in revived.jobs():
                report = handle.result()
                print(
                    f"  resumed {handle.job_id}: covered={report.result.covered} "
                    f"count={report.result.count}"
                )
        print(
            f"  total paid across both lives: {oracle.ledger.total} tasks "
            f"(the resume replayed all {paid_before} checkpointed answers for free)"
        )


if __name__ == "__main__":
    main()
