"""A full MTurk-style audit of a face dataset (the Table 1 scenario).

Builds the paper's FERET slice (215 female / 1307 male), a heterogeneous
worker pool with a spammer contingent, and runs the audit through the
platform simulator under all three quality-control settings — reporting
HIT counts, dollars spent (fixed $0.10/HIT + 20 % AMT fee), raw worker
error rates, and whether majority vote kept every verdict correct.

Run:  python examples/audit_face_dataset.py
"""

import numpy as np

from repro import CrowdOracle, CrowdPlatform, group, group_coverage, make_worker_pool
from repro.crowd import QC_MAJORITY_ONLY, qc_with_qualification, qc_with_rating
from repro.data import feret_mturk_slice

TAU, SET_SIZE = 50, 50
FEMALE = group(gender="female")

QC_SETTINGS = [
    ("majority vote only", QC_MAJORITY_ONLY),
    ("qualification test + majority vote", qc_with_qualification()),
    ("rating screen + majority vote", qc_with_rating()),
]


def main() -> None:
    print("=== auditing a FERET slice through a simulated crowd ===")
    for offset, (label, screening) in enumerate(QC_SETTINGS):
        rng = np.random.default_rng(100 + offset)
        dataset = feret_mturk_slice(rng)
        workers = make_worker_pool(
            60, rng, error_rate=0.0136, spammer_fraction=0.2
        )
        platform = CrowdPlatform(dataset, workers, rng, screening=screening)
        result = group_coverage(
            CrowdOracle(platform), FEMALE, TAU, n=SET_SIZE, dataset_size=len(dataset)
        )

        truth = dataset.count(FEMALE) >= TAU
        print(f"\n--- {label} ---")
        print(f"  eligible workers: {len(platform.eligible_workers)}/60")
        print(f"  verdict: {'covered' if result.covered else 'UNCOVERED'} "
              f"({'correct' if result.covered == truth else 'WRONG'})")
        print(f"  HITs issued: {result.tasks.total}")
        print(f"  cost: {platform.ledger.summary()}")
        print(f"  raw worker error rate: {platform.raw_error_rate:.2%}; "
              f"aggregated error rate: {platform.aggregated_error_rate:.2%}")


if __name__ == "__main__":
    main()
