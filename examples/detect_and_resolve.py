"""The full loop: detect a coverage gap, buy the missing samples, retrain.

This example chains everything the library offers:

1. **Detect** — audit an unlabeled training corpus for drowsiness
   detection with Multiple-Coverage and discover that spectacled subjects
   are uncovered.
2. **Plan & acquire** — compute the deficit and locate exactly that many
   spectacled images inside a second unlabeled acquisition pool using
   divide-and-conquer set queries (far cheaper than labeling the pool).
3. **Resolve & retrain** — add the acquired images, retrain the
   downstream model, and measure how the accuracy disparity on spectacled
   subjects shrinks.

Run:  python examples/detect_and_resolve.py
"""

import numpy as np

from repro import GroundTruthOracle, Schema, group, multiple_coverage
from repro.classifiers import MLPClassifier
from repro.core import acquisition_plan, resolve_coverage
from repro.data import attach_images, intersectional_dataset

TAU = 100
SCHEMA = Schema.from_dict(
    {"eye_state": ["open", "closed"], "spectacled": ["no", "yes"]}
)
SPECTACLED_GROUPS = [
    group(eye_state="open", spectacled="yes"),
    group(eye_state="closed", spectacled="yes"),
]


def build_world(rng):
    """A biased training corpus and a richer acquisition pool."""
    train = attach_images(
        intersectional_dataset(
            SCHEMA,
            {
                ("open", "no"): 3_000,
                ("closed", "no"): 2_800,
                ("open", "yes"): 22,      # spectacled subjects nearly absent
                ("closed", "yes"): 14,
            },
            rng=rng,
        ),
        rng,
    )
    pool = attach_images(
        intersectional_dataset(
            SCHEMA,
            {
                ("open", "no"): 1_200,
                ("closed", "no"): 1_200,
                ("open", "yes"): 500,
                ("closed", "yes"): 500,
            },
            rng=rng,
        ),
        rng,
    )
    test = attach_images(
        intersectional_dataset(
            SCHEMA,
            {
                ("open", "no"): 500,
                ("closed", "no"): 500,
                ("open", "yes"): 300,
                ("closed", "yes"): 300,
            },
            rng=rng,
        ),
        rng,
    )
    return train, pool, test


def disparity(model, test):
    labels = test.column("eye_state")
    spectacled = test.mask(group(spectacled="yes"))
    overall = model.accuracy(test.features[~spectacled], labels[~spectacled])
    uncovered = model.accuracy(test.features[spectacled], labels[spectacled])
    return overall, uncovered


def train_model(dataset, rng):
    model = MLPClassifier(
        n_features=dataset.features.shape[1], n_classes=2, n_epochs=8, rng=rng
    )
    model.fit(dataset.features, dataset.column("eye_state"))
    return model


def main() -> None:
    rng = np.random.default_rng(99)
    train, pool, test = build_world(rng)

    # -- 1. detect ------------------------------------------------------
    print("=== step 1: audit the training corpus (tau = %d) ===" % TAU)
    report = multiple_coverage(
        GroundTruthOracle(train),
        SPECTACLED_GROUPS,
        TAU,
        rng=rng,
        dataset_size=len(train),
        attribute_supergroup_members=True,
    )
    print(report.describe())

    # -- 2. plan & acquire ----------------------------------------------
    print("\n=== step 2: plan and acquire from the unlabeled pool ===")
    plan = acquisition_plan(report, TAU)
    print(plan.describe())
    acquired, usage = resolve_coverage(
        GroundTruthOracle(pool), plan, pool_size=len(pool)
    )
    total_acquired = sum(len(v) for v in acquired.values())
    print(f"acquired {total_acquired} images with {usage.total} crowd tasks "
          f"({usage.n_set_queries} set + {usage.n_point_queries} point; "
          f"labeling the whole pool would cost {len(pool)} tasks)")

    # -- 3. resolve & retrain -------------------------------------------
    print("\n=== step 3: retrain and compare ===")
    before = train_model(train, np.random.default_rng(1))
    overall_before, uncovered_before = disparity(before, test)

    additions = pool.subset([i for ids in acquired.values() for i in ids])
    resolved = train.concatenated(additions)
    after = train_model(resolved, np.random.default_rng(1))
    overall_after, uncovered_after = disparity(after, test)

    print(f"before: {overall_before:.1%} overall vs "
          f"{uncovered_before:.1%} on spectacled "
          f"(disparity {overall_before - uncovered_before:+.3f})")
    print(f"after:  {overall_after:.1%} overall vs "
          f"{uncovered_after:.1%} on spectacled "
          f"(disparity {overall_after - uncovered_after:+.3f})")


if __name__ == "__main__":
    main()
