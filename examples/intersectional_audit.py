"""Intersectional auditing: find the MUPs of a gender x race dataset.

Builds a dataset whose composition mirrors the motivating examples of the
paper (well-represented white subjects, a thin female-black intersection),
runs Intersectional-Coverage, and prints the full pattern-graph report —
including the *maximal uncovered patterns*, the compact description of
everything the dataset under-represents.

Run:  python examples/intersectional_audit.py
"""

import numpy as np

from repro import GroundTruthOracle, Schema, intersectional_coverage
from repro.data import intersectional_dataset

TAU, SET_SIZE = 50, 50

SCHEMA = Schema.from_dict(
    {
        "gender": ["male", "female"],
        "race": ["white", "black", "asian"],
    }
)

COMPOSITION = {
    ("male", "white"): 5200,
    ("female", "white"): 1900,
    ("male", "black"): 420,
    ("female", "black"): 12,   # the thin intersection
    ("male", "asian"): 26,     # both asian intersections thin ...
    ("female", "asian"): 15,   # ... so asian overall is uncovered too
}


def main() -> None:
    rng = np.random.default_rng(2024)
    dataset = intersectional_dataset(SCHEMA, COMPOSITION, rng=rng)
    print("=== intersectional audit (gender x race) ===")
    print(dataset.describe())

    report = intersectional_coverage(
        GroundTruthOracle(dataset), SCHEMA, TAU, n=SET_SIZE, rng=rng,
        dataset_size=len(dataset),
    )

    print(f"\ntotal crowd tasks: {report.tasks.total} "
          f"(vs {len(dataset)} for labeling everything)")
    print("\nmaximal uncovered patterns (MUPs):")
    for mup in report.mups:
        verdict = report.pattern_report.verdict(mup)
        print(f"  {mup.describe():<16} count = {verdict.count_lower_bound}")

    print("\nfull pattern report:")
    print(report.pattern_report.describe())


if __name__ == "__main__":
    main()
