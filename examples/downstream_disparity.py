"""Why coverage matters: uncovered groups hurt downstream models (§6.4).

Trains a small from-scratch neural network for drowsiness detection
(open/closed eyes) on a corpus that *excludes* spectacled subjects, shows
the resulting accuracy gap on spectacled test images, then re-adds a few
uncovered samples per class and watches the gap close — the paper's
Figure 6a at demonstration scale.

Run:  python examples/downstream_disparity.py
"""

import numpy as np

from repro.data import group, mrl_eye_pool
from repro.downstream import run_disparity_experiment

SPECTACLED = group(spectacled="yes")


def main() -> None:
    rng = np.random.default_rng(6)
    print("=== downstream consequences of a coverage gap ===")
    print("building the MRL-eye-style pool (spectacled subjects rare) ...")
    pool = mrl_eye_pool(rng)

    curve = run_disparity_experiment(
        pool,
        target_attribute="eye_state",
        uncovered_group=SPECTACLED,
        additions=(0, 20, 40, 60, 80, 100),
        n_repeats=3,
        rng=rng,
        max_train_size=4_000,  # demonstration scale; drop for paper scale
        experiment_name="drowsiness detection",
    )

    print()
    print(curve.describe())
    base, final = curve.points[0], curve.points[-1]
    print(
        f"\nwith spectacled subjects uncovered: "
        f"{base.random_test_accuracy:.1%} accuracy overall vs "
        f"{base.uncovered_test_accuracy:.1%} on spectacled subjects"
    )
    print(
        f"after re-adding {final.n_added} spectacled samples per class: "
        f"disparity {base.accuracy_disparity:.3f} -> {final.accuracy_disparity:.3f}"
    )


if __name__ == "__main__":
    main()
