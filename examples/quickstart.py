"""Quickstart: is the `female` group covered in an unlabeled image dataset?

The core workflow in ~30 lines:

1. build (or load) a dataset whose sensitive labels are *hidden* from the
   algorithm,
2. wrap it in an oracle (here: a noise-free simulated crowd),
3. run Group-Coverage and compare its cost against the one-label-per-image
   baseline and the theoretical bound.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GroundTruthOracle,
    base_coverage,
    binary_dataset,
    group,
    group_coverage,
    upper_bound_tasks,
)

N, TAU, SET_SIZE = 10_000, 50, 50
FEMALE = group(gender="female")


def audit(n_females: int, seed: int) -> None:
    rng = np.random.default_rng(seed)
    dataset = binary_dataset(N, n_females, rng=rng)

    result = group_coverage(
        GroundTruthOracle(dataset), FEMALE, TAU, n=SET_SIZE, dataset_size=N
    )
    baseline = base_coverage(
        GroundTruthOracle(dataset), FEMALE, TAU, dataset_size=N
    )

    verdict = "covered" if result.covered else "UNCOVERED"
    count = f">= {result.count}" if result.covered else f"= {result.count} (exact)"
    print(f"\ndataset with {n_females} females out of {N} (tau = {TAU})")
    print(f"  verdict:           {FEMALE.describe()} is {verdict}, count {count}")
    print(f"  Group-Coverage:    {result.tasks.total:>6} crowd tasks")
    print(f"  Base-Coverage:     {baseline.tasks.total:>6} crowd tasks")
    print(f"  theoretical bound: {upper_bound_tasks(N, SET_SIZE, TAU):>6.0f} tasks")


def main() -> None:
    print("=== repro quickstart: coverage auditing without labels ===")
    audit(n_females=2_000, seed=1)  # clearly covered
    audit(n_females=49, seed=2)     # just barely uncovered (the hard case)
    audit(n_females=0, seed=3)      # absent entirely


if __name__ == "__main__":
    main()
