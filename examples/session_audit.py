"""The AuditSession tour: specs, batched dispatch, reports, resume.

One session binds the execution state — oracle, engine, rng, budget —
and every audit is a declarative spec run against it:

1. `run_many` schedules several group audits as concurrent steppers on
   one engine, so overlapping questions are paid once.
2. Every run returns an `AuditReport` that serializes losslessly to
   JSON — the durable artifact of an audit that cost real money.
3. A task budget can interrupt an audit mid-flight; `checkpoint()`
   persists every answer paid for, and `AuditSession.resume()` continues
   later without re-asking a single recorded query.

Run:  python examples/session_audit.py
"""

import numpy as np

from repro import (
    AuditReport,
    AuditSession,
    BudgetExceededError,
    GroundTruthOracle,
    GroupAuditSpec,
    group,
    single_attribute_dataset,
)

TAU = 40

COUNTS = {
    "white": 12_000,
    "asian": 900,
    "black": 110,
    "hispanic": 70,
    "indigenous": 20,
}


def main() -> None:
    dataset = single_attribute_dataset(COUNTS, rng=np.random.default_rng(19))
    specs = [GroupAuditSpec(predicate=group(race=value), tau=TAU) for value in COUNTS]

    # -- one session, many audits, shared cache --------------------------
    with AuditSession(GroundTruthOracle(dataset), engine=True, seed=3) as session:
        batch = session.run_many(specs)
    print("=== batched session audit ===")
    print(batch.describe())

    # -- the report is a durable, lossless artifact ----------------------
    payload = batch.to_json()
    restored = AuditReport.from_json(payload)
    assert restored == batch
    print(f"\nreport serialized to {len(payload):,} bytes of JSON and restored equal")

    # -- budget interruption + checkpoint + resume -----------------------
    oracle = GroundTruthOracle(dataset)
    session = AuditSession(oracle, engine=True, task_budget=100)
    rare = GroupAuditSpec(predicate=group(race="indigenous"), tau=TAU)
    try:
        with session:
            session.run(rare)
        raise AssertionError("expected the 100-task budget to run out")
    except BudgetExceededError:
        checkpoint = session.checkpoint()
        print(
            f"\nbudget exhausted after {oracle.ledger.total} tasks; "
            f"checkpoint holds {len(checkpoint):,} bytes"
        )

    resumed = AuditSession.resume(checkpoint, oracle, task_budget=100_000)
    with resumed:
        report = resumed.run_pending()
    print(
        f"resumed and finished: {report.result.describe()}\n"
        f"total paid across both phases: {oracle.ledger.total} tasks "
        f"(resume re-asked nothing it had already paid for)"
    )


if __name__ == "__main__":
    main()
