"""Classifier-assisted coverage auditing (the Table 2 scenario).

When a pre-trained gender classifier is available, Algorithm 4 verifies
its predictions instead of searching from scratch. This example contrasts
two regimes on the same dataset:

* a high-precision classifier (DeepFace-like, 99.5 % precision) — the
  Partition strategy certifies whole chunks with single reverse set
  queries and crushes standalone Group-Coverage;
* a low-precision classifier (52 %) — the heuristic correctly switches
  to the Label strategy, and the audit remains competitive.

Run:  python examples/classifier_assisted_audit.py
"""

import numpy as np

from repro import GroundTruthOracle, classifier_coverage, group, group_coverage
from repro.classifiers import ProfileClassifier, binary_confusion
from repro.data import feret_unique_slice

TAU, SET_SIZE = 50, 50
FEMALE = group(gender="female")


def run_with(classifier: ProfileClassifier, seed: int) -> None:
    rng = np.random.default_rng(seed)
    dataset = feret_unique_slice(rng)
    predicted = classifier.predict(dataset, rng)
    confusion = binary_confusion(dataset.mask(FEMALE), predicted)

    result = classifier_coverage(
        GroundTruthOracle(dataset), FEMALE, TAU,
        np.flatnonzero(predicted), n=SET_SIZE, rng=rng, dataset_size=len(dataset),
    )
    baseline = group_coverage(
        GroundTruthOracle(dataset), FEMALE, TAU, n=SET_SIZE,
        dataset_size=len(dataset),
    )

    print(f"\n--- {classifier.name} ---")
    print(f"  classifier profile: {confusion.describe()}")
    print(f"  estimated precision from 10% sample: {result.precision_estimate:.1%}")
    print(f"  strategy chosen: {result.strategy}")
    print(f"  verdict: {'covered' if result.covered else 'UNCOVERED'}")
    print(f"  Classifier-Coverage: {result.tasks.total:>4} tasks "
          f"({result.tasks.n_set_queries} set + {result.tasks.n_point_queries} point)")
    print(f"  standalone Group-Coverage: {baseline.tasks.total:>4} tasks")


def main() -> None:
    print("=== classifier-assisted audits on FERET (403 F / 591 M) ===")
    run_with(
        ProfileClassifier(
            name="DeepFace-like (high precision)",
            target_group=FEMALE, accuracy=0.7957, precision=0.995,
        ),
        seed=11,
    )
    run_with(
        ProfileClassifier(
            name="weak CNN (low precision)",
            target_group=FEMALE, accuracy=0.6448, precision=0.5919,
        ),
        seed=12,
    )


if __name__ == "__main__":
    main()
