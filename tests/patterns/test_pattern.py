"""Unit tests for repro.patterns.pattern."""

from __future__ import annotations

import pytest

from repro.data.groups import group
from repro.data.schema import Schema
from repro.errors import InvalidParameterError, UnknownGroupError
from repro.patterns.pattern import Pattern


@pytest.fixture
def schema():
    return Schema.from_dict(
        {"gender": ["male", "female"], "race": ["white", "black", "asian"]}
    )


class TestConstruction:
    def test_root(self, schema):
        root = Pattern.root(schema)
        assert root.is_root
        assert root.level == 0
        assert root.describe() == "X-X"

    def test_from_mapping(self, schema):
        pattern = Pattern.from_mapping(schema, {"race": "black"})
        assert pattern.describe() == "X-black"
        assert pattern.level == 1

    def test_from_group(self, schema):
        pattern = Pattern.from_group(schema, group(gender="female", race="asian"))
        assert pattern.describe() == "female-asian"
        assert pattern.is_fully_specified

    def test_wrong_arity_rejected(self, schema):
        with pytest.raises(InvalidParameterError):
            Pattern(schema, ("female",))

    def test_unknown_value_rejected(self, schema):
        with pytest.raises(UnknownGroupError):
            Pattern(schema, ("female", "martian"))

    def test_unknown_attribute_rejected(self, schema):
        with pytest.raises(UnknownGroupError):
            Pattern.from_mapping(schema, {"age": "old"})


class TestStructure:
    def test_parents_of_level2(self, schema):
        pattern = Pattern.from_mapping(schema, {"gender": "female", "race": "black"})
        parents = {p.describe() for p in pattern.parents()}
        assert parents == {"X-black", "female-X"}

    def test_parents_of_root_is_empty(self, schema):
        assert list(Pattern.root(schema).parents()) == []

    def test_children_of_root(self, schema):
        children = {p.describe() for p in Pattern.root(schema).children()}
        assert children == {"male-X", "female-X", "X-white", "X-black", "X-asian"}

    def test_is_parent_of(self, schema):
        parent = Pattern.from_mapping(schema, {"race": "black"})
        child = Pattern.from_mapping(schema, {"gender": "female", "race": "black"})
        assert parent.is_parent_of(child)
        assert not child.is_parent_of(parent)
        assert not parent.is_parent_of(parent)
        sibling = Pattern.from_mapping(schema, {"race": "white"})
        assert not sibling.is_parent_of(child)

    def test_generalizes(self, schema):
        root = Pattern.root(schema)
        mid = Pattern.from_mapping(schema, {"race": "black"})
        leaf = Pattern.from_mapping(schema, {"gender": "female", "race": "black"})
        assert root.generalizes(leaf)
        assert mid.generalizes(leaf)
        assert mid.generalizes(mid)
        assert not leaf.generalizes(mid)


class TestSemantics:
    def test_matches_row(self, schema):
        pattern = Pattern.from_mapping(schema, {"race": "black"})
        assert pattern.matches_row({"gender": "male", "race": "black"})
        assert not pattern.matches_row({"gender": "male", "race": "white"})

    def test_root_matches_everything(self, schema):
        assert Pattern.root(schema).matches_row({"gender": "male", "race": "white"})

    def test_to_group_roundtrip(self, schema):
        pattern = Pattern.from_mapping(schema, {"gender": "female", "race": "black"})
        assert pattern.to_group() == group(gender="female", race="black")

    def test_root_to_group_rejected(self, schema):
        with pytest.raises(InvalidParameterError):
            Pattern.root(schema).to_group()

    def test_hashable_value_semantics(self, schema):
        a = Pattern.from_mapping(schema, {"race": "black"})
        b = Pattern.from_mapping(schema, {"race": "black"})
        assert a == b and hash(a) == hash(b)
