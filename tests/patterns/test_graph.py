"""Unit tests for the pattern graph."""

from __future__ import annotations

import pytest

from repro.data.schema import Schema
from repro.errors import InvalidParameterError
from repro.patterns.graph import PatternGraph
from repro.patterns.pattern import Pattern


@pytest.fixture
def graph():
    return PatternGraph(
        Schema.from_dict(
            {"gender": ["male", "female"], "race": ["white", "black", "asian"]}
        )
    )


class TestEnumeration:
    def test_total_count(self, graph):
        assert graph.n_patterns == (2 + 1) * (3 + 1)
        assert len(graph) == 12

    def test_levels(self, graph):
        assert len(graph.at_level(0)) == 1
        assert len(graph.at_level(1)) == 5
        assert len(graph.at_level(2)) == 6
        assert graph.max_level == 2

    def test_leaves_are_fully_specified(self, graph):
        leaves = graph.leaves()
        assert len(leaves) == 6
        assert all(leaf.is_fully_specified for leaf in leaves)

    def test_level_out_of_range(self, graph):
        with pytest.raises(InvalidParameterError):
            graph.at_level(3)


class TestAdjacency:
    def test_root_children(self, graph):
        assert len(graph.children(graph.root)) == 5

    def test_leaf_parents(self, graph):
        leaf = Pattern.from_mapping(
            graph.schema, {"gender": "female", "race": "black"}
        )
        assert {p.describe() for p in graph.parents(leaf)} == {"female-X", "X-black"}

    def test_figure5_shape(self, graph):
        """Spot-check the paper's Figure 5 relationships."""
        female_x = Pattern.from_mapping(graph.schema, {"gender": "female"})
        female_black = Pattern.from_mapping(
            graph.schema, {"gender": "female", "race": "black"}
        )
        assert female_black in graph.children(female_x)
        assert female_x in graph.parents(female_black)

    def test_ancestors(self, graph):
        leaf = Pattern.from_mapping(
            graph.schema, {"gender": "female", "race": "black"}
        )
        ancestors = {p.describe() for p in graph.ancestors(leaf)}
        assert ancestors == {"female-X", "X-black", "X-X"}

    def test_matching_leaves_partition(self, graph):
        """Every pattern's matching leaves form a disjoint cover; the root's
        matching leaves are all of them."""
        assert set(graph.matching_leaves(graph.root)) == set(graph.leaves())
        female_x = Pattern.from_mapping(graph.schema, {"gender": "female"})
        leaves = graph.matching_leaves(female_x)
        assert len(leaves) == 3
        assert all(leaf.values[0] == "female" for leaf in leaves)

    def test_leaf_matches_only_itself(self, graph):
        leaf = graph.leaves()[0]
        assert graph.matching_leaves(leaf) == (leaf,)


class TestSingleAttribute:
    def test_binary_attribute_graph(self):
        graph = PatternGraph(Schema.from_dict({"gender": ["male", "female"]}))
        assert graph.n_patterns == 3
        assert len(graph.leaves()) == 2
        assert graph.parents(graph.leaves()[0]) == (graph.root,)
