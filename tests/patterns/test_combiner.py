"""Unit tests for the Pattern-Combiner roll-up."""

from __future__ import annotations

import pytest

from repro.data.schema import Schema
from repro.errors import InvalidParameterError
from repro.patterns.combiner import LeafCoverage, combine_leaf_coverage
from repro.patterns.graph import PatternGraph
from repro.patterns.pattern import Pattern


@pytest.fixture
def graph():
    return PatternGraph(
        Schema.from_dict({"gender": ["male", "female"], "race": ["white", "black"]})
    )


def _leaf(graph, **conditions):
    return Pattern.from_mapping(graph.schema, conditions)


def _full_results(graph, counts, tau):
    return {
        leaf: LeafCoverage(covered=counts[leaf.describe()] >= tau,
                           count=min(counts[leaf.describe()], tau)
                           if counts[leaf.describe()] >= tau
                           else counts[leaf.describe()])
        for leaf in graph.leaves()
    }


class TestRollUp:
    def test_paper_example_mup(self, graph):
        """female-black uncovered with covered parents => MUP (the paper's
        running example around Figure 5)."""
        results = _full_results(
            graph,
            {"male-white": 100, "female-white": 60, "male-black": 55, "female-black": 3},
            tau=50,
        )
        report = combine_leaf_coverage(graph, results, tau=50)
        assert [m.describe() for m in report.mups] == ["female-black"]
        assert report.verdict(_leaf(graph, gender="female", race="black")).covered is False
        assert report.verdict(_leaf(graph, race="black")).covered  # 55 + cert

    def test_sibling_counts_combine(self, graph):
        """15 Asian-Female + 20 Asian-Male style example: two uncovered
        siblings whose sum stays uncovered make the parent uncovered too
        (paper's 35 < 50 example, transposed to black)."""
        results = _full_results(
            graph,
            {"male-white": 5000, "female-white": 80, "male-black": 20, "female-black": 15},
            tau=50,
        )
        report = combine_leaf_coverage(graph, results, tau=50)
        black = report.verdict(_leaf(graph, race="black"))
        assert not black.covered
        assert black.count_lower_bound == 35
        assert black.count_is_exact
        # X-black is the MUP; its children are uncovered but not maximal.
        assert _leaf(graph, race="black") in report.mups
        assert _leaf(graph, gender="female", race="black") not in report.mups

    def test_uncovered_siblings_with_covering_sum(self, graph):
        """28 + 32 >= 50: parent covered without extra tasks (paper's other
        example)."""
        results = _full_results(
            graph,
            {"male-white": 5000, "female-white": 80, "male-black": 32, "female-black": 28},
            tau=50,
        )
        report = combine_leaf_coverage(graph, results, tau=50)
        assert report.verdict(_leaf(graph, race="black")).covered
        assert {m.describe() for m in report.mups} == {"male-black", "female-black"}

    def test_root_can_be_mup(self, graph):
        results = _full_results(
            graph,
            {"male-white": 10, "female-white": 5, "male-black": 3, "female-black": 1},
            tau=50,
        )
        report = combine_leaf_coverage(graph, results, tau=50)
        assert Pattern.root(graph.schema) in report.mups
        assert len(report.mups) == 1  # nothing below the root is maximal

    def test_all_covered_no_mups(self, graph):
        results = _full_results(
            graph,
            {"male-white": 60, "female-white": 60, "male-black": 60, "female-black": 60},
            tau=50,
        )
        report = combine_leaf_coverage(graph, results, tau=50)
        assert report.mups == ()
        assert len(report.covered) == graph.n_patterns

    def test_count_exactness_flag(self, graph):
        results = _full_results(
            graph,
            {"male-white": 100, "female-white": 10, "male-black": 5, "female-black": 3},
            tau=50,
        )
        report = combine_leaf_coverage(graph, results, tau=50)
        # female-X spans one uncovered pair only -> exact.
        female = report.verdict(_leaf(graph, gender="female"))
        assert female.count_is_exact and female.count_lower_bound == 13
        # X-white includes a covered leaf -> lower bound only.
        white = report.verdict(_leaf(graph, race="white"))
        assert not white.count_is_exact


class TestValidation:
    def test_missing_leaf_rejected(self, graph):
        results = {graph.leaves()[0]: LeafCoverage(covered=False, count=0)}
        with pytest.raises(InvalidParameterError):
            combine_leaf_coverage(graph, results, tau=50)

    def test_non_leaf_key_rejected(self, graph):
        results = _full_results(
            graph,
            {"male-white": 60, "female-white": 60, "male-black": 60, "female-black": 60},
            tau=50,
        )
        results[Pattern.root(graph.schema)] = LeafCoverage(covered=True, count=50)
        with pytest.raises(InvalidParameterError):
            combine_leaf_coverage(graph, results, tau=50)

    def test_inconsistent_certificates_rejected(self, graph):
        results = _full_results(
            graph,
            {"male-white": 60, "female-white": 60, "male-black": 60, "female-black": 60},
            tau=50,
        )
        bad_leaf = graph.leaves()[0]
        results[bad_leaf] = LeafCoverage(covered=True, count=10)  # covered but < tau
        with pytest.raises(InvalidParameterError):
            combine_leaf_coverage(graph, results, tau=50)
        results[bad_leaf] = LeafCoverage(covered=False, count=60)  # uncovered but >= tau
        with pytest.raises(InvalidParameterError):
            combine_leaf_coverage(graph, results, tau=50)

    def test_invalid_tau(self, graph):
        with pytest.raises(InvalidParameterError):
            combine_leaf_coverage(graph, {}, tau=0)

    def test_describe_contains_mup_marker(self, graph):
        results = _full_results(
            graph,
            {"male-white": 100, "female-white": 60, "male-black": 55, "female-black": 3},
            tau=50,
        )
        report = combine_leaf_coverage(graph, results, tau=50)
        assert "<-- MUP" in report.describe()
