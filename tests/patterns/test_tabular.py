"""Unit tests for the tabular coverage reference implementation."""

from __future__ import annotations

import pytest

from repro.data.schema import Schema
from repro.data.synthetic import intersectional_dataset
from repro.errors import InvalidParameterError
from repro.patterns.pattern import Pattern
from repro.patterns.tabular import assess_tabular_coverage, pattern_count


@pytest.fixture
def schema():
    return Schema.from_dict(
        {"gender": ["male", "female"], "race": ["white", "black"]}
    )


@pytest.fixture
def dataset(schema):
    return intersectional_dataset(
        schema,
        {
            ("male", "white"): 100,
            ("female", "white"): 60,
            ("male", "black"): 55,
            ("female", "black"): 3,
        },
        shuffle=False,
    )


class TestPatternCount:
    def test_leaf_counts(self, dataset, schema):
        leaf = Pattern.from_mapping(schema, {"gender": "female", "race": "black"})
        assert pattern_count(dataset, leaf) == 3

    def test_partial_pattern_counts(self, dataset, schema):
        assert pattern_count(dataset, Pattern.from_mapping(schema, {"race": "black"})) == 58
        assert pattern_count(dataset, Pattern.from_mapping(schema, {"gender": "female"})) == 63

    def test_root_counts_everything(self, dataset, schema):
        assert pattern_count(dataset, Pattern.root(schema)) == len(dataset)


class TestAssessCoverage:
    def test_verdicts_and_mups(self, dataset):
        report = assess_tabular_coverage(dataset, tau=50)
        assert [m.describe() for m in report.mups] == ["female-black"]
        assert all(v.count_is_exact for v in report.verdicts.values())

    def test_counts_are_exact(self, dataset, schema):
        report = assess_tabular_coverage(dataset, tau=50)
        for pattern, verdict in report.verdicts.items():
            assert verdict.count_lower_bound == pattern_count(dataset, pattern)

    def test_mups_cover_the_uncovered_region(self, dataset):
        """Every uncovered pattern must be a specialization of some MUP
        (or a MUP itself) — maximality."""
        report = assess_tabular_coverage(dataset, tau=50)
        for pattern in report.uncovered:
            assert any(mup.generalizes(pattern) for mup in report.mups)

    def test_tau_larger_than_dataset(self, dataset):
        report = assess_tabular_coverage(dataset, tau=10_000)
        # Everything uncovered; the root is the single MUP.
        assert len(report.mups) == 1
        assert report.mups[0].is_root

    def test_tau_one(self, dataset):
        report = assess_tabular_coverage(dataset, tau=1)
        assert report.mups == ()  # every group has at least one object

    def test_invalid_tau(self, dataset):
        with pytest.raises(InvalidParameterError):
            assess_tabular_coverage(dataset, tau=0)

    def test_graph_schema_mismatch_rejected(self, dataset):
        from repro.patterns.graph import PatternGraph

        other = PatternGraph(Schema.from_dict({"x": ["0", "1"]}))
        with pytest.raises(InvalidParameterError):
            assess_tabular_coverage(dataset, tau=5, graph=other)
