"""Unit tests for the level-wise MUP search (pruned top-down traversal)."""

from __future__ import annotations

import pytest

from repro.data.schema import Schema
from repro.data.synthetic import intersectional_dataset
from repro.errors import InvalidParameterError
from repro.patterns.graph import PatternGraph
from repro.patterns.pattern import Pattern
from repro.patterns.search import find_mups_levelwise
from repro.patterns.tabular import assess_tabular_coverage


@pytest.fixture
def schema():
    return Schema.from_dict(
        {"gender": ["male", "female"], "race": ["white", "black", "asian"]}
    )


def build(schema, counts):
    return intersectional_dataset(schema, counts, shuffle=False)


class TestCorrectness:
    def test_matches_exhaustive_reference(self, schema):
        dataset = build(
            schema,
            {
                ("male", "white"): 900,
                ("female", "white"): 200,
                ("male", "black"): 70,
                ("female", "black"): 10,
                ("male", "asian"): 20,
                ("female", "asian"): 5,
            },
        )
        result = find_mups_levelwise(dataset, tau=50)
        reference = assess_tabular_coverage(dataset, tau=50)
        assert set(result.mups) == set(reference.mups)

    def test_root_uncovered_short_circuits(self, schema):
        dataset = build(schema, {("male", "white"): 10})
        result = find_mups_levelwise(dataset, tau=50)
        assert result.mups == (Pattern.root(schema),)
        assert result.n_patterns_counted == 1  # only the root was counted

    def test_everything_covered_no_mups(self, schema):
        dataset = build(
            schema,
            {values: 100 for values in (
                ("male", "white"), ("female", "white"),
                ("male", "black"), ("female", "black"),
                ("male", "asian"), ("female", "asian"),
            )},
        )
        result = find_mups_levelwise(dataset, tau=50)
        assert result.mups == ()

    def test_is_covered_accessor(self, schema):
        dataset = build(
            schema,
            {
                ("male", "white"): 900,
                ("female", "white"): 200,
                ("male", "black"): 5,
                ("female", "black"): 5,
                ("male", "asian"): 100,
                ("female", "asian"): 100,
            },
        )
        result = find_mups_levelwise(dataset, tau=50)
        reference = assess_tabular_coverage(dataset, tau=50)
        for pattern in PatternGraph(schema):
            assert result.is_covered(pattern) == reference.verdict(pattern).covered


class TestPruning:
    def test_counts_fewer_patterns_when_uncovered_region_is_large(self, schema):
        """With one dominant group, most patterns sit under uncovered
        level-1 ancestors and must never be counted."""
        dataset = build(schema, {("male", "white"): 10_000})
        result = find_mups_levelwise(dataset, tau=50)
        graph = PatternGraph(schema)
        assert result.n_patterns_counted < graph.n_patterns
        # MUPs here: every level-1 value pattern except male-X / X-white
        # ... is uncovered; check against the reference.
        reference = assess_tabular_coverage(dataset, tau=50)
        assert set(result.mups) == set(reference.mups)

    def test_never_counts_children_of_uncovered(self, schema):
        dataset = build(
            schema,
            {
                ("male", "white"): 900,
                ("female", "white"): 10,  # female-X uncovered overall? no:
                ("female", "black"): 10,  # female total = 25 < 50
                ("female", "asian"): 5,
            },
        )
        result = find_mups_levelwise(dataset, tau=50)
        female_x = Pattern.from_mapping(schema, {"gender": "female"})
        assert female_x in result.mups
        # No fully-specified female pattern was ever counted.
        for pattern in result.counts:
            if pattern.level == 2:
                assert pattern.values[0] != "female"


class TestValidation:
    def test_invalid_tau(self, schema):
        dataset = build(schema, {("male", "white"): 10})
        with pytest.raises(InvalidParameterError):
            find_mups_levelwise(dataset, tau=0)

    def test_graph_schema_mismatch(self, schema):
        dataset = build(schema, {("male", "white"): 10})
        with pytest.raises(InvalidParameterError):
            find_mups_levelwise(
                dataset, tau=5, graph=PatternGraph(Schema.from_dict({"x": ["0", "1"]}))
            )
