"""Unit tests for the pricing model and cost ledger."""

from __future__ import annotations

import pytest

from repro.crowd.pricing import CostLedger, FixedPricing
from repro.errors import InvalidParameterError


class TestFixedPricing:
    def test_paper_defaults(self):
        pricing = FixedPricing()
        assert pricing.price_per_hit == 0.10
        assert pricing.service_fee_rate == 0.20  # AMT's 20%

    def test_hit_cost_scales_with_assignments(self):
        pricing = FixedPricing(price_per_hit=0.05)
        assert pricing.hit_cost(3) == pytest.approx(0.15)

    def test_fee(self):
        assert FixedPricing().fee(44.10) == pytest.approx(8.82)  # paper's totals

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            FixedPricing(price_per_hit=-1)
        with pytest.raises(InvalidParameterError):
            FixedPricing(service_fee_rate=-0.1)


class TestCostLedger:
    def test_charging(self):
        ledger = CostLedger()
        ledger.charge(is_set_query=True, n_assignments=3)
        ledger.charge(is_set_query=False, n_assignments=3)
        assert ledger.n_hits == 2
        assert ledger.n_set_hits == 1
        assert ledger.n_point_hits == 1
        assert ledger.n_assignments == 6
        assert ledger.worker_payments == pytest.approx(0.6)
        assert ledger.service_fees == pytest.approx(0.12)
        assert ledger.total_cost == pytest.approx(0.72)

    def test_invalid_assignments(self):
        with pytest.raises(InvalidParameterError):
            CostLedger().charge(is_set_query=True, n_assignments=0)

    def test_summary_mentions_totals(self):
        ledger = CostLedger()
        ledger.charge(is_set_query=True, n_assignments=3)
        text = ledger.summary()
        assert "1 HITs" in text and "$0.30" in text
