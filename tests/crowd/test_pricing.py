"""Unit tests for the pricing models and cost ledger."""

from __future__ import annotations

import pytest

from repro.crowd.pricing import (
    CostLedger,
    FixedPricing,
    PricingModel,
    SizeDependentPricing,
)
from repro.errors import InvalidParameterError


class TestFixedPricing:
    def test_paper_defaults(self):
        pricing = FixedPricing()
        assert pricing.price_per_hit == 0.10
        assert pricing.service_fee_rate == 0.20  # AMT's 20%

    def test_hit_cost_scales_with_assignments(self):
        pricing = FixedPricing(price_per_hit=0.05)
        assert pricing.hit_cost(3) == pytest.approx(0.15)

    def test_fee(self):
        assert FixedPricing().fee(44.10) == pytest.approx(8.82)  # paper's totals

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            FixedPricing(price_per_hit=-1)
        with pytest.raises(InvalidParameterError):
            FixedPricing(service_fee_rate=-0.1)


class TestPricingProtocol:
    def test_both_models_implement_the_protocol(self):
        assert isinstance(FixedPricing(), PricingModel)
        assert isinstance(SizeDependentPricing(), PricingModel)

    def test_fixed_pricing_ignores_hit_size(self):
        pricing = FixedPricing(price_per_hit=0.05)
        assert pricing.hit_cost(3, n_images=50) == pytest.approx(0.15)
        assert pricing.hit_cost(3, n_images=1) == pytest.approx(0.15)

    def test_size_dependent_hit_cost_bills_by_display_size(self):
        pricing = SizeDependentPricing(base_price=0.02, per_image=0.002)
        # price(50) = 0.02 + 0.002*50 = 0.12, times 3 assignments
        assert pricing.hit_cost(3, n_images=50) == pytest.approx(0.36)
        assert pricing.hit_cost(1) == pytest.approx(pricing.point_price())

    def test_size_dependent_hit_cost_validates(self):
        with pytest.raises(InvalidParameterError):
            SizeDependentPricing().hit_cost(0, n_images=10)
        with pytest.raises(InvalidParameterError):
            SizeDependentPricing().hit_cost(3, n_images=0)


class TestCostLedger:
    def test_charging(self):
        ledger = CostLedger()
        ledger.charge(is_set_query=True, n_assignments=3)
        ledger.charge(is_set_query=False, n_assignments=3)
        assert ledger.n_hits == 2
        assert ledger.n_set_hits == 1
        assert ledger.n_point_hits == 1
        assert ledger.n_assignments == 6
        assert ledger.worker_payments == pytest.approx(0.6)
        assert ledger.service_fees == pytest.approx(0.12)
        assert ledger.total_cost == pytest.approx(0.72)

    def test_invalid_assignments(self):
        with pytest.raises(InvalidParameterError):
            CostLedger().charge(is_set_query=True, n_assignments=0)
        with pytest.raises(InvalidParameterError):
            CostLedger().charge(is_set_query=True, n_assignments=3, n_images=0)

    def test_size_dependent_ledger_charges_by_query_size(self):
        """Regression: a ledger configured with SizeDependentPricing used
        to raise AttributeError on charge (no hit_cost) and could never
        see the query size. Now it bills exactly price(k)·assignments."""
        pricing = SizeDependentPricing(
            base_price=0.02, per_image=0.002, service_fee_rate=0.20
        )
        ledger = CostLedger(pricing=pricing)
        payment = ledger.charge(is_set_query=True, n_assignments=3, n_images=50)
        assert payment == pytest.approx(0.36)
        payment = ledger.charge(is_set_query=False, n_assignments=3, n_images=1)
        assert payment == pytest.approx(3 * 0.022)
        assert ledger.worker_payments == pytest.approx(0.36 + 0.066)
        assert ledger.service_fees == pytest.approx(0.2 * (0.36 + 0.066))

    def test_summary_mentions_totals(self):
        ledger = CostLedger()
        ledger.charge(is_set_query=True, n_assignments=3)
        text = ledger.summary()
        assert "1 HITs" in text and "$0.30" in text
