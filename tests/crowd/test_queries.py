"""Unit tests for crowd query/HIT types."""

from __future__ import annotations

import pytest

from repro.crowd.queries import HitRecord, PointQuery, SetQuery
from repro.data.groups import group
from repro.errors import InvalidParameterError

FEMALE = group(gender="female")


class TestPointQuery:
    def test_basic(self):
        assert PointQuery(3).index == 3

    def test_negative_index_rejected(self):
        with pytest.raises(InvalidParameterError):
            PointQuery(-1)


class TestSetQuery:
    def test_indices_coerced_to_tuple(self):
        query = SetQuery([3, 1, 2], FEMALE)
        assert query.indices == (3, 1, 2)
        assert len(query) == 3

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            SetQuery([], FEMALE)

    def test_negative_index_rejected(self):
        with pytest.raises(InvalidParameterError):
            SetQuery([1, -2], FEMALE)

    def test_describe_mentions_predicate_and_size(self):
        text = SetQuery([0, 1, 2], FEMALE).describe()
        assert "gender=female" in text
        assert "3" in text

    def test_hashable(self):
        assert SetQuery([1, 2], FEMALE) == SetQuery((1, 2), FEMALE)


class TestHitRecord:
    def test_error_accounting(self):
        record = HitRecord(
            query=SetQuery([0, 1], FEMALE),
            worker_ids=(1, 2, 3),
            answers=(True, False, True),
            aggregated=True,
            truth=True,
        )
        assert record.n_incorrect_answers == 1
        assert record.aggregation_correct

    def test_aggregation_incorrect(self):
        record = HitRecord(
            query=PointQuery(0),
            worker_ids=(1,),
            answers=({"gender": "male"},),
            aggregated={"gender": "male"},
            truth={"gender": "female"},
        )
        assert record.n_incorrect_answers == 1
        assert not record.aggregation_correct
