"""Sharded out-of-core answering == dense answering, end to end.

The sharded index must thread through every layer transparently: the
same oracle kinds, the same stepper-derived run keys, sessions, and the
multi-tenant service — with bit-identical verdicts, counts, task
charges, and rng streams versus the dense path over identical content.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import (
    AuditSession,
    GroupAuditSpec,
    IntersectionalAuditSpec,
    MultipleAuditSpec,
)
from repro.crowd.oracle import CrowdOracle, FlakyOracle, GroundTruthOracle
from repro.crowd.platform import CrowdPlatform
from repro.crowd.workers import make_worker_pool
from repro.data.groups import group
from repro.data.schema import Schema
from repro.data.sharded import ShardedDataset, ShardedMembershipIndex, ShardExecutor
from repro.data.synthetic import (
    binary_dataset,
    intersectional_dataset,
    single_attribute_dataset,
)
from repro.service import AuditService

FEMALE = group(gender="female")


def fingerprint(report):
    return report.to_dict()["entries"]


@pytest.fixture
def dense():
    return binary_dataset(3_000, 40, rng=np.random.default_rng(21))


def run_session(oracle, specs, *, engine, seed=123):
    with AuditSession(oracle, engine=engine, seed=seed) as session:
        return session.run_many(specs)


@pytest.mark.parametrize("engine", [None, True], ids=["sequential", "engine"])
@pytest.mark.parametrize("shard_size", [256, 1_000, 8_192])
def test_group_audit_bit_identical_over_sharded_oracle(dense, engine, shard_size):
    specs = [
        GroupAuditSpec(predicate=FEMALE, tau=50),
        GroupAuditSpec(predicate=group(gender="male"), tau=10),
    ]
    reference = run_session(GroundTruthOracle(dense), specs, engine=engine)
    sharded = ShardedDataset.from_dataset(dense, shard_size, max_resident_shards=2)
    report = run_session(GroundTruthOracle(sharded), specs, engine=engine)
    assert fingerprint(report) == fingerprint(reference)
    assert report.tasks == reference.tasks


@pytest.mark.parametrize("engine", [None, True], ids=["sequential", "engine"])
def test_multiple_audit_bit_identical_over_sharded_oracle(engine):
    rng = np.random.default_rng(4)
    counts = {"white": 2_600, "black": 45, "asian": 40, "other": 15}
    dense = single_attribute_dataset(counts, rng=rng)
    spec = MultipleAuditSpec(
        groups=tuple(group(race=value) for value in counts), tau=50
    )
    reference = run_session(GroundTruthOracle(dense), [spec], engine=engine)
    sharded = ShardedDataset.from_dataset(dense, 512, max_resident_shards=2)
    report = run_session(GroundTruthOracle(sharded), [spec], engine=engine)
    assert fingerprint(report) == fingerprint(reference)
    assert report.tasks == reference.tasks


@pytest.mark.parametrize("engine", [None, True], ids=["sequential", "engine"])
def test_intersectional_audit_bit_identical_over_sharded_oracle(engine):
    schema = Schema.from_dict(
        {"gender": ["male", "female"], "race": ["white", "black"]}
    )
    joint = {
        ("male", "white"): 2_400,
        ("female", "white"): 300,
        ("male", "black"): 45,
        ("female", "black"): 30,
    }
    dense = intersectional_dataset(schema, joint, rng=np.random.default_rng(9))
    spec = IntersectionalAuditSpec(schema=schema, tau=50)
    reference = run_session(GroundTruthOracle(dense), [spec], engine=engine)
    sharded = ShardedDataset.from_dataset(dense, 700, max_resident_shards=3)
    report = run_session(GroundTruthOracle(sharded), [spec], engine=engine)
    assert fingerprint(report) == fingerprint(reference)
    assert report.tasks == reference.tasks


def test_threaded_executor_keeps_bit_identity(dense):
    spec = GroupAuditSpec(predicate=FEMALE, tau=50)
    reference = run_session(GroundTruthOracle(dense), [spec], engine=True)
    sharded = ShardedDataset.from_dataset(dense, 256, max_resident_shards=2)
    with ShardExecutor(mode="threads", max_workers=4) as executor:
        index = ShardedMembershipIndex(sharded, executor=executor)
        report = run_session(
            GroundTruthOracle(sharded, index=index), [spec], engine=True
        )
    assert fingerprint(report) == fingerprint(reference)
    assert report.tasks == reference.tasks


def test_flaky_oracle_consumes_identical_rng_stream(dense):
    spec = GroupAuditSpec(predicate=FEMALE, tau=50)
    reference = run_session(
        FlakyOracle(dense, np.random.default_rng(77), set_error_rate=0.08),
        [spec],
        engine=True,
    )
    sharded = ShardedDataset.from_dataset(dense, 400, max_resident_shards=2)
    report = run_session(
        FlakyOracle(sharded, np.random.default_rng(77), set_error_rate=0.08),
        [spec],
        engine=True,
    )
    # Same truth, same flip draws in the same batch shapes: identical
    # noisy verdicts and identical charges.
    assert fingerprint(report) == fingerprint(reference)
    assert report.tasks == reference.tasks


def test_crowd_platform_answers_from_sharded_hidden_truth(dense):
    spec = GroupAuditSpec(predicate=FEMALE, tau=40)

    def build(dataset, seed):
        workers = make_worker_pool(
            12, rng=np.random.default_rng(seed), error_rate=0.05
        )
        platform = CrowdPlatform(
            dataset, workers, np.random.default_rng(seed + 1)
        )
        return CrowdOracle(platform), platform

    reference_oracle, reference_platform = build(dense, 5)
    reference = run_session(reference_oracle, [spec], engine=None)
    sharded = ShardedDataset.from_dataset(dense, 512)
    oracle, platform = build(sharded, 5)
    report = run_session(oracle, [spec], engine=None)
    assert fingerprint(report) == fingerprint(reference)
    assert platform.ledger.n_hits == reference_platform.ledger.n_hits
    assert platform.raw_error_rate == reference_platform.raw_error_rate


def test_audit_service_runs_sharded_jobs_bit_identically(dense):
    specs = [
        GroupAuditSpec(predicate=FEMALE, tau=50),
        GroupAuditSpec(predicate=group(gender="male"), tau=25),
        MultipleAuditSpec(groups=(FEMALE, group(gender="male")), tau=30),
    ]

    def drain(dataset):
        with AuditService(GroundTruthOracle(dataset), seed=3) as service:
            handles = [
                service.submit(spec, tenant=f"tenant-{i % 2}")
                for i, spec in enumerate(specs)
            ]
            service.drain()
            return [fingerprint(handle.result()) for handle in handles], (
                service.oracle.ledger.total
            )

    reference_results, reference_tasks = drain(dense)
    sharded_results, sharded_tasks = drain(
        ShardedDataset.from_dataset(dense, 640, max_resident_shards=2)
    )
    assert sharded_results == reference_results
    assert sharded_tasks == reference_tasks


def test_session_exposes_sharded_membership_index(dense):
    sharded = ShardedDataset.from_dataset(dense, 512)
    oracle = GroundTruthOracle(sharded)
    with AuditSession(oracle) as session:
        assert isinstance(session.membership_index, ShardedMembershipIndex)
        assert session.dataset_size == len(dense)
