"""Randomized equivalence: vectorized answering == row-at-a-time answering.

The vectorized scale path (membership index, prefix-count runs, interned
query keys, keyed oracle hooks) must be a pure optimization: for every
audit kind, every oracle kind, and every view shape, verdicts, counts,
and task charges must be bit-identical to an oracle that evaluates
``matches_row`` per object in pure Python — the reference semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.group_coverage import group_coverage
from repro.core.intersectional_coverage import intersectional_coverage
from repro.core.multiple_coverage import multiple_coverage
from repro.crowd.oracle import FlakyOracle, GroundTruthOracle, Oracle
from repro.data.groups import Negation, SuperGroup, group
from repro.data.schema import Schema
from repro.data.synthetic import intersectional_dataset

SCHEMA = Schema.from_dict(
    {"gender": ["male", "female"], "race": ["white", "black"]}
)


class RowAtATimeOracle(Oracle):
    """Reference semantics: per-object Python evaluation, no vectorization."""

    def __init__(self, dataset, *, budget=None):
        super().__init__(dataset.schema, budget=budget)
        self.dataset = dataset

    def _answer_set(self, indices, predicate):
        return any(
            predicate.matches_row(self.dataset.value_row(int(i))) for i in indices
        )

    def _answer_point(self, index):
        return self.dataset.value_row(index)


class RowAtATimeFlakyOracle(RowAtATimeOracle):
    """Row-at-a-time truth + the same flip stream FlakyOracle draws."""

    def __init__(self, dataset, rng, *, set_error_rate=0.0):
        super().__init__(dataset)
        self.rng = rng
        self.set_error_rate = set_error_rate

    def _answer_set(self, indices, predicate):
        truth = super()._answer_set(indices, predicate)
        if self.rng.random() < self.set_error_rate:
            return not truth
        return truth


def random_dataset(rng):
    joint = {
        ("male", "white"): int(rng.integers(50, 400)),
        ("female", "white"): int(rng.integers(0, 120)),
        ("male", "black"): int(rng.integers(0, 60)),
        ("female", "black"): int(rng.integers(0, 25)),
    }
    return intersectional_dataset(SCHEMA, joint, rng=rng)


def random_view(rng, n_objects):
    """Half the time a full arange (run-keyed), else a scattered subset."""
    if rng.random() < 0.5:
        return None
    size = int(rng.integers(1, n_objects + 1))
    return np.sort(rng.choice(n_objects, size=size, replace=False))


def random_predicate(rng):
    choices = [
        group(gender="female"),
        group(gender="female", race="black"),
        SuperGroup([group(race="black"), group(gender="female", race="white")]),
        Negation(group(gender="male")),
    ]
    return choices[int(rng.integers(len(choices)))]


@pytest.mark.parametrize("trial", range(12))
def test_group_coverage_bit_identical(trial):
    rng = np.random.default_rng(100 + trial)
    dataset = random_dataset(rng)
    predicate = random_predicate(rng)
    view = random_view(rng, len(dataset))
    tau = int(rng.integers(1, 40))
    n = int(rng.integers(2, 60))

    reference = group_coverage(
        RowAtATimeOracle(dataset), predicate, tau,
        n=n, view=view, dataset_size=len(dataset),
    )
    vectorized = group_coverage(
        GroundTruthOracle(dataset), predicate, tau,
        n=n, view=view, dataset_size=len(dataset),
    )
    assert vectorized.covered == reference.covered
    assert vectorized.count == reference.count
    assert vectorized.discovered_indices == reference.discovered_indices
    assert vectorized.tasks.n_set_queries == reference.tasks.n_set_queries
    assert vectorized.tasks.n_point_queries == reference.tasks.n_point_queries


@pytest.mark.parametrize("trial", range(8))
def test_group_coverage_flaky_bit_identical(trial):
    """Same rng seed -> same flip stream -> identical noisy verdicts."""
    rng = np.random.default_rng(300 + trial)
    dataset = random_dataset(rng)
    predicate = random_predicate(rng)
    tau = int(rng.integers(1, 30))

    reference = group_coverage(
        RowAtATimeFlakyOracle(
            dataset, np.random.default_rng(trial), set_error_rate=0.15
        ),
        predicate, tau, n=16, dataset_size=len(dataset),
    )
    vectorized = group_coverage(
        FlakyOracle(
            dataset, np.random.default_rng(trial), set_error_rate=0.15
        ),
        predicate, tau, n=16, dataset_size=len(dataset),
    )
    assert vectorized.covered == reference.covered
    assert vectorized.count == reference.count
    assert vectorized.discovered_indices == reference.discovered_indices
    assert vectorized.tasks.total == reference.tasks.total


@pytest.mark.parametrize("engine", [False, True], ids=["sequential", "engine"])
@pytest.mark.parametrize("trial", range(4))
def test_multiple_coverage_bit_identical(trial, engine):
    rng = np.random.default_rng(500 + trial)
    dataset = random_dataset(rng)
    groups = (
        group(gender="male"),
        group(gender="female"),
    )
    tau = int(rng.integers(2, 30))

    reference = multiple_coverage(
        RowAtATimeOracle(dataset), groups, tau,
        n=20, rng=np.random.default_rng(trial), dataset_size=len(dataset),
    )

    kwargs = {}
    if engine:
        from repro.engine import QueryEngine

        oracle = GroundTruthOracle(dataset)
        kwargs = {"engine": QueryEngine(oracle)}
    else:
        oracle = GroundTruthOracle(dataset)
    vectorized = multiple_coverage(
        oracle, groups, tau,
        n=20, rng=np.random.default_rng(trial), dataset_size=len(dataset),
        **kwargs,
    )

    for ref_entry, vec_entry in zip(reference.entries, vectorized.entries):
        assert vec_entry.group == ref_entry.group
        assert vec_entry.covered == ref_entry.covered
        assert vec_entry.count == ref_entry.count
    assert vectorized.super_groups == reference.super_groups
    if not engine:  # engine mode may save tasks through its cache
        assert vectorized.tasks.total == reference.tasks.total


@pytest.mark.parametrize("trial", range(3))
def test_intersectional_coverage_bit_identical(trial):
    rng = np.random.default_rng(700 + trial)
    dataset = random_dataset(rng)
    tau = int(rng.integers(2, 20))

    reference = intersectional_coverage(
        RowAtATimeOracle(dataset), SCHEMA, tau,
        n=16, rng=np.random.default_rng(trial), dataset_size=len(dataset),
    )
    vectorized = intersectional_coverage(
        GroundTruthOracle(dataset), SCHEMA, tau,
        n=16, rng=np.random.default_rng(trial), dataset_size=len(dataset),
    )

    assert (
        sorted(p.describe() for p in vectorized.mups)
        == sorted(p.describe() for p in reference.mups)
    )
    for ref_entry, vec_entry in zip(
        reference.leaf_report.entries, vectorized.leaf_report.entries
    ):
        assert vec_entry.covered == ref_entry.covered
        assert vec_entry.count == ref_entry.count
    assert vectorized.tasks.total == reference.tasks.total


@pytest.mark.parametrize("trial", range(6))
def test_oracle_answers_match_per_query(trial):
    """ask_set / ask_set_batch / ask_point_batch against the reference."""
    rng = np.random.default_rng(900 + trial)
    dataset = random_dataset(rng)
    vectorized = GroundTruthOracle(dataset)
    reference = RowAtATimeOracle(dataset)
    queries = []
    for _ in range(40):
        predicate = random_predicate(rng)
        if rng.random() < 0.5:
            start = int(rng.integers(0, len(dataset)))
            stop = int(rng.integers(start, len(dataset) + 1))
            indices = np.arange(start, stop)
        else:
            indices = rng.choice(
                len(dataset), size=int(rng.integers(0, 30)), replace=False
            )
        queries.append((indices, predicate))

    batch = vectorized.ask_set_batch(queries)
    for (indices, predicate), batched_answer in zip(queries, batch):
        assert vectorized.ask_set(indices, predicate) == batched_answer
        assert reference.ask_set(indices, predicate) == batched_answer

    points = rng.choice(len(dataset), size=15, replace=False).tolist()
    assert vectorized.ask_point_batch(points) == [
        reference.ask_point(index) for index in points
    ]


def test_point_batch_bounds_checked(trial=0):
    """Batched point queries reject out-of-range indices like the
    single-query path instead of wrapping via fancy-indexing."""
    from repro.errors import OracleError

    dataset = random_dataset(np.random.default_rng(40))
    oracle = GroundTruthOracle(dataset)
    with pytest.raises(OracleError):
        oracle.ask_point_batch([0, -1])
    with pytest.raises(OracleError):
        oracle.ask_point_batch([len(dataset)])


def test_subclassed_point_hook_sees_batched_queries():
    """A subclass overriding only _answer_point must observe every
    batched point query, exactly like the set-hook contract."""
    seen: list[int] = []

    class Tracing(GroundTruthOracle):
        def _answer_point(self, index):
            seen.append(index)
            return super()._answer_point(index)

    class TracingFlaky(FlakyOracle):
        def _answer_point(self, index):
            seen.append(index)
            return super()._answer_point(index)

    dataset = random_dataset(np.random.default_rng(41))
    Tracing(dataset).ask_point_batch([0, 1, 2, 3])
    assert seen == [0, 1, 2, 3]
    seen.clear()
    TracingFlaky(dataset, np.random.default_rng(0)).ask_point_batch([5, 6])
    assert seen == [5, 6]


def test_subclassed_set_hook_sees_every_query():
    """Same contract for set queries, sequential and batched."""
    seen: list[tuple] = []

    class Tracing(GroundTruthOracle):
        def _answer_set(self, indices, predicate):
            seen.append((int(indices[0]), int(indices[-1])))
            return super()._answer_set(indices, predicate)

    dataset = random_dataset(np.random.default_rng(42))
    oracle = Tracing(dataset)
    oracle.ask_set(np.arange(0, 10), group(gender="female"))
    oracle.ask_set_batch(
        [(np.arange(10, 20), group(gender="female")),
         (np.array([1, 5, 9]), group(gender="female"))]
    )
    assert seen == [(0, 9), (10, 19), (1, 9)]
