"""Unit tests for quality-control screening policies."""

from __future__ import annotations

import pytest

from repro.crowd.quality import (
    QC_MAJORITY_ONLY,
    QualificationTest,
    RatingPolicy,
    qc_with_qualification,
    qc_with_rating,
    screen_workers,
)
from repro.crowd.workers import Worker
from repro.errors import InvalidParameterError


def _worker(worker_id=0, **kwargs):
    return Worker(worker_id=worker_id, **kwargs)


class TestQualificationTest:
    def test_competent_worker_passes(self, rng):
        test = QualificationTest(n_questions=20, pass_threshold=0.8)
        assert test.admits(_worker(point_error_rate=0.0), rng)

    def test_hopeless_worker_fails(self, rng):
        test = QualificationTest(n_questions=20, pass_threshold=0.8)
        assert not test.admits(_worker(competence=0.1), rng)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            QualificationTest(n_questions=0)
        with pytest.raises(InvalidParameterError):
            QualificationTest(pass_threshold=0.0)


class TestRatingPolicy:
    def test_paper_criterion(self, rng):
        policy = RatingPolicy()
        good = _worker(percent_assignments_approved=97.0, number_hits_approved=500)
        bad_percent = _worker(percent_assignments_approved=90.0, number_hits_approved=500)
        bad_hits = _worker(percent_assignments_approved=99.0, number_hits_approved=50)
        assert policy.admits(good, rng)
        assert not policy.admits(bad_percent, rng)
        assert not policy.admits(bad_hits, rng)


class TestScreenWorkers:
    def test_empty_policy_admits_all(self, rng):
        workers = [_worker(i) for i in range(5)]
        assert screen_workers(workers, QC_MAJORITY_ONLY, rng) == workers

    def test_policies_compose(self, rng):
        workers = [
            _worker(0, point_error_rate=0.0, percent_assignments_approved=99.0),
            _worker(1, competence=0.1, percent_assignments_approved=99.0),
            _worker(2, point_error_rate=0.0, percent_assignments_approved=50.0),
        ]
        eligible = screen_workers(
            workers, [*qc_with_qualification(), *qc_with_rating()], rng
        )
        assert [w.worker_id for w in eligible] == [0]

    def test_preset_factories(self):
        assert len(qc_with_qualification()) == 1
        assert len(qc_with_rating()) == 1
        assert qc_with_rating()[0].min_percent_approved == 95.0
