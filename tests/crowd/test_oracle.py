"""Unit tests for the oracle layer (ledgers, budgets, three backends)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.oracle import (
    CrowdOracle,
    FlakyOracle,
    GroundTruthOracle,
    TaskLedger,
)
from repro.crowd.platform import CrowdPlatform
from repro.crowd.workers import Worker
from repro.data.groups import Negation, group
from repro.data.synthetic import binary_dataset
from repro.errors import BudgetExceededError, InvalidParameterError, OracleError

FEMALE = group(gender="female")


@pytest.fixture
def dataset(rng):
    return binary_dataset(50, 10, rng=rng)


class TestTaskLedger:
    def test_counting(self):
        ledger = TaskLedger()
        ledger.charge_set()
        ledger.charge_set()
        ledger.charge_point()
        assert (ledger.n_set_queries, ledger.n_point_queries, ledger.total) == (2, 1, 3)

    def test_budget_enforcement(self):
        ledger = TaskLedger(budget=2)
        ledger.charge_set()
        ledger.charge_point()
        with pytest.raises(BudgetExceededError):
            ledger.charge_set()

    def test_round_counting(self):
        ledger = TaskLedger()
        ledger.note_round()
        ledger.charge_set_batch(5)
        assert (ledger.n_rounds, ledger.n_set_queries) == (1, 5)

    def test_batch_budget_is_atomic(self):
        ledger = TaskLedger(budget=10)
        ledger.charge_set_batch(5)
        with pytest.raises(BudgetExceededError):
            ledger.charge_set_batch(7)
        # The refused batch charged nothing.
        assert ledger.n_set_queries == 5
        ledger.charge_point_batch(5)  # exactly exhausts the budget
        assert ledger.total == 10


class TestBatchQueries:
    def test_set_batch_matches_single_asks(self, dataset, rng):
        batched = GroundTruthOracle(dataset)
        single = GroundTruthOracle(dataset)
        queries = [
            (rng.choice(len(dataset), size=int(rng.integers(1, 8)), replace=False), FEMALE)
            for _ in range(20)
        ]
        queries.append((np.arange(len(dataset)), group(gender="male")))
        answers = batched.ask_set_batch(queries)
        assert answers == [single.ask_set(i, p) for i, p in queries]

    def test_batch_charges_per_query_but_one_round(self, dataset):
        oracle = GroundTruthOracle(dataset)
        oracle.ask_set_batch([(np.arange(5), FEMALE)] * 7)
        assert oracle.ledger.n_set_queries == 7
        assert oracle.ledger.n_rounds == 1

    def test_point_batch_matches_single_asks(self, dataset):
        batched = GroundTruthOracle(dataset)
        single = GroundTruthOracle(dataset)
        indices = [0, 3, 17, 49]
        assert batched.ask_point_batch(indices) == [
            single.ask_point(i) for i in indices
        ]
        assert batched.ledger.n_point_queries == 4
        assert batched.ledger.n_rounds == 1

    def test_empty_batches_are_free(self, dataset):
        oracle = GroundTruthOracle(dataset)
        assert oracle.ask_set_batch([]) == []
        assert oracle.ask_point_batch([]) == []
        assert oracle.ledger.total == 0
        assert oracle.ledger.n_rounds == 0

    def test_unaffordable_batch_charges_nothing(self, dataset):
        oracle = GroundTruthOracle(dataset, budget=3)
        with pytest.raises(BudgetExceededError):
            oracle.ask_set_batch([(np.arange(5), FEMALE)] * 4)
        assert oracle.ledger.total == 0

    def test_flaky_batch_error_rate(self, dataset):
        oracle = FlakyOracle(
            dataset, np.random.default_rng(0), set_error_rate=1.0
        )
        truth = GroundTruthOracle(dataset)
        queries = [(np.arange(10), FEMALE), (np.arange(10, 20), FEMALE)]
        flipped = oracle.ask_set_batch(queries)
        straight = truth.ask_set_batch(queries)
        assert flipped == [not answer for answer in straight]


class TestGroundTruthOracle:
    def test_set_answers_match_ground_truth(self, dataset):
        oracle = GroundTruthOracle(dataset)
        members = dataset.positions(FEMALE)
        assert oracle.ask_set(members[:3], FEMALE) is True
        males = dataset.positions(group(gender="male"))
        assert oracle.ask_set(males[:5], FEMALE) is False

    def test_negated_predicate(self, dataset):
        oracle = GroundTruthOracle(dataset)
        members = dataset.positions(FEMALE)
        assert oracle.ask_set(members[:4], Negation(FEMALE)) is False

    def test_point_answers(self, dataset):
        oracle = GroundTruthOracle(dataset)
        index = int(dataset.positions(FEMALE)[0])
        assert oracle.ask_point(index) == {"gender": "female"}
        assert oracle.ask_point_membership(index, FEMALE) is True

    def test_tasks_are_charged(self, dataset):
        oracle = GroundTruthOracle(dataset)
        oracle.ask_set([0, 1], FEMALE)
        oracle.ask_point(0)
        oracle.ask_point_membership(1, FEMALE)
        assert oracle.ledger.n_set_queries == 1
        assert oracle.ledger.n_point_queries == 2

    def test_budget(self, dataset):
        oracle = GroundTruthOracle(dataset, budget=1)
        oracle.ask_point(0)
        with pytest.raises(BudgetExceededError):
            oracle.ask_point(1)

    def test_out_of_range_point(self, dataset):
        with pytest.raises(OracleError):
            GroundTruthOracle(dataset).ask_point(999)


class TestCrowdOracle:
    def test_delegates_to_platform(self, dataset, rng):
        workers = [Worker(worker_id=i, set_error_rate=0.0, point_error_rate=0.0) for i in range(3)]
        platform = CrowdPlatform(dataset, workers, rng)
        oracle = CrowdOracle(platform)
        members = dataset.positions(FEMALE)
        assert oracle.ask_set(members[:2], FEMALE) is True
        assert oracle.ask_point(int(members[0])) == {"gender": "female"}
        # Oracle tasks and platform HITs agree 1:1.
        assert oracle.ledger.total == platform.ledger.n_hits == 2


class TestFlakyOracle:
    def test_zero_error_equals_ground_truth(self, dataset, rng):
        oracle = FlakyOracle(dataset, rng)
        truth = GroundTruthOracle(dataset)
        for start in range(0, 50, 5):
            indices = list(range(start, start + 5))
            assert oracle.ask_set(indices, FEMALE) == truth.ask_set(indices, FEMALE)

    def test_full_error_always_flips(self, dataset, rng):
        oracle = FlakyOracle(dataset, rng, set_error_rate=1.0)
        members = dataset.positions(FEMALE)
        assert oracle.ask_set(members[:3], FEMALE) is False

    def test_point_errors_produce_valid_labels(self, dataset, rng):
        oracle = FlakyOracle(dataset, rng, point_error_rate=1.0)
        answer = oracle.ask_point(0)
        assert answer["gender"] in {"male", "female"}
        assert answer != dataset.value_row(0)

    def test_invalid_rates(self, dataset, rng):
        with pytest.raises(InvalidParameterError):
            FlakyOracle(dataset, rng, set_error_rate=2.0)
