"""One contract, three backends: the CrowdBackend conformance suite.

Every assertion in this module runs identically over
:class:`InlineBackend`, :class:`LatencyModelBackend`, and
:class:`ThreadedBackend` — anything the engine or the audit service is
allowed to rely on must hold for all three, including the edge cases
(empty batches, double gathers, waiting on nothing) and
cancellation-after-submit at the service layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.backends import (
    InlineBackend,
    LatencyModelBackend,
    ThreadedBackend,
)
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.engine.requests import SetRequest
from repro.errors import InvalidParameterError
from repro.service import AuditService, JobStatus

FEMALE = group(gender="female")
MALE = group(gender="male")

#: name -> factory(oracle) -> backend; ids keep -k selection readable.
BACKENDS = {
    "inline": lambda oracle: InlineBackend(oracle),
    "latency": lambda oracle: LatencyModelBackend(
        oracle, rng=np.random.default_rng(17)
    ),
    "threaded": lambda oracle: ThreadedBackend(oracle, max_workers=2),
}


@pytest.fixture(scope="module")
def dataset():
    return binary_dataset(600, 25, rng=np.random.default_rng(11))


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def make_backend(request):
    return BACKENDS[request.param]


@pytest.fixture
def backend(make_backend, dataset):
    instance = make_backend(GroundTruthOracle(dataset))
    yield instance
    instance.close()


def requests_over(dataset, *, predicate=FEMALE, chunk=50, count=None):
    batches = [
        SetRequest(
            np.arange(start, min(start + chunk, len(dataset))), predicate
        )
        for start in range(0, len(dataset), chunk)
    ]
    return batches if count is None else batches[:count]


class TestTicketLifecycle:
    def test_submit_returns_monotonic_tickets(self, backend, dataset):
        first = backend.submit(requests_over(dataset, count=2))
        second = backend.submit(
            requests_over(dataset, predicate=MALE, count=3)
        )
        assert second.ticket_id > first.ticket_id
        assert (first.n_queries, second.n_queries) == (2, 3)
        assert backend.outstanding == 2
        backend.gather(backend.next_done())
        backend.gather(backend.next_done())
        assert backend.outstanding == 0

    def test_gather_answers_match_ground_truth_in_order(
        self, backend, dataset
    ):
        oracle = backend.oracle
        batch = requests_over(dataset, count=4)
        answers = backend.gather(backend.submit(batch))
        assert answers == [
            oracle.membership_index.any_match(
                request.predicate, request.indices
            )
            for request in batch
        ]

    def test_gather_is_exactly_once(self, backend, dataset):
        ticket = backend.submit(requests_over(dataset, count=1))
        backend.gather(ticket)
        with pytest.raises(InvalidParameterError):
            backend.gather(ticket)

    def test_foreign_ticket_rejected(self, backend, dataset, make_backend):
        other = make_backend(GroundTruthOracle(dataset))
        try:
            foreign = other.submit(requests_over(dataset, count=1))
            backend.submit(requests_over(dataset, count=1))
            with pytest.raises(InvalidParameterError):
                backend.gather(foreign)
        finally:
            other.close()

    def test_poll_only_reports_outstanding_tickets(self, backend, dataset):
        assert backend.poll() == []
        ticket = backend.submit(requests_over(dataset, count=1))
        ready = backend.next_done()
        assert ready.ticket_id == ticket.ticket_id
        assert all(t.ticket_id == ticket.ticket_id for t in backend.poll())
        backend.gather(ticket)
        assert backend.poll() == []


class TestEdgeCases:
    def test_empty_batch_raises_and_leaves_nothing(self, backend):
        with pytest.raises(InvalidParameterError):
            backend.submit([])
        assert backend.outstanding == 0
        assert backend.oracle.ledger.total == 0

    def test_next_done_on_idle_backend_raises(self, backend):
        with pytest.raises(InvalidParameterError):
            backend.next_done()

    def test_charging_happens_at_submit(self, backend, dataset):
        backend.submit(requests_over(dataset, count=3))
        assert backend.oracle.ledger.n_set_queries == 3
        assert backend.oracle.ledger.n_rounds == 1

    def test_close_is_idempotent(self, backend, dataset):
        ticket = backend.submit(requests_over(dataset, count=1))
        backend.gather(ticket)
        backend.close()
        backend.close()


class TestCrossBackendEquivalence:
    def test_same_answers_and_bill_everywhere(self, dataset):
        outcomes = {}
        for name, factory in BACKENDS.items():
            oracle = GroundTruthOracle(dataset)
            instance = factory(oracle)
            try:
                tickets = [
                    instance.submit(requests_over(dataset, count=4)),
                    instance.submit(
                        requests_over(dataset, predicate=MALE, count=4)
                    ),
                ]
                answers = [instance.gather(t) for t in tickets]
            finally:
                instance.close()
            outcomes[name] = (answers, oracle.ledger.total)
        assert len(set(map(repr, outcomes.values()))) == 1, outcomes


class TestCancellationAfterSubmit:
    def test_cancel_mid_flight_job_leaves_backend_sane(
        self, make_backend, dataset
    ):
        """Cancel a running job whose queries are already submitted to
        the backend: the cancelled job terminates, its siblings finish,
        and the backend drains rather than wedging."""
        oracle = GroundTruthOracle(dataset)
        service = AuditService(
            oracle, backend=make_backend, batch_size=8, max_active_jobs=2
        )
        with service:
            victim = service.submit(_spec(FEMALE, tau=20))
            survivor = service.submit(_spec(MALE, tau=20))
            service.step()  # queries now live on the backend
            assert victim.cancel() or victim.status.terminal
            service.drain()
            assert victim.status == JobStatus.CANCELLED
            assert survivor.status == JobStatus.SUCCEEDED
            assert service.engine.outstanding_tickets == 0

    def test_cancel_all_jobs_after_submit_then_reuse(
        self, make_backend, dataset
    ):
        """Cancelling every in-flight job must not poison the backend
        for later submissions on the same service."""
        oracle = GroundTruthOracle(dataset)
        service = AuditService(
            oracle, backend=make_backend, batch_size=8, max_active_jobs=2
        )
        with service:
            first = service.submit(_spec(FEMALE, tau=20))
            second = service.submit(_spec(MALE, tau=20))
            service.step()
            for handle in (first, second):
                handle.cancel()
            service.drain()
            assert first.status == JobStatus.CANCELLED
            assert second.status == JobStatus.CANCELLED
            # The same service (and backend) still serves new work.
            fresh = service.submit(_spec(FEMALE, tau=15))
            service.drain()
            assert fresh.status == JobStatus.SUCCEEDED


def _spec(predicate, tau):
    from repro.audit import GroupAuditSpec

    return GroupAuditSpec(predicate=predicate, tau=tau)
