"""Unit tests for truth inference (majority vote + Dawid-Skene)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.aggregation import DawidSkene, majority_point, majority_vote
from repro.errors import InvalidParameterError


class TestMajorityVote:
    def test_simple_majority(self):
        assert majority_vote([True, True, False]) is True
        assert majority_vote(["a", "b", "b"]) == "b"

    def test_single_answer(self):
        assert majority_vote([False]) is False

    def test_tie_without_rng_is_first_seen(self):
        assert majority_vote([True, False]) is True
        assert majority_vote([False, True]) is False

    def test_tie_with_rng_is_one_of_the_tied(self, rng):
        assert majority_vote(["x", "y"], rng=rng) in {"x", "y"}

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            majority_vote([])


class TestMajorityPoint:
    def test_attribute_wise(self):
        answers = [
            {"gender": "female", "race": "black"},
            {"gender": "female", "race": "white"},
            {"gender": "male", "race": "white"},
        ]
        assert majority_point(answers) == {"gender": "female", "race": "white"}

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            majority_point([])


class TestDawidSkene:
    def _generate(self, rng, n_tasks, worker_accuracies, n_classes=2):
        truths = rng.integers(n_classes, size=n_tasks)
        responses = {}
        for task in range(n_tasks):
            responses[task] = {}
            for worker, accuracy in enumerate(worker_accuracies):
                if rng.random() < accuracy:
                    responses[task][worker] = int(truths[task])
                else:
                    wrong = [c for c in range(n_classes) if c != truths[task]]
                    responses[task][worker] = int(wrong[rng.integers(len(wrong))])
        return truths, responses

    def test_recovers_truth_with_good_workers(self, rng):
        truths, responses = self._generate(rng, 120, [0.9, 0.85, 0.95])
        model = DawidSkene(n_classes=2)
        inferred = model.fit_predict(responses)
        accuracy = np.mean([inferred[t] == truths[t] for t in range(120)])
        assert accuracy >= 0.95

    def test_outperforms_majority_with_spammer_heavy_pool(self, rng):
        # Two strong workers drowned out by three near-random spammers:
        # majority vote suffers, Dawid-Skene should down-weight spammers.
        truths, responses = self._generate(
            rng, 300, [0.95, 0.95, 0.55, 0.55, 0.55]
        )
        inferred = DawidSkene(n_classes=2).fit_predict(responses)
        ds_accuracy = np.mean([inferred[t] == truths[t] for t in range(300)])
        majority_accuracy = np.mean(
            [
                majority_vote(list(responses[t].values())) == truths[t]
                for t in range(300)
            ]
        )
        assert ds_accuracy >= majority_accuracy - 0.02
        assert ds_accuracy >= 0.9

    def test_worker_accuracy_estimates_rank_workers(self, rng):
        truths, responses = self._generate(rng, 300, [0.95, 0.6])
        model = DawidSkene(n_classes=2)
        model.fit_predict(responses)
        assert model.worker_accuracy(0) > model.worker_accuracy(1)

    def test_multiclass(self, rng):
        truths, responses = self._generate(rng, 150, [0.9, 0.9, 0.9], n_classes=4)
        inferred = DawidSkene(n_classes=4).fit_predict(responses)
        accuracy = np.mean([inferred[t] == truths[t] for t in range(150)])
        assert accuracy >= 0.9

    def test_empty_responses(self):
        assert DawidSkene(n_classes=2).fit_predict({}) == {}

    def test_label_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            DawidSkene(n_classes=2).fit_predict({0: {0: 5}})

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            DawidSkene(n_classes=1)
        with pytest.raises(InvalidParameterError):
            DawidSkene(n_classes=2, max_iterations=0)

    def test_worker_accuracy_before_fit_rejected(self):
        with pytest.raises(InvalidParameterError):
            DawidSkene(n_classes=2).worker_accuracy(0)
