"""Unit tests for truth inference (majority vote + Dawid-Skene)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.aggregation import (
    DawidSkene,
    majority_point,
    majority_vote,
    tied_winners,
)
from repro.errors import InvalidParameterError


class TestMajorityVote:
    def test_simple_majority(self):
        assert majority_vote([True, True, False]) is True
        assert majority_vote(["a", "b", "b"]) == "b"

    def test_single_answer(self):
        assert majority_vote([False]) is False

    def test_tie_without_rng_is_first_seen(self):
        assert majority_vote([True, False]) is True
        assert majority_vote([False, True]) is False

    def test_tie_with_rng_is_one_of_the_tied(self, rng):
        assert majority_vote(["x", "y"], rng=rng) in {"x", "y"}

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            majority_vote([])


class TestMajorityPoint:
    def test_attribute_wise(self):
        answers = [
            {"gender": "female", "race": "black"},
            {"gender": "female", "race": "white"},
            {"gender": "male", "race": "white"},
        ]
        assert majority_point(answers) == {"gender": "female", "race": "white"}

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            majority_point([])


class TestDawidSkene:
    def _generate(self, rng, n_tasks, worker_accuracies, n_classes=2):
        truths = rng.integers(n_classes, size=n_tasks)
        responses = {}
        for task in range(n_tasks):
            responses[task] = {}
            for worker, accuracy in enumerate(worker_accuracies):
                if rng.random() < accuracy:
                    responses[task][worker] = int(truths[task])
                else:
                    wrong = [c for c in range(n_classes) if c != truths[task]]
                    responses[task][worker] = int(wrong[rng.integers(len(wrong))])
        return truths, responses

    def test_recovers_truth_with_good_workers(self, rng):
        truths, responses = self._generate(rng, 120, [0.9, 0.85, 0.95])
        model = DawidSkene(n_classes=2)
        inferred = model.fit_predict(responses)
        accuracy = np.mean([inferred[t] == truths[t] for t in range(120)])
        assert accuracy >= 0.95

    def test_outperforms_majority_with_spammer_heavy_pool(self, rng):
        # Two strong workers drowned out by three near-random spammers:
        # majority vote suffers, Dawid-Skene should down-weight spammers.
        truths, responses = self._generate(
            rng, 300, [0.95, 0.95, 0.55, 0.55, 0.55]
        )
        inferred = DawidSkene(n_classes=2).fit_predict(responses)
        ds_accuracy = np.mean([inferred[t] == truths[t] for t in range(300)])
        majority_accuracy = np.mean(
            [
                majority_vote(list(responses[t].values())) == truths[t]
                for t in range(300)
            ]
        )
        assert ds_accuracy >= majority_accuracy - 0.02
        assert ds_accuracy >= 0.9

    def test_worker_accuracy_estimates_rank_workers(self, rng):
        truths, responses = self._generate(rng, 300, [0.95, 0.6])
        model = DawidSkene(n_classes=2)
        model.fit_predict(responses)
        assert model.worker_accuracy(0) > model.worker_accuracy(1)

    def test_multiclass(self, rng):
        truths, responses = self._generate(rng, 150, [0.9, 0.9, 0.9], n_classes=4)
        inferred = DawidSkene(n_classes=4).fit_predict(responses)
        accuracy = np.mean([inferred[t] == truths[t] for t in range(150)])
        assert accuracy >= 0.9

    def test_empty_responses(self):
        assert DawidSkene(n_classes=2).fit_predict({}) == {}

    def test_label_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            DawidSkene(n_classes=2).fit_predict({0: {0: 5}})

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            DawidSkene(n_classes=1)
        with pytest.raises(InvalidParameterError):
            DawidSkene(n_classes=2, max_iterations=0)

    def test_worker_accuracy_before_fit_rejected(self):
        with pytest.raises(InvalidParameterError):
            DawidSkene(n_classes=2).worker_accuracy(0)


class TestTieOrdering:
    """Regression tests for the tie-breaking asymmetry fix: both the
    deterministic and the rng paths must resolve over the *same* explicit
    winner ordering — first occurrence in the answer sequence."""

    class _IndexRng:
        """Stub generator whose ``integers(n)`` returns a fixed index —
        pins exactly which tied winner the rng path picks."""

        def __init__(self, value):
            self.value = value

        def integers(self, n):
            assert self.value < n
            return self.value

    def test_tied_winners_is_first_occurrence_order(self):
        assert tied_winners(["b", "a", "a", "b"]) == ["b", "a"]
        assert tied_winners([False, True]) == [False, True]
        assert tied_winners(["only"]) == ["only"]
        assert tied_winners(["x", "y", "y"]) == ["y"]

    def test_deterministic_path_returns_first_seen_winner(self):
        assert majority_vote(["b", "a", "a", "b"]) == "b"
        assert majority_vote(["a", "b", "b", "a"]) == "a"

    def test_rng_path_indexes_the_same_ordering(self):
        answers = ["b", "a", "a", "b"]
        assert majority_vote(answers, rng=self._IndexRng(0)) == "b"
        assert majority_vote(answers, rng=self._IndexRng(1)) == "a"
        # Three-way tie: index order == first-occurrence order.
        three = ["c", "a", "b"]
        for index, expected in enumerate(["c", "a", "b"]):
            assert majority_vote(three, rng=self._IndexRng(index)) == expected

    def test_rng_not_consulted_without_a_tie(self):
        class ExplodingRng:
            def integers(self, n):  # pragma: no cover - must not run
                raise AssertionError("rng consulted for a clear majority")

        assert majority_vote(["a", "a", "b"], rng=ExplodingRng()) == "a"

    def test_rng_tie_break_is_uniform_over_winners(self, rng):
        draws = {majority_vote(["b", "a", "a", "b"], rng=rng) for _ in range(200)}
        assert draws == {"a", "b"}

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            tied_winners([])


class TestDawidSkeneDegenerateCases:
    """Convergence and degenerate-pool behavior of the batch estimator."""

    def test_single_worker_follows_their_labels(self):
        responses = {t: {0: t % 2} for t in range(20)}
        inferred = DawidSkene(n_classes=2).fit_predict(responses)
        assert inferred == {t: t % 2 for t in range(20)}

    def test_unanimous_answers_empty_class_prior_is_finite(self):
        # Every worker labels every task 1: class 0 is never observed, so
        # its prior empties out — estimates must stay finite, not NaN.
        responses = {t: {w: 1 for w in range(3)} for t in range(15)}
        model = DawidSkene(n_classes=2)
        inferred = model.fit_predict(responses)
        assert all(label == 1 for label in inferred.values())
        assert np.all(np.isfinite(model.class_priors_))
        assert model.class_priors_[1] > 0.99
        assert np.isclose(model.class_priors_.sum(), 1.0)
        assert np.all(np.isfinite(model.posteriors_))

    def test_all_spammer_pool_stays_well_defined(self, rng):
        # Five coin-flip workers: nothing to learn, but the estimator
        # must converge to finite, normalized estimates.
        responses = {
            t: {w: int(rng.integers(2)) for w in range(5)} for t in range(60)
        }
        model = DawidSkene(n_classes=2)
        inferred = model.fit_predict(responses)
        assert set(inferred.values()) <= {0, 1}
        assert np.all(np.isfinite(model.posteriors_))
        rows = model.posteriors_.sum(axis=1)
        assert np.allclose(rows, 1.0)
        for worker in range(5):
            assert 0.0 <= model.worker_accuracy(worker) <= 1.0

    def test_converges_before_iteration_cap_on_clean_data(self):
        responses = {t: {w: t % 2 for w in range(4)} for t in range(30)}
        model = DawidSkene(n_classes=2, max_iterations=100)
        model.fit_predict(responses)
        assert 1 <= model.n_iterations_ < 100

    def test_iteration_cap_is_respected(self, rng):
        responses = {
            t: {w: int(rng.integers(2)) for w in range(3)} for t in range(40)
        }
        model = DawidSkene(n_classes=2, max_iterations=2, tolerance=0.0)
        model.fit_predict(responses)
        assert model.n_iterations_ == 2
