"""The CrowdBackend protocol: lifecycle, charging, and the three backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.backends import (
    InlineBackend,
    LatencyModel,
    LatencyModelBackend,
    SimulatedClock,
    ThreadedBackend,
)
from repro.crowd.oracle import GroundTruthOracle
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.engine import QueryEngine, SetRequest
from repro.errors import BudgetExceededError, InvalidParameterError

FEMALE = group(gender="female")
MALE = group(gender="male")


@pytest.fixture(scope="module")
def dataset():
    return binary_dataset(600, 25, rng=np.random.default_rng(11))


def requests_over(dataset, *, predicate=FEMALE, chunk=50):
    return [
        SetRequest(np.arange(start, min(start + chunk, len(dataset))), predicate)
        for start in range(0, len(dataset), chunk)
    ]


class TestLifecycle:
    def test_submit_poll_gather_round_trip(self, dataset):
        oracle = GroundTruthOracle(dataset)
        backend = InlineBackend(oracle)
        batch = requests_over(dataset)[:4]
        ticket = backend.submit(batch)
        assert ticket.n_queries == 4
        assert backend.outstanding == 1
        assert backend.poll() == [ticket]
        answers = backend.gather(ticket)
        assert answers == [
            oracle.membership_index.any_match(request.predicate, request.indices)
            for request in batch
        ]
        assert backend.outstanding == 0
        assert backend.poll() == []

    def test_gather_is_one_shot(self, dataset):
        backend = InlineBackend(GroundTruthOracle(dataset))
        ticket = backend.submit(requests_over(dataset)[:1])
        backend.gather(ticket)
        with pytest.raises(InvalidParameterError):
            backend.gather(ticket)

    def test_empty_batch_rejected(self, dataset):
        backend = InlineBackend(GroundTruthOracle(dataset))
        with pytest.raises(InvalidParameterError):
            backend.submit([])

    def test_next_done_requires_outstanding_tickets(self, dataset):
        backend = InlineBackend(GroundTruthOracle(dataset))
        with pytest.raises(InvalidParameterError):
            backend.next_done()

    def test_next_done_returns_submission_order_when_inline(self, dataset):
        backend = InlineBackend(GroundTruthOracle(dataset))
        first = backend.submit(requests_over(dataset)[:1])
        backend.submit(requests_over(dataset, predicate=MALE)[:1])
        assert backend.next_done() is first

    def test_charging_happens_at_submit(self, dataset):
        oracle = GroundTruthOracle(dataset)
        backend = InlineBackend(oracle)
        batch = requests_over(dataset)[:3]
        backend.submit(batch)
        # Tasks and the round-trip are billed whether or not anyone
        # gathers: the HITs are published.
        assert oracle.ledger.n_set_queries == 3
        assert oracle.ledger.n_rounds == 1

    def test_refused_batch_leaves_no_ticket(self, dataset):
        oracle = GroundTruthOracle(dataset, budget=2)
        backend = InlineBackend(oracle)
        with pytest.raises(BudgetExceededError):
            backend.submit(requests_over(dataset)[:3])
        assert backend.outstanding == 0
        assert oracle.ledger.total == 0


class TestLatencyModelBackend:
    def test_answers_withheld_until_the_clock_reaches_them(self, dataset):
        oracle = GroundTruthOracle(dataset)
        backend = LatencyModelBackend(oracle, rng=np.random.default_rng(0))
        ticket = backend.submit(requests_over(dataset)[:4])
        # Published and paid, but not ready: no virtual time has passed.
        assert backend.poll() == []
        assert oracle.ledger.n_set_queries == 4
        ready = backend.next_done()  # advances the clock to the batch
        assert ready is ticket
        assert backend.poll() == [ticket]
        assert backend.clock.now() > 0.0
        backend.gather(ticket)

    def test_gather_advances_the_clock_to_the_batch(self, dataset):
        backend = LatencyModelBackend(
            GroundTruthOracle(dataset), rng=np.random.default_rng(1)
        )
        ticket = backend.submit(requests_over(dataset)[:2])
        assert backend.clock.now() == 0.0
        backend.gather(ticket)
        assert backend.clock.now() >= backend.model.publish_overhead_seconds

    def test_overlapped_batches_share_their_wait(self, dataset):
        """Two batches submitted together complete in roughly one batch's
        time; submitted serially they pay twice — the whole point of the
        asynchronous protocol."""
        model = LatencyModel(sigma=0.0, worker_sigma=0.0)
        serial = LatencyModelBackend(
            GroundTruthOracle(dataset), model=model, rng=np.random.default_rng(2)
        )
        for batch in (requests_over(dataset)[:4], requests_over(dataset)[4:8]):
            serial.gather(serial.submit(batch))
        overlapped = LatencyModelBackend(
            GroundTruthOracle(dataset), model=model, rng=np.random.default_rng(2)
        )
        tickets = [
            overlapped.submit(requests_over(dataset)[:4]),
            overlapped.submit(requests_over(dataset)[4:8]),
        ]
        for ticket in tickets:
            overlapped.gather(ticket)
        assert overlapped.clock.now() < serial.clock.now()

    def test_deterministic_under_a_seed(self, dataset):
        times = []
        for _ in range(2):
            backend = LatencyModelBackend(
                GroundTruthOracle(dataset), rng=np.random.default_rng(7)
            )
            backend.gather(backend.submit(requests_over(dataset)[:5]))
            times.append(backend.clock.now())
        assert times[0] == times[1]

    def test_shared_clock(self, dataset):
        clock = SimulatedClock()
        backend = LatencyModelBackend(
            GroundTruthOracle(dataset), clock=clock, rng=np.random.default_rng(3)
        )
        backend.gather(backend.submit(requests_over(dataset)[:1]))
        assert clock.now() == backend.clock.now() > 0.0

    def test_model_validation(self):
        with pytest.raises(InvalidParameterError):
            LatencyModel(n_workers=0)
        with pytest.raises(InvalidParameterError):
            LatencyModel(median_seconds=0.0)
        with pytest.raises(InvalidParameterError):
            LatencyModel(sigma=-0.1)


class TestThreadedBackend:
    def test_round_trip_on_the_pool(self, dataset):
        oracle = GroundTruthOracle(dataset)
        backend = ThreadedBackend(oracle, max_workers=2)
        try:
            batch = requests_over(dataset)[:4]
            ticket = backend.submit(batch)
            answers = backend.gather(ticket)
            reference = [
                oracle.membership_index.any_match(r.predicate, r.indices)
                for r in batch
            ]
            assert answers == reference
        finally:
            backend.close()

    def test_external_adapter_replaces_oracle_dispatch(self, dataset):
        oracle = GroundTruthOracle(dataset)
        calls = []

        def adapter(requests):
            calls.append(len(requests))
            return [True] * len(requests)

        backend = ThreadedBackend(oracle, adapter=adapter)
        try:
            ticket = backend.submit(requests_over(dataset)[:3])
            assert backend.gather(ticket) == [True, True, True]
            assert calls == [3]
            # The adapter charges its own platform; the ledger saw nothing.
            assert oracle.ledger.total == 0
        finally:
            backend.close()

    def test_adapter_errors_surface_at_gather(self, dataset):
        def adapter(requests):
            raise ValueError("platform rejected the batch")

        backend = ThreadedBackend(GroundTruthOracle(dataset), adapter=adapter)
        try:
            ticket = backend.submit(requests_over(dataset)[:1])
            with pytest.raises(ValueError):
                backend.gather(ticket)
        finally:
            backend.close()

    def test_failed_gather_does_not_wedge_the_backend(self, dataset):
        """A gather that raises still consumes its ticket: the backend
        must keep answering poll()/next_done()/submit afterwards instead
        of tripping over a ghost ticket forever."""
        calls = []

        def adapter(requests):
            if not calls:
                calls.append("boom")
                raise ValueError("transient platform failure")
            return [True] * len(requests)

        backend = ThreadedBackend(GroundTruthOracle(dataset), adapter=adapter)
        try:
            doomed = backend.submit(requests_over(dataset)[:1])
            with pytest.raises(ValueError):
                backend.gather(doomed)
            assert backend.outstanding == 0
            assert backend.poll() == []
            with pytest.raises(InvalidParameterError):
                backend.next_done()
            retry = backend.submit(requests_over(dataset)[:1])
            assert backend.gather(retry) == [True]
        finally:
            backend.close()

    def test_closed_backend_rejects_submission(self, dataset):
        backend = ThreadedBackend(GroundTruthOracle(dataset))
        backend.close()
        with pytest.raises(InvalidParameterError):
            backend.submit(requests_over(dataset)[:1])


class TestEngineOverBackends:
    """Whatever the backend, an engine drain reaches the same verdicts."""

    @pytest.mark.parametrize("make_backend", [
        lambda oracle: InlineBackend(oracle),
        lambda oracle: LatencyModelBackend(oracle, rng=np.random.default_rng(5)),
        lambda oracle: ThreadedBackend(oracle, max_workers=2),
    ], ids=["inline", "latency", "threaded"])
    def test_identical_verdicts_and_tasks(self, dataset, make_backend):
        from repro.core.group_coverage import GroupCoverageStepper

        reference_oracle = GroundTruthOracle(dataset)
        reference_engine = QueryEngine(reference_oracle, batch_size=16)
        reference = GroupCoverageStepper(
            FEMALE, 25, view=np.arange(len(dataset), dtype=np.int64)
        )
        reference_engine.run([reference])

        oracle = GroundTruthOracle(dataset)
        backend = make_backend(oracle)
        try:
            engine = QueryEngine(backend=backend, batch_size=16)
            stepper = GroupCoverageStepper(
                FEMALE, 25, view=np.arange(len(dataset), dtype=np.int64)
            )
            engine.run([stepper])
            assert (stepper.covered, stepper.count) == (
                reference.covered, reference.count,
            )
            assert stepper.discovered_indices == reference.discovered_indices
            assert oracle.ledger.total == reference_oracle.ledger.total
            assert oracle.ledger.n_rounds == reference_oracle.ledger.n_rounds
        finally:
            backend.close()

    def test_engine_rejects_mismatched_backend_oracle(self, dataset):
        oracle = GroundTruthOracle(dataset)
        other = GroundTruthOracle(dataset)
        with pytest.raises(InvalidParameterError):
            QueryEngine(oracle, backend=InlineBackend(other))

    def test_engine_requires_oracle_or_backend(self):
        with pytest.raises(InvalidParameterError):
            QueryEngine()
