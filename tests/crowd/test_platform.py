"""Unit tests for the crowd platform simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.platform import CrowdPlatform
from repro.crowd.quality import qc_with_rating
from repro.crowd.queries import PointQuery, SetQuery
from repro.crowd.workers import Worker, make_worker_pool
from repro.data.groups import Negation, group
from repro.data.synthetic import binary_dataset
from repro.errors import InvalidParameterError, NoEligibleWorkersError

FEMALE = group(gender="female")


def perfect_pool(n=5):
    return [
        Worker(worker_id=i, set_error_rate=0.0, point_error_rate=0.0)
        for i in range(n)
    ]


@pytest.fixture
def dataset(rng):
    return binary_dataset(100, 20, rng=rng)


class TestPublishing:
    def test_set_query_truth_with_perfect_workers(self, dataset, rng):
        platform = CrowdPlatform(dataset, perfect_pool(), rng)
        members = dataset.positions(FEMALE)[:3]
        non_members = dataset.positions(group(gender="male"))[:5]
        assert platform.publish_set_query(SetQuery(members, FEMALE)) is True
        assert platform.publish_set_query(SetQuery(non_members, FEMALE)) is False

    def test_negated_set_query(self, dataset, rng):
        platform = CrowdPlatform(dataset, perfect_pool(), rng)
        members = dataset.positions(FEMALE)[:4]
        assert (
            platform.publish_set_query(SetQuery(members, Negation(FEMALE))) is False
        )

    def test_point_query_returns_truth(self, dataset, rng):
        platform = CrowdPlatform(dataset, perfect_pool(), rng)
        index = int(dataset.positions(FEMALE)[0])
        assert platform.publish_point_query(PointQuery(index)) == {"gender": "female"}

    def test_majority_absorbs_single_bad_worker(self, dataset, rng):
        # One always-wrong worker among two perfect ones: majority of 3
        # always recovers the truth.
        workers = [
            Worker(worker_id=0, set_error_rate=0.0),
            Worker(worker_id=1, set_error_rate=0.0),
            Worker(worker_id=2, set_error_rate=1.0),
        ]
        platform = CrowdPlatform(dataset, workers, rng)
        members = dataset.positions(FEMALE)[:3]
        for _ in range(10):
            assert platform.publish_set_query(SetQuery(members, FEMALE)) is True
        assert platform.aggregated_error_rate == 0.0
        assert platform.raw_error_rate == pytest.approx(1 / 3)


class TestAccounting:
    def test_ledger_counts(self, dataset, rng):
        platform = CrowdPlatform(dataset, perfect_pool(), rng)
        platform.publish_set_query(SetQuery([0, 1], FEMALE))
        platform.publish_point_query(PointQuery(0))
        assert platform.ledger.n_set_hits == 1
        assert platform.ledger.n_point_hits == 1
        assert platform.ledger.n_assignments == 6

    def test_size_dependent_pricing_bills_display_size(self, dataset, rng):
        """Regression: publishing with SizeDependentPricing used to raise
        AttributeError; now each set HIT is billed by the number of
        images it shows and each point HIT as a one-image task."""
        from repro.crowd.pricing import SizeDependentPricing

        pricing = SizeDependentPricing(
            base_price=0.02, per_image=0.002, service_fee_rate=0.20
        )
        platform = CrowdPlatform(dataset, perfect_pool(), rng, pricing=pricing)
        platform.publish_set_query(SetQuery(np.arange(50), FEMALE))
        platform.publish_point_query(PointQuery(0))
        expected = 3 * pricing.query_price(50) + 3 * pricing.point_price()
        assert platform.ledger.worker_payments == pytest.approx(expected)
        assert platform.ledger.service_fees == pytest.approx(0.2 * expected)

    def test_hit_records(self, dataset, rng):
        platform = CrowdPlatform(dataset, perfect_pool(), rng)
        platform.publish_set_query(SetQuery([0, 1], FEMALE))
        assert len(platform.hit_records) == 1
        record = platform.hit_records[0]
        assert len(record.worker_ids) == 3
        assert record.aggregation_correct

    def test_record_hits_disabled(self, dataset, rng):
        platform = CrowdPlatform(dataset, perfect_pool(), rng, record_hits=False)
        platform.publish_set_query(SetQuery([0, 1], FEMALE))
        assert platform.hit_records == []
        assert platform.ledger.n_hits == 1

    def test_summary(self, dataset, rng):
        platform = CrowdPlatform(dataset, perfect_pool(), rng)
        platform.publish_point_query(PointQuery(0))
        assert "1 HITs" in platform.summary()


class TestScreeningIntegration:
    def test_rating_screen_removes_spammers(self, dataset, rng):
        workers = make_worker_pool(20, rng, spammer_fraction=0.5)
        platform = CrowdPlatform(dataset, workers, rng, screening=qc_with_rating())
        assert all(
            w.percent_assignments_approved >= 95 for w in platform.eligible_workers
        )

    def test_screening_everyone_out_raises(self, dataset, rng):
        workers = [
            Worker(worker_id=i, percent_assignments_approved=10.0) for i in range(5)
        ]
        with pytest.raises(NoEligibleWorkersError):
            CrowdPlatform(dataset, workers, rng, screening=qc_with_rating())

    def test_invalid_assignments_per_hit(self, dataset, rng):
        with pytest.raises(InvalidParameterError):
            CrowdPlatform(dataset, perfect_pool(), rng, assignments_per_hit=0)


class TestDawidSkeneReaggregation:
    def test_reaggregation_counts(self, dataset, rng):
        workers = make_worker_pool(10, rng, error_rate=0.05)
        platform = CrowdPlatform(dataset, workers, rng, assignments_per_hit=5)
        members = dataset.positions(FEMALE)
        for start in range(0, 60, 3):
            platform.publish_set_query(
                SetQuery([start, start + 1, start + 2], FEMALE)
            )
        majority_errors, ds_errors = platform.reaggregate_set_hits_with_dawid_skene()
        assert majority_errors >= 0 and ds_errors >= 0
        assert majority_errors <= platform.ledger.n_set_hits

    def test_no_records_returns_zeros(self, dataset, rng):
        platform = CrowdPlatform(dataset, perfect_pool(), rng)
        assert platform.reaggregate_set_hits_with_dawid_skene() == (0, 0)


class TestReaggregationAccountingInvariance:
    """``reaggregate_set_hits_with_dawid_skene`` is a *read-only* analysis
    over recorded HITs: it must never change task accounting — neither
    the oracle's TaskLedger (tasks/rounds/budget) nor the platform's
    CostLedger (HITs/assignments/dollars)."""

    def _run_queries(self, platform, dataset, n=40, seed=5):
        from repro.crowd.oracle import CrowdOracle

        oracle = CrowdOracle(platform)
        query_rng = np.random.default_rng(seed)
        for _ in range(n):
            size = int(query_rng.integers(1, 10))
            indices = query_rng.choice(len(dataset), size=size, replace=False)
            oracle.ask_set(np.asarray(indices, dtype=np.int64), FEMALE)
        return oracle

    def _ledger_snapshot(self, oracle, platform):
        task = oracle.ledger
        cost = platform.ledger
        return (
            task.n_set_queries, task.n_point_queries, task.n_rounds, task.budget,
            cost.n_hits, cost.n_assignments, cost.total_cost,
            platform.n_raw_answers, platform.n_raw_incorrect,
            platform.n_aggregated_incorrect, len(platform.hit_records),
        )

    @pytest.mark.parametrize("spammer_fraction", [0.0, 0.4])
    def test_totals_identical_before_and_after(self, dataset, spammer_fraction):
        pool = make_worker_pool(
            12,
            np.random.default_rng(2),
            error_rate=0.02,
            spammer_fraction=spammer_fraction,
            spammer_error_rate=0.45,
        )
        platform = CrowdPlatform(dataset, pool, np.random.default_rng(9))
        oracle = self._run_queries(platform, dataset)
        before = self._ledger_snapshot(oracle, platform)
        majority_errors, ds_errors = (
            platform.reaggregate_set_hits_with_dawid_skene()
        )
        assert majority_errors >= 0 and ds_errors >= 0
        assert self._ledger_snapshot(oracle, platform) == before
        # Idempotent: a second pass reads the same records, changes nothing.
        assert platform.reaggregate_set_hits_with_dawid_skene() == (
            majority_errors,
            ds_errors,
        )
        assert self._ledger_snapshot(oracle, platform) == before

    def test_no_records_no_accounting_change(self, dataset, rng):
        platform = CrowdPlatform(dataset, perfect_pool(), rng)
        assert platform.reaggregate_set_hits_with_dawid_skene() == (0, 0)
        assert platform.ledger.n_hits == 0
        assert platform.ledger.n_assignments == 0
