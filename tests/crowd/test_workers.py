"""Unit tests for the simulated worker model."""

from __future__ import annotations

import pytest

from repro.crowd.workers import Worker, make_worker_pool
from repro.data.schema import Schema
from repro.errors import InvalidParameterError


@pytest.fixture
def schema():
    return Schema.from_dict({"gender": ["male", "female"], "race": ["w", "b", "a"]})


class TestWorker:
    def test_perfect_worker_never_errs(self, rng, schema):
        worker = Worker(worker_id=0, set_error_rate=0.0, point_error_rate=0.0)
        for _ in range(50):
            assert worker.answer_set(True, rng) is True
            assert worker.answer_set(False, rng) is False
            row = {"gender": "female", "race": "b"}
            assert worker.answer_point(row, schema, rng) == row

    def test_always_wrong_worker_flips(self, rng):
        worker = Worker(worker_id=0, set_error_rate=1.0)
        assert worker.answer_set(True, rng) is False
        assert worker.answer_set(False, rng) is True

    def test_point_errors_produce_wrong_but_valid_values(self, rng, schema):
        worker = Worker(worker_id=0, point_error_rate=1.0)
        row = {"gender": "female", "race": "b"}
        answer = worker.answer_point(row, schema, rng)
        assert answer["gender"] == "male"  # only one wrong option
        assert answer["race"] in {"w", "a"}

    def test_error_rate_statistics(self, rng):
        worker = Worker(worker_id=0, set_error_rate=0.3)
        flips = sum(
            1 for _ in range(4000) if worker.answer_set(True, rng) is False
        )
        assert 0.25 <= flips / 4000 <= 0.35

    def test_value_error_rate_override(self, rng, schema):
        worker = Worker(
            worker_id=0,
            point_error_rate=0.0,
            value_error_rates={("gender", "female"): 1.0},
        )
        male_answer = worker.answer_point({"gender": "male", "race": "w"}, schema, rng)
        assert male_answer["gender"] == "male"  # no bias on males
        female_answer = worker.answer_point({"gender": "female", "race": "w"}, schema, rng)
        assert female_answer["gender"] == "male"  # always mislabels females

    def test_invalid_rates_rejected(self):
        with pytest.raises(InvalidParameterError):
            Worker(worker_id=0, set_error_rate=1.5)

    def test_default_competence(self):
        worker = Worker(worker_id=0, point_error_rate=0.2)
        assert worker.competence == pytest.approx(0.8)

    def test_qualification_score(self, rng):
        perfect = Worker(worker_id=0, point_error_rate=0.0)
        assert perfect.take_qualification_test(10, rng) == 1.0
        hopeless = Worker(worker_id=1, competence=0.0)
        assert hopeless.take_qualification_test(10, rng) == 0.0
        with pytest.raises(InvalidParameterError):
            perfect.take_qualification_test(0, rng)


class TestMakeWorkerPool:
    def test_pool_size_and_ids(self, rng):
        pool = make_worker_pool(25, rng)
        assert len(pool) == 25
        assert sorted(w.worker_id for w in pool) == list(range(25))

    def test_spammer_fraction(self, rng):
        pool = make_worker_pool(40, rng, spammer_fraction=0.5, spammer_error_rate=0.4)
        spammers = [w for w in pool if w.set_error_rate == 0.4]
        assert len(spammers) == 20
        # Spammers carry poor reputations the Rating screen can catch.
        assert all(w.percent_assignments_approved < 95 for w in spammers)

    def test_invalid_parameters(self, rng):
        with pytest.raises(InvalidParameterError):
            make_worker_pool(0, rng)
        with pytest.raises(InvalidParameterError):
            make_worker_pool(5, rng, spammer_fraction=1.5)
