"""Tests for the online worker-reliability subsystem.

Covers the streaming estimator (:class:`OnlineDawidSkene`), the
quarantine lifecycle (:class:`ReliabilityTracker`), the adaptive router
(:class:`AdaptiveAssignmentPolicy`), platform wiring, backend vote
surfacing, and the session checkpoint round trip.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.crowd.oracle import CrowdOracle
from repro.crowd.platform import CrowdPlatform
from repro.crowd.queries import PointQuery, SetQuery
from repro.crowd.reliability import (
    AdaptiveAssignmentPolicy,
    OnlineDawidSkene,
    ReliabilitySnapshot,
    ReliabilityTracker,
)
from repro.crowd.workers import Worker, make_worker_pool
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.errors import CheckpointVersionError, InvalidParameterError

FEMALE = group(gender="female")


def _feed(estimator, rng, n_hits, behaviors):
    """Stream ``n_hits`` synthetic set HITs; ``behaviors`` maps worker id
    to a callable ``truth, rng -> answer``."""
    for _ in range(n_hits):
        truth = bool(rng.random() < 0.5)
        votes = [(w, bool(answer(truth, rng))) for w, answer in behaviors.items()]
        estimator.observe_set_batch([votes])


def good(error=0.05):
    return lambda truth, rng: truth if rng.random() > error else not truth


def always(value):
    return lambda truth, rng: value


def uniform():
    return lambda truth, rng: bool(rng.random() < 0.5)


def adversarial(error=0.9):
    return lambda truth, rng: (not truth) if rng.random() < error else truth


class TestOnlineDawidSkene:
    def test_ranks_workers_by_quality(self, rng):
        est = OnlineDawidSkene()
        _feed(est, rng, 60, {0: good(0.02), 1: good(0.02), 2: good(0.3)})
        assert est.worker_accuracy(0) > est.worker_accuracy(2)
        assert est.n_observations(0) == 60
        assert est.worker_ids == (0, 1, 2)

    def test_vote_log_odds_signs(self, rng):
        est = OnlineDawidSkene()
        _feed(est, rng, 40, {0: good(0.02), 1: good(0.02), 2: good(0.02)})
        assert est.vote_log_odds(0, True) > 0
        assert est.vote_log_odds(0, False) < 0
        # A good worker's learned vote outweighs an unknown worker's.
        assert est.vote_log_odds(0, True) > est.vote_log_odds(99, True)

    def test_unknown_worker_gets_prior_confusion(self):
        est = OnlineDawidSkene(prior_correct=0.7)
        confusion = est.confusion(5)
        assert np.allclose(confusion, [[0.7, 0.3], [0.3, 0.7]])
        assert est.n_observations(5) == 0

    def test_empty_batch_is_a_no_op(self):
        est = OnlineDawidSkene()
        assert est.observe_set_batch([]).shape == (0,)
        assert est.observe_point_batch([]) == []

    def test_posterior_follows_reliable_majority(self, rng):
        est = OnlineDawidSkene()
        _feed(est, rng, 40, {0: good(0.02), 1: good(0.02), 2: good(0.02)})
        post = est.observe_set_batch([[(0, True), (1, True), (2, True)]])
        assert post[0] > 0.9
        post = est.observe_set_batch([[(0, False), (1, False), (2, False)]])
        assert post[0] < 0.1

    def test_decay_tracks_drifting_quality(self, rng):
        sticky = OnlineDawidSkene(decay=1.0)
        forgetful = OnlineDawidSkene(decay=0.9)
        for est in (sticky, forgetful):
            feed_rng = np.random.default_rng(17)
            _feed(est, feed_rng, 80, {0: good(0.02), 1: good(0.02), 2: good(0.02)})
            _feed(est, feed_rng, 40, {0: adversarial(), 1: good(0.02), 2: good(0.02)})
        # The forgetful estimator notices worker 0 went bad much faster.
        assert forgetful.worker_accuracy(0) < sticky.worker_accuracy(0)

    def test_point_batch_learns_map_labels(self, rng):
        est = OnlineDawidSkene()
        for _ in range(30):
            est.observe_point_batch(
                [[(0, {"gender": "f"}), (1, {"gender": "f"}), (2, {"gender": "m"})]]
            )
        labels = est.observe_point_batch(
            [[(0, {"gender": "f"}), (1, {"gender": "f"}), (2, {"gender": "m"})]]
        )
        assert labels == [{"gender": "f"}]
        posteriors = est.point_posteriors([(0, {"gender": "f"})])
        assert posteriors["gender"]["f"] > posteriors["gender"]["m"]

    def test_state_round_trips_bit_identically_through_json(self, rng):
        est = OnlineDawidSkene(decay=0.95)
        _feed(est, rng, 25, {0: good(), 3: uniform(), 7: adversarial()})
        est.observe_point_batch([[(0, {"gender": "f"}), (3, {"gender": "m"})]])
        state = json.loads(json.dumps(est.state_dict()))
        clone = OnlineDawidSkene(decay=0.95)
        clone.load_state_dict(state)
        assert clone.state_dict() == est.state_dict()
        assert np.array_equal(clone.confusion(7), est.confusion(7))
        # Subsequent updates evolve identically.
        more = [[(0, True), (3, False), (7, True)]]
        assert np.array_equal(
            clone.observe_set_batch(more), est.observe_set_batch(more)
        )
        assert clone.state_dict() == est.state_dict()

    def test_invalid_parameters_rejected(self):
        for kwargs in (
            {"damping": 0.0},
            {"damping": 1.5},
            {"decay": 0.0},
            {"prior_correct": 0.4},
            {"prior_correct": 1.0},
            {"prior_strength": 0.0},
            {"sweeps": 0},
        ):
            with pytest.raises(InvalidParameterError):
                OnlineDawidSkene(**kwargs)


class TestReliabilityTracker:
    def _tracked(self, rng, behaviors, n_hits=60, **kwargs):
        est = OnlineDawidSkene()
        tracker = ReliabilityTracker(est, **kwargs)
        _feed(est, rng, n_hits, behaviors)
        tracker.review()
        return est, tracker

    def test_flags_always_yes_and_always_no(self, rng):
        behaviors = {
            0: good(0.02), 1: good(0.02), 2: good(0.02),
            8: always(True), 9: always(False),
        }
        _, tracker = self._tracked(rng, behaviors)
        assert tracker.flag(8) == "always_yes"
        assert tracker.flag(9) == "always_no"
        assert tracker.is_quarantined(8) and tracker.is_quarantined(9)
        assert not tracker.is_quarantined(0)
        assert tracker.quarantined_ids() == (8, 9)

    def test_flags_adversary_with_negative_j(self, rng):
        behaviors = {0: good(0.02), 1: good(0.02), 2: good(0.02), 7: adversarial()}
        _, tracker = self._tracked(rng, behaviors)
        assert tracker.flag(7) == "adversary"
        assert tracker.youden_j(7) < 0

    def test_flags_uniform_guesser(self, rng):
        behaviors = {0: good(0.02), 1: good(0.02), 2: good(0.02), 5: uniform()}
        _, tracker = self._tracked(rng, behaviors, n_hits=120)
        assert tracker.flag(5) == "uniform_guesser"

    def test_insufficient_evidence_never_flags(self, rng):
        behaviors = {0: good(0.02), 1: good(0.02), 5: always(True)}
        _, tracker = self._tracked(rng, behaviors, n_hits=5, min_observations=12)
        assert tracker.flag(5) is None
        assert not tracker.is_quarantined(5)

    def test_probation_reinstates_recovered_worker(self, rng):
        est = OnlineDawidSkene(decay=0.97)
        tracker = ReliabilityTracker(
            est, min_observations=10, probation_votes=5, reentry_margin=0.2
        )
        _feed(est, rng, 40, {0: good(0.02), 1: good(0.02), 2: always(True)})
        tracker.review()
        assert tracker.is_quarantined(2)
        assert tracker.n_quarantines == 1
        # The worker recovers; probe votes keep feeding the estimator.
        for _ in range(60):
            _feed(est, rng, 1, {0: good(0.02), 1: good(0.02), 2: good(0.02)})
            tracker.review()
        assert not tracker.is_quarantined(2)
        assert tracker.n_reinstatements == 1
        assert tracker.flag(2) is None

    def test_state_round_trips_through_json(self, rng):
        _, tracker = self._tracked(
            rng, {0: good(0.02), 1: good(0.02), 2: good(0.02), 8: always(True)}
        )
        state = json.loads(json.dumps(tracker.state_dict()))
        clone = ReliabilityTracker(tracker.estimator)
        clone.load_state_dict(state)
        assert clone.state_dict() == tracker.state_dict()
        assert clone.is_quarantined(8)

    def test_invalid_parameters_rejected(self):
        est = OnlineDawidSkene()
        for kwargs in (
            {"min_observations": 0},
            {"spam_margin": 0.0},
            {"extreme_rate": 0.5},
            {"reentry_margin": 1.0},
            {"probation_votes": 0},
        ):
            with pytest.raises(InvalidParameterError):
                ReliabilityTracker(est, **kwargs)


class TestAdaptiveAssignmentPolicy:
    def _pool(self, n=6):
        return [Worker(worker_id=i, set_error_rate=0.02) for i in range(n)]

    def test_plan_excludes_quarantined_and_caps(self, rng):
        policy = AdaptiveAssignmentPolicy(max_assignments=3)
        feed_rng = np.random.default_rng(1)
        _feed(
            policy.estimator, feed_rng, 60,
            {0: good(0.02), 1: good(0.02), 2: good(0.02), 3: always(True)},
        )
        policy.tracker.review()
        pool = self._pool(4)
        order, probe = policy.plan(pool, rng)
        assert len(order) <= 3
        assert 3 not in order  # quarantined position (worker_id == position)
        assert probe is None or probe == 3

    def test_plan_falls_back_to_full_pool_when_all_quarantined(self, rng):
        policy = AdaptiveAssignmentPolicy()
        feed_rng = np.random.default_rng(2)
        _feed(policy.estimator, feed_rng, 60,
              {0: good(0.02), 1: good(0.02), 2: always(True)})
        policy.tracker.review()
        pool = [Worker(worker_id=2, set_error_rate=0.02)]
        order, _ = policy.plan(pool, rng)
        assert order == [0]

    def test_probe_fires_on_probation_cadence(self, rng):
        policy = AdaptiveAssignmentPolicy(probation_interval=3)
        feed_rng = np.random.default_rng(3)
        _feed(policy.estimator, feed_rng, 60,
              {0: good(0.02), 1: good(0.02), 2: good(0.02), 3: always(False)})
        policy.tracker.review()
        pool = self._pool(4)
        probes = []
        for hit in range(6):
            _, probe = policy.plan(pool, rng)
            probes.append(probe)
            policy.n_hits += 1  # simulate the observe step advancing hits
        assert probes[2] == 3 and probes[5] == 3
        assert probes[0] is None and probes[1] is None

    def test_stop_rule_respects_bounds(self):
        policy = AdaptiveAssignmentPolicy(
            min_assignments=2, max_assignments=4, log_odds_threshold=1.0
        )
        assert not policy.should_stop(99.0, n_votes=1)  # below min
        assert policy.should_stop(1.5, n_votes=2)       # threshold cleared
        assert not policy.should_stop(0.1, n_votes=3)   # not confident yet
        assert policy.should_stop(0.1, n_votes=4)       # max exhausted
        assert policy.decide(0.2) is True
        assert policy.decide(-0.2) is False

    def test_observe_set_updates_counters_and_report(self, rng):
        policy = AdaptiveAssignmentPolicy()
        policy.observe_set([(0, True), (1, True), (2, False)], n_probes=1)
        report = policy.report()
        assert report.n_hits == 1
        assert report.n_votes == 2
        assert report.n_probes == 1
        assert report.n_workers == 3
        assert report.mean_votes_per_hit == 2.0

    def test_empty_pool_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            AdaptiveAssignmentPolicy().plan([], rng)

    def test_invalid_parameters_rejected(self):
        for kwargs in (
            {"min_assignments": 0},
            {"min_assignments": 5, "max_assignments": 3},
            {"log_odds_threshold": 0.0},
            {"exploration": -0.1},
            {"probation_interval": 0},
        ):
            with pytest.raises(InvalidParameterError):
                AdaptiveAssignmentPolicy(**kwargs)


class TestAdaptivePlatform:
    @pytest.fixture
    def dataset(self):
        return binary_dataset(1000, 20, rng=np.random.default_rng(7))

    def _pool(self):
        return make_worker_pool(
            20, np.random.default_rng(3), error_rate=0.03,
            spammer_fraction=0.25, spammer_error_rate=0.45,
        )

    def _run(self, dataset, reliability, n=150):
        platform = CrowdPlatform(
            dataset, self._pool(), np.random.default_rng(11),
            reliability=reliability,
        )
        query_rng = np.random.default_rng(42)
        for _ in range(n):
            indices = query_rng.choice(len(dataset), size=15, replace=False)
            platform.publish_set_query(
                SetQuery(np.asarray(indices, dtype=np.int64), FEMALE)
            )
        return platform

    def test_adaptive_spends_fewer_assignments_at_equal_accuracy(self, dataset):
        fixed = self._run(dataset, None)
        adaptive = self._run(
            dataset, AdaptiveAssignmentPolicy(log_odds_threshold=3.5)
        )
        assert adaptive.ledger.n_assignments < fixed.ledger.n_assignments
        assert adaptive.n_aggregated_incorrect <= fixed.n_aggregated_incorrect
        assert adaptive.ledger.n_hits == fixed.ledger.n_hits

    def test_assignments_match_cost_ledger_and_raw_answers(self, dataset):
        adaptive = self._run(dataset, AdaptiveAssignmentPolicy())
        assert adaptive.ledger.n_assignments == adaptive.n_raw_answers
        report = adaptive.reliability.report()
        assert report.n_votes + report.n_probes == adaptive.n_raw_answers

    def test_adaptive_runs_are_deterministic(self, dataset):
        a = self._run(dataset, AdaptiveAssignmentPolicy(), n=60)
        b = self._run(dataset, AdaptiveAssignmentPolicy(), n=60)
        assert a.ledger.n_assignments == b.ledger.n_assignments
        assert a.n_aggregated_incorrect == b.n_aggregated_incorrect
        assert (
            a.reliability.estimator.state_dict()
            == b.reliability.estimator.state_dict()
        )

    def test_record_votes_buffers_and_drains(self, dataset):
        adaptive = self._run(dataset, AdaptiveAssignmentPolicy(), n=10)
        votes = adaptive.drain_set_votes()
        assert len(votes) == 10
        assert all(
            isinstance(w, int) and isinstance(a, bool)
            for hit in votes for (w, a) in hit
        )
        assert adaptive.drain_set_votes() == []  # drained

    def test_plain_platform_records_votes_when_asked(self, dataset, rng):
        platform = CrowdPlatform(
            dataset, self._pool(), np.random.default_rng(1), record_votes=True
        )
        indices = np.arange(5, dtype=np.int64)
        platform.publish_set_query(SetQuery(indices, FEMALE))
        votes = platform.drain_set_votes()
        assert len(votes) == 1
        assert len(votes[0]) == platform.assignments_per_hit

    def test_adaptive_point_query_reaches_truth(self, dataset):
        policy = AdaptiveAssignmentPolicy(log_odds_threshold=1.5)
        platform = CrowdPlatform(
            dataset, self._pool(), np.random.default_rng(5), reliability=policy
        )
        labels = platform.publish_point_query(PointQuery(3))
        assert labels == dataset.value_row(3)
        assert policy.n_hits == 1

    def test_probes_are_billed_but_not_verdict_bearing(self, dataset):
        policy = AdaptiveAssignmentPolicy(
            probation_interval=1, log_odds_threshold=3.5
        )
        platform = CrowdPlatform(
            dataset, self._pool(), np.random.default_rng(11), reliability=policy
        )
        # Quarantine someone first so probes have a target.
        feed_rng = np.random.default_rng(8)
        _feed(policy.estimator, feed_rng, 60,
              {0: good(0.02), 1: good(0.02), 2: good(0.02),
               platform.eligible_workers[0].worker_id: always(True)})
        policy.tracker.review()
        assert policy.tracker.quarantined_ids()
        before = platform.ledger.n_assignments
        platform.publish_set_query(
            SetQuery(np.arange(4, dtype=np.int64), FEMALE)
        )
        billed = platform.ledger.n_assignments - before
        report = policy.report()
        assert report.n_probes >= 1
        assert billed == report.n_votes + report.n_probes


class TestSessionReliabilityCheckpoint:
    def _build(self, policy):
        dataset = binary_dataset(800, 25, rng=np.random.default_rng(7))
        pool = make_worker_pool(
            15, np.random.default_rng(3), error_rate=0.03,
            spammer_fraction=0.2, spammer_error_rate=0.45,
        )
        platform = CrowdPlatform(
            dataset, pool, np.random.default_rng(11), reliability=policy
        )
        return dataset, CrowdOracle(platform)

    def test_checkpoint_carries_versioned_reliability_section(self):
        from repro.audit.session import AuditSession
        from repro.audit.specs import GroupAuditSpec

        _, oracle = self._build(AdaptiveAssignmentPolicy())
        with AuditSession(oracle, seed=5) as session:
            session.run(GroupAuditSpec(predicate=FEMALE, tau=10))
            payload = json.loads(session.checkpoint())
        assert payload["version"] == 3
        assert payload["reliability"]["version"] == 1
        assert payload["reliability"]["platform_rng_state"] is not None
        assert session.reliability_report().n_hits > 0

    def test_checkpoint_reliability_none_without_policy(self):
        from repro.audit.session import AuditSession
        from repro.audit.specs import GroupAuditSpec

        _, oracle = self._build(None)
        with AuditSession(oracle, seed=5) as session:
            session.run(GroupAuditSpec(predicate=FEMALE, tau=10))
            payload = json.loads(session.checkpoint())
        assert payload["reliability"] is None
        assert session.reliability_report() is None

    def test_resume_restores_estimator_and_rng_bit_identically(self):
        from repro.audit.session import AuditSession
        from repro.audit.specs import GroupAuditSpec

        specs = [
            GroupAuditSpec(predicate=FEMALE, tau=10),
            GroupAuditSpec(predicate=group(gender="male"), tau=10),
        ]
        # Uninterrupted reference run.
        _, oracle = self._build(AdaptiveAssignmentPolicy())
        with AuditSession(oracle, seed=5) as session:
            reference = [session.run(spec) for spec in specs]
            reference_state = oracle.platform.reliability.state_dict()

        # Interrupted run: checkpoint after the first spec, resume onto a
        # *fresh* identically-configured platform, run the second spec.
        _, first_oracle = self._build(AdaptiveAssignmentPolicy())
        with AuditSession(first_oracle, seed=5) as session:
            first_report = session.run(specs[0])
            checkpoint = session.checkpoint()
        _, fresh_oracle = self._build(AdaptiveAssignmentPolicy())
        resumed = AuditSession.resume(checkpoint, fresh_oracle)
        with resumed:
            second_report = resumed.run(specs[1])

        assert first_report.entries[0].result == reference[0].entries[0].result
        assert (
            second_report.entries[0].result == reference[1].entries[0].result
        )
        assert (
            fresh_oracle.platform.reliability.state_dict() == reference_state
        )
        # No recorded answer was re-asked: the resumed session paid only
        # for the second spec's queries.
        assert (
            first_oracle.ledger.total + fresh_oracle.ledger.total
            == oracle.ledger.total
        )

    def test_resume_without_reliability_platform_rejected(self):
        from repro.audit.session import AuditSession
        from repro.audit.specs import GroupAuditSpec

        _, oracle = self._build(AdaptiveAssignmentPolicy())
        with AuditSession(oracle, seed=5) as session:
            session.run(GroupAuditSpec(predicate=FEMALE, tau=10))
            checkpoint = session.checkpoint()
        _, bare_oracle = self._build(None)
        with pytest.raises(CheckpointVersionError):
            AuditSession.resume(checkpoint, bare_oracle)

    def test_snapshot_rejects_unknown_versions_and_missing_keys(self):
        with pytest.raises(CheckpointVersionError):
            ReliabilitySnapshot.from_dict({"version": 99})
        with pytest.raises(CheckpointVersionError):
            ReliabilitySnapshot.from_dict({"policy": {}})
