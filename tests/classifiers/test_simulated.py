"""Unit tests for the profile-matched simulated classifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifiers.metrics import binary_confusion
from repro.classifiers.simulated import ProfileClassifier, solve_confusion
from repro.data.groups import group
from repro.data.synthetic import binary_dataset
from repro.errors import InfeasibleProfileError, InvalidParameterError

FEMALE = group(gender="female")


class TestSolveConfusion:
    def test_paper_feret_opencv_row(self):
        confusion = solve_confusion(403, 591, accuracy=0.7957, precision=0.995)
        assert confusion.accuracy == pytest.approx(0.7957, abs=0.005)
        assert confusion.precision == pytest.approx(0.995, abs=0.005)

    def test_perfect_classifier(self):
        confusion = solve_confusion(100, 900, accuracy=1.0, precision=1.0)
        assert (confusion.tp, confusion.fp, confusion.fn, confusion.tn) == (100, 0, 0, 900)

    def test_zero_precision(self):
        confusion = solve_confusion(20, 2980, accuracy=0.98, precision=0.0)
        assert confusion.tp == 0
        assert confusion.precision == 0.0
        assert confusion.accuracy == pytest.approx(0.98, abs=0.005)

    def test_low_precision_row(self):
        confusion = solve_confusion(20, 2980, accuracy=0.9653, precision=0.08)
        assert confusion.tp == 8 and confusion.fp == 92

    def test_infeasible_profile_raises(self):
        # 90% of objects are positive; accuracy 99% with precision 10% is
        # impossible (too many false positives required).
        with pytest.raises(InfeasibleProfileError):
            solve_confusion(900, 100, accuracy=0.99, precision=0.10)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            solve_confusion(-1, 10, 0.9, 0.9)
        with pytest.raises(InvalidParameterError):
            solve_confusion(10, 10, 1.5, 0.9)
        with pytest.raises(InvalidParameterError):
            solve_confusion(0, 0, 0.9, 0.9)


class TestProfileClassifier:
    def test_predictions_match_profile_exactly(self, rng):
        dataset = binary_dataset(994, 403, rng=rng)
        classifier = ProfileClassifier(
            name="test", target_group=FEMALE, accuracy=0.7957, precision=0.995
        )
        predicted = classifier.predict(dataset, rng)
        confusion = binary_confusion(dataset.mask(FEMALE), predicted)
        expected = classifier.confusion_for(dataset)
        assert (confusion.tp, confusion.fp) == (expected.tp, expected.fp)

    def test_different_rngs_misclassify_different_objects(self, rng):
        dataset = binary_dataset(500, 100, rng=rng)
        classifier = ProfileClassifier(
            name="test", target_group=FEMALE, accuracy=0.9, precision=0.8
        )
        first = classifier.predict(dataset, np.random.default_rng(1))
        second = classifier.predict(dataset, np.random.default_rng(2))
        assert first.sum() == second.sum()  # same counts
        assert not np.array_equal(first, second)  # different placement

    def test_predicted_positive_indices(self, rng):
        dataset = binary_dataset(500, 100, rng=rng)
        classifier = ProfileClassifier(
            name="test", target_group=FEMALE, accuracy=0.95, precision=0.9
        )
        indices = classifier.predicted_positive_indices(dataset, rng)
        assert len(indices) == classifier.confusion_for(dataset).n_predicted_positive
